//! CUDA-Q-style gate fusion.
//!
//! The paper's QFT kernel "specifies hyperparameters (gate fusion = 5)"
//! (Appendix D.2): consecutive gates whose combined support stays within a
//! window of `k` qubits are multiplied into a single dense `2^k × 2^k`
//! kernel, so each state-vector sweep applies many gates at once.
//!
//! Fusion trades state passes for arithmetic, and the trade is **not**
//! unconditionally profitable: a dense width-`k` kernel costs `2^k`
//! mul-adds per amplitude, so fusing a handful of cheap specialized gates
//! (`cx`, `rz`) into one dense kernel can cost *more* than applying them
//! one at a time — the hot-path bench measures a 3–6× fused-mode
//! regression on the `random` and `qcrank` workloads. Fusion pays off
//! when the kernel has exploitable structure (see [`KernelStructure`]:
//! diagonal, permutation, or controlled kernels apply far below the dense
//! `2^k` cost) or when the run is bandwidth-bound and saving state passes
//! dominates. The adaptive planner in `qgear-statevec::planner` makes
//! that call per segment from a cost model instead of assuming fusion
//! always wins.
//!
//! [`fuse`] performs the greedy window fusion; [`FusedProgram`] is the
//! executable kernel list handed to the engines in `qgear-statevec`;
//! [`FusedBlock::structure`] classifies each kernel so the executors can
//! dispatch to the cheap path it qualifies for.

use crate::circuit::Circuit;
use crate::gate::Gate;
use qgear_num::C64;
use std::fmt;

/// Maximum supported fusion window; `2^6 × 2^6` matrices are the largest
/// dense kernels we materialize (the paper uses 5).
pub const MAX_FUSION_WIDTH: usize = 6;

/// Errors the fusion pass can report instead of aborting the process.
///
/// Long-running callers (the `qgear-serve` workers, the core pipeline)
/// use [`try_fuse`] and surface these as job failures; the panicking
/// [`fuse`] wrapper keeps the original fail-fast contract for harnesses
/// that feed known-good circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    /// A gate had more operands than dense-kernel fusion supports.
    UnsupportedArity {
        /// Gate mnemonic (e.g. `ccx`).
        gate: String,
        /// Operand count of the offending gate.
        arity: usize,
    },
    /// A gate claimed an arity its matrix accessors cannot satisfy.
    MissingMatrix {
        /// Gate mnemonic.
        gate: String,
    },
    /// The requested window is outside `1..=MAX_FUSION_WIDTH`.
    InvalidWidth {
        /// Requested window.
        width: usize,
    },
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::UnsupportedArity { gate, arity } => write!(
                f,
                "fusion requires gates of arity <= 2; lower '{gate}' (arity {arity}) first"
            ),
            FusionError::MissingMatrix { gate } => {
                write!(f, "gate '{gate}' has no dense matrix of its declared arity")
            }
            FusionError::InvalidWidth { width } => {
                write!(f, "fusion width must be in 1..={MAX_FUSION_WIDTH}, got {width}")
            }
        }
    }
}

impl std::error::Error for FusionError {}

/// Default fusion window matching the paper's `gate fusion = 5`.
pub const DEFAULT_FUSION_WIDTH: usize = 5;

/// A dense unitary over `k ≤ MAX_FUSION_WIDTH` qubits, row-major
/// `2^k × 2^k`, always stored in f64 (engines cast to their precision).
///
/// Local index convention: bit `j` of a row/column index corresponds to
/// `qubits[j]` of the owning [`FusedBlock`] (little-endian, like the global
/// state index).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseUnitary {
    k: usize,
    m: Vec<C64>,
}

impl DenseUnitary {
    /// Identity over `k` qubits.
    pub fn identity(k: usize) -> Self {
        assert!(k <= MAX_FUSION_WIDTH, "fusion width {k} exceeds {MAX_FUSION_WIDTH}");
        let dim = 1usize << k;
        let mut m = vec![C64::ZERO; dim * dim];
        for i in 0..dim {
            m[i * dim + i] = C64::ONE;
        }
        DenseUnitary { k, m }
    }

    /// Build a unitary from raw row-major elements (`2^k × 2^k` of them).
    /// The caller is responsible for unitarity — check with
    /// [`DenseUnitary::is_unitary`] when the elements come from outside
    /// the fusion pass.
    pub fn from_elements(k: usize, m: Vec<C64>) -> Self {
        assert!(k <= MAX_FUSION_WIDTH, "fusion width {k} exceeds {MAX_FUSION_WIDTH}");
        assert_eq!(m.len(), (1usize << k) * (1usize << k), "element count must be 4^k");
        DenseUnitary { k, m }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.k
    }

    /// Matrix dimension `2^k`.
    pub fn dim(&self) -> usize {
        1 << self.k
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> C64 {
        self.m[row * self.dim() + col]
    }

    /// Raw row-major elements.
    pub fn elements(&self) -> &[C64] {
        &self.m
    }

    /// Grow to `k_new` qubits by tensoring identity onto new high local
    /// bits: `I ⊗ self` (existing local bits keep their positions).
    pub fn grow(&self, k_new: usize) -> Self {
        assert!(k_new >= self.k && k_new <= MAX_FUSION_WIDTH);
        if k_new == self.k {
            return self.clone();
        }
        let old_dim = self.dim();
        let new_dim = 1usize << k_new;
        let mut m = vec![C64::ZERO; new_dim * new_dim];
        let blocks = new_dim / old_dim;
        for b in 0..blocks {
            let off = b * old_dim;
            for r in 0..old_dim {
                for c in 0..old_dim {
                    m[(off + r) * new_dim + (off + c)] = self.m[r * old_dim + c];
                }
            }
        }
        DenseUnitary { k: k_new, m }
    }

    /// Left-multiply by a gate embedded at the given local bit positions:
    /// `self ← E(gate) · self`, i.e. the gate is applied *after* the block's
    /// existing contents (circuit order).
    ///
    /// `positions` maps each gate operand to its local bit (operand 0 → the
    /// control/high bit of a [`qgear_num::Mat4`]).
    ///
    /// Panicking wrapper around [`DenseUnitary::try_push_gate`] for
    /// callers that have already validated arity.
    pub fn push_gate(&mut self, gate: &Gate, positions: &[usize]) {
        self.try_push_gate(gate, positions).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`DenseUnitary::push_gate`]: rejects gates of
    /// unsupported arity instead of panicking, so a serving worker can
    /// turn a malformed circuit into a job error.
    pub fn try_push_gate(&mut self, gate: &Gate, positions: &[usize]) -> Result<(), FusionError> {
        let dim = self.dim();
        let mut out = vec![C64::ZERO; dim * dim];
        match positions.len() {
            1 => {
                let g = gate.matrix2::<f64>().ok_or_else(|| FusionError::MissingMatrix {
                    gate: gate.kind.name().to_owned(),
                })?;
                let p = positions[0];
                let pm = 1usize << p;
                // out[r][c] = sum_s E[r][s]·m[s][c]; E couples only rows
                // differing in bit p.
                for r in 0..dim {
                    let rb = usize::from(r & pm != 0);
                    let r0 = r & !pm;
                    let r1 = r | pm;
                    for c in 0..dim {
                        out[r * dim + c] = g.m[rb][0] * self.m[r0 * dim + c]
                            + g.m[rb][1] * self.m[r1 * dim + c];
                    }
                }
            }
            2 => {
                let g = gate.matrix4::<f64>().ok_or_else(|| FusionError::MissingMatrix {
                    gate: gate.kind.name().to_owned(),
                })?;
                let (pa, pb) = (positions[0], positions[1]);
                let (ma, mb) = (1usize << pa, 1usize << pb);
                for r in 0..dim {
                    let ra = usize::from(r & ma != 0);
                    let rb = usize::from(r & mb != 0);
                    let row = 2 * ra + rb;
                    let base = r & !(ma | mb);
                    let sources = [base, base | mb, base | ma, base | ma | mb];
                    for c in 0..dim {
                        let mut acc = C64::ZERO;
                        for (s, &src) in sources.iter().enumerate() {
                            acc = g.m[row][s].mul_add(self.m[src * dim + c], acc);
                        }
                        out[r * dim + c] = acc;
                    }
                }
            }
            n => {
                return Err(FusionError::UnsupportedArity {
                    gate: gate.kind.name().to_owned(),
                    arity: n,
                })
            }
        }
        self.m = out;
        Ok(())
    }

    /// Apply this unitary to a full state vector, with `qubits[j]` giving
    /// the global qubit for local bit `j`. Reference implementation used by
    /// tests and by the Aer fallback; the parallel engines re-implement
    /// this loop with rayon.
    pub fn apply_to_state(&self, state: &mut [C64], qubits: &[u32]) {
        assert_eq!(qubits.len(), self.k);
        let dim = self.dim();
        let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        let all_mask: usize = masks.iter().sum();
        let mut scratch = vec![C64::ZERO; dim];
        for base in 0..state.len() {
            if base & all_mask != 0 {
                continue;
            }
            // Gather the 2^k amplitudes of this group.
            for (local, s) in scratch.iter_mut().enumerate() {
                let mut idx = base;
                for (j, &m) in masks.iter().enumerate() {
                    if local & (1 << j) != 0 {
                        idx |= m;
                    }
                }
                *s = state[idx];
            }
            // Multiply and scatter.
            for (local, row) in self.m.chunks_exact(dim).enumerate() {
                let mut acc = C64::ZERO;
                for (s, &e) in scratch.iter().zip(row) {
                    acc = e.mul_add(*s, acc);
                }
                let mut idx = base;
                for (j, &m) in masks.iter().enumerate() {
                    if local & (1 << j) != 0 {
                        idx |= m;
                    }
                }
                state[idx] = acc;
            }
        }
    }

    /// True if the unitary **mixes** local bit `j`: some nonzero element
    /// couples the `bit_j = 0` and `bit_j = 1` subspaces. A bit that is
    /// *not* mixed (the matrix is block-diagonal in it) acts as a control
    /// or phase qubit — when that qubit is device-global in a distributed
    /// run, each device can apply its rank-conditioned sub-block with
    /// **zero communication** (the cuQuantum-style optimization).
    pub fn mixes_bit(&self, j: usize, tol: f64) -> bool {
        debug_assert!(j < self.k);
        let dim = self.dim();
        let mask = 1usize << j;
        for r in 0..dim {
            for c in 0..dim {
                if (r ^ c) & mask != 0 && self.m[r * dim + c].norm() > tol {
                    return true;
                }
            }
        }
        false
    }

    /// If the unitary is diagonal, return its diagonal (length `2^k`);
    /// `None` otherwise. Diagonal kernels (QFT `cr1` ladders, `rz` chains)
    /// admit an element-wise phase sweep with no gather/scatter.
    pub fn diagonal(&self, tol: f64) -> Option<Vec<C64>> {
        let dim = self.dim();
        for r in 0..dim {
            for c in 0..dim {
                if r != c && self.m[r * dim + c].norm() > tol {
                    return None;
                }
            }
        }
        Some((0..dim).map(|i| self.m[i * dim + i]).collect())
    }

    /// If the unitary is a (phased) permutation — exactly one nonzero
    /// entry per column — return `perm` with `perm[col] = (row, entry)`,
    /// meaning the kernel maps amplitude `col` to slot `row` scaled by
    /// `entry`. `None` otherwise. Fused `cx`/`x`/`swap` runs and their
    /// phase-decorated variants qualify: they apply with **one** complex
    /// multiply per amplitude instead of the dense `2^k` mul-adds.
    ///
    /// A diagonal unitary is the identity permutation; classify with
    /// [`DenseUnitary::diagonal`] first to take the cheaper element-wise
    /// path.
    pub fn permutation(&self, tol: f64) -> Option<Vec<(usize, C64)>> {
        let dim = self.dim();
        let mut perm = Vec::with_capacity(dim);
        for c in 0..dim {
            let mut hit: Option<(usize, C64)> = None;
            for r in 0..dim {
                let e = self.m[r * dim + c];
                if e.norm() > tol {
                    if hit.is_some() {
                        return None; // two nonzeros in one column: not a permutation
                    }
                    hit = Some((r, e));
                }
            }
            // A unitary has no zero column; treat one defensively as dense.
            perm.push(hit?);
        }
        Some(perm)
    }

    /// Project onto the subspace where the given local bits take fixed
    /// values, producing the unitary over the remaining bits (which keep
    /// their relative order). Every conditioned bit must be unmixed
    /// (checked in debug builds) or the result would not be unitary.
    ///
    /// `conditions` maps local bit → fixed value (0 or 1).
    pub fn condition_on(&self, conditions: &[(usize, usize)]) -> DenseUnitary {
        for &(j, v) in conditions {
            debug_assert!(j < self.k && v <= 1);
            debug_assert!(!self.mixes_bit(j, 1e-12), "conditioning a mixed bit");
        }
        let cond_mask: usize = conditions.iter().map(|&(j, _)| 1usize << j).sum();
        let cond_value: usize = conditions.iter().map(|&(j, v)| v << j).sum();
        let kept: Vec<usize> = (0..self.k).filter(|j| cond_mask & (1 << j) == 0).collect();
        let new_k = kept.len();
        let new_dim = 1usize << new_k;
        let dim = self.dim();
        let expand = |small: usize| -> usize {
            let mut idx = cond_value;
            for (new_bit, &old_bit) in kept.iter().enumerate() {
                if small & (1 << new_bit) != 0 {
                    idx |= 1 << old_bit;
                }
            }
            idx
        };
        let mut m = vec![C64::ZERO; new_dim * new_dim];
        for r in 0..new_dim {
            let rr = expand(r);
            for c in 0..new_dim {
                m[r * new_dim + c] = self.m[rr * dim + expand(c)];
            }
        }
        DenseUnitary { k: new_k, m }
    }

    /// True if `U†U ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let dim = self.dim();
        for i in 0..dim {
            for j in 0..dim {
                let mut acc = C64::ZERO;
                for r in 0..dim {
                    acc += self.m[r * dim + i].conj() * self.m[r * dim + j];
                }
                let expect = if i == j { C64::ONE } else { C64::ZERO };
                if (acc - expect).norm() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Structural class of a fused kernel, ordered cheapest-first. The
/// executors in `qgear-statevec` dispatch on this instead of always
/// paying the dense `2^k` mul-adds per amplitude, which is what lets
/// "fused" execution stop being a regression on permutation-heavy
/// workloads (the planner's cost model prices each class differently).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelStructure {
    /// Pure phase pattern: one element-wise complex multiply per
    /// amplitude, no data movement (QFT `cr1` ladders, `rz` chains).
    Diagonal,
    /// Phased permutation (`perm[col] = (row, entry)`): one complex
    /// multiply per amplitude plus an index shuffle (fused `cx`/`swap`
    /// runs).
    Permutation(Vec<(usize, C64)>),
    /// Block-diagonal in at least one qubit: `mixing[j]` is true iff
    /// local bit `j` is mixed. Factors into `2^(k-μ)` independent
    /// `2^μ × 2^μ` sub-unitaries indexed by the unmixed control/phase
    /// bits — `2^μ` mul-adds per amplitude instead of `2^k`.
    Controlled {
        /// Per-local-bit mixing flags (`true` = mixed).
        mixing: Vec<bool>,
    },
    /// No exploitable structure: dense gather/mul-add/scatter.
    Dense,
}

impl KernelStructure {
    /// Stable lowercase label, used for telemetry counter names and
    /// bench output.
    pub fn name(&self) -> &'static str {
        match self {
            KernelStructure::Diagonal => "diagonal",
            KernelStructure::Permutation(_) => "permutation",
            KernelStructure::Controlled { .. } => "controlled",
            KernelStructure::Dense => "dense",
        }
    }

    /// Mixed-qubit count `μ` of a width-`k` kernel under this structure:
    /// the per-amplitude arithmetic is `O(2^μ)` for controlled kernels,
    /// `O(1)` for diagonal/permutation, `2^k` for dense.
    pub fn mixed_count(&self, k: usize) -> usize {
        match self {
            KernelStructure::Diagonal | KernelStructure::Permutation(_) => 0,
            KernelStructure::Controlled { mixing } => mixing.iter().filter(|&&m| m).count(),
            KernelStructure::Dense => k,
        }
    }
}

/// One fused kernel: a dense unitary over an explicit set of global qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedBlock {
    /// Global qubit of each local bit, ascending local significance.
    pub qubits: Vec<u32>,
    /// The fused dense unitary.
    pub unitary: DenseUnitary,
    /// Number of source gates absorbed into this kernel.
    pub source_gates: usize,
}

impl FusedBlock {
    /// Which block qubits the kernel actually mixes (`mask[j]` for local
    /// bit `j`). Unmixed qubits are pure controls/phases and never require
    /// remapping in distributed execution.
    pub fn mixing_mask(&self) -> Vec<bool> {
        (0..self.qubits.len())
            .map(|j| self.unitary.mixes_bit(j, 1e-12))
            .collect()
    }

    /// Global-qubit bitmask of this kernel's support (`bit q` set iff the
    /// kernel acts on qubit `q`). The sweep scheduler's disjointness and
    /// commutation checks run on these masks instead of walking qubit
    /// lists.
    pub fn support_mask(&self) -> u128 {
        self.qubits.iter().map(|&q| 1u128 << q).sum()
    }

    /// Global-qubit bitmask of the qubits this kernel *mixes* (couples the
    /// 0- and 1-subspaces of). Unmixed support qubits are controls/phases;
    /// two kernels commute whenever neither mixes a shared qubit (both are
    /// block-diagonal over the shared bits, and their private supports are
    /// disjoint).
    pub fn mixed_support_mask(&self) -> u128 {
        self.qubits
            .iter()
            .enumerate()
            .filter(|&(j, _)| self.unitary.mixes_bit(j, 1e-12))
            .map(|(_, &q)| 1u128 << q)
            .sum()
    }

    /// True if the kernel is diagonal (a pure phase pattern): applies
    /// element-wise with no gather/scatter, so it can join a sweep of any
    /// width.
    pub fn is_diagonal(&self) -> bool {
        self.unitary.diagonal(1e-15).is_some()
    }

    /// Classify this kernel's structure, cheapest class first: diagonal ⊂
    /// permutation, and a diagonal/permutation kernel is also trivially
    /// controlled (`μ = 0`), so the order matters. The tolerances match
    /// the executors' fast-path checks (`1e-15` for exact-zero patterns,
    /// the `mixing_mask` tolerance `1e-12` for block-diagonality).
    pub fn structure(&self) -> KernelStructure {
        if self.unitary.diagonal(1e-15).is_some() {
            return KernelStructure::Diagonal;
        }
        if let Some(perm) = self.unitary.permutation(1e-15) {
            return KernelStructure::Permutation(perm);
        }
        let mixing = self.mixing_mask();
        if mixing.iter().any(|&m| !m) {
            return KernelStructure::Controlled { mixing };
        }
        KernelStructure::Dense
    }
}

/// The kernel list produced by [`fuse`]: what §2.2 calls the "kernel
/// circuits, optimized for CUDA execution".
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    /// Register width.
    pub num_qubits: u32,
    /// Kernels in execution order.
    pub blocks: Vec<FusedBlock>,
    /// The fusion window used.
    pub fusion_width: usize,
}

impl FusedProgram {
    /// Total source gates absorbed.
    pub fn source_gate_count(&self) -> usize {
        self.blocks.iter().map(|b| b.source_gates).sum()
    }

    /// Ratio of source gates to kernels — the sweep-count reduction fusion
    /// bought (≥ 1.0; reported by the ablation bench).
    pub fn compression_ratio(&self) -> f64 {
        if self.blocks.is_empty() {
            return 1.0;
        }
        self.source_gate_count() as f64 / self.blocks.len() as f64
    }

    /// Apply the whole program to a state vector (reference path).
    pub fn apply_to_state(&self, state: &mut [C64]) {
        for b in &self.blocks {
            b.unitary.apply_to_state(state, &b.qubits);
        }
    }
}

/// Greedily fuse a circuit's unitary gates into dense kernels of at most
/// `width` qubits.
///
/// Measurements and barriers flush the current window (they are
/// synchronization points); measurements are *not* represented in the
/// output — split them off with [`Circuit::split_measurements`] first if
/// you need them.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds [`MAX_FUSION_WIDTH`], or if the
/// circuit contains arity-3 gates (lower `ccx` first). Use [`try_fuse`]
/// when the circuit comes from an untrusted source (e.g. a serving
/// request) and must reject instead of aborting.
pub fn fuse(circ: &Circuit, width: usize) -> FusedProgram {
    try_fuse(circ, width).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`fuse`]: invalid widths and unsupported gate
/// arities come back as a [`FusionError`] instead of a panic.
pub fn try_fuse(circ: &Circuit, width: usize) -> Result<FusedProgram, FusionError> {
    if !(1..=MAX_FUSION_WIDTH).contains(&width) {
        return Err(FusionError::InvalidWidth { width });
    }
    let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::FUSE);
    let mut blocks: Vec<FusedBlock> = Vec::new();
    let mut cur_qubits: Vec<u32> = Vec::new();
    let mut cur: Option<DenseUnitary> = None;
    let mut cur_sources = 0usize;

    let flush =
        |cur: &mut Option<DenseUnitary>, cur_qubits: &mut Vec<u32>, cur_sources: &mut usize,
         blocks: &mut Vec<FusedBlock>| {
            if let Some(u) = cur.take() {
                blocks.push(FusedBlock {
                    qubits: std::mem::take(cur_qubits),
                    unitary: u,
                    source_gates: std::mem::replace(cur_sources, 0),
                });
            }
        };

    for g in circ.gates() {
        if !g.is_unitary_op() {
            flush(&mut cur, &mut cur_qubits, &mut cur_sources, &mut blocks);
            continue;
        }
        let ops = g.operands();
        if ops.len() > 2 {
            return Err(FusionError::UnsupportedArity {
                gate: g.kind.name().to_owned(),
                arity: ops.len(),
            });
        }
        // For a minimum-width window that cannot hold a 2-qubit gate, fall
        // back to per-gate blocks of the gate's own arity.
        let needed: Vec<u32> = ops
            .iter()
            .copied()
            .filter(|q| !cur_qubits.contains(q))
            .collect();
        let fits = cur.is_some() && cur_qubits.len() + needed.len() <= width;
        if !fits {
            flush(&mut cur, &mut cur_qubits, &mut cur_sources, &mut blocks);
            if ops.len() > width {
                // Width 1 but a 2-qubit gate: emit it as its own 2-qubit block.
                cur_qubits = ops.to_vec();
                cur = Some(DenseUnitary::identity(ops.len()));
            } else {
                cur_qubits = ops.to_vec();
                cur = Some(DenseUnitary::identity(ops.len()));
            }
        } else if !needed.is_empty() {
            cur_qubits.extend_from_slice(&needed);
            cur = Some(cur.take().unwrap().grow(cur_qubits.len()));
        }
        let positions: Vec<usize> = ops
            .iter()
            .map(|q| cur_qubits.iter().position(|c| c == q).unwrap())
            .collect();
        cur.as_mut().unwrap().try_push_gate(g, &positions)?;
        cur_sources += 1;
        // A width-1 window never accumulates across 2-qubit gates.
        if ops.len() > width {
            flush(&mut cur, &mut cur_qubits, &mut cur_sources, &mut blocks);
        }
    }
    flush(&mut cur, &mut cur_qubits, &mut cur_sources, &mut blocks);

    if qgear_telemetry::is_enabled() {
        use qgear_telemetry::names;
        qgear_telemetry::counter_add(names::FUSED_BLOCKS, blocks.len() as u128);
        qgear_telemetry::counter_add(
            names::FUSION_SOURCE_GATES,
            blocks.iter().map(|b| b.source_gates as u128).sum(),
        );
        for b in &blocks {
            qgear_telemetry::histogram_record(names::FUSION_BLOCK_WIDTH, b.qubits.len() as f64);
        }
    }
    Ok(FusedProgram { num_qubits: circ.num_qubits(), blocks, fusion_width: width })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::reference;
    use qgear_num::approx::max_deviation;

    fn mixed_circuit(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0).ry(0.3, 1).cx(0, 1).rz(-0.7, 2).cx(1, 2).rx(0.2, 0).cx(2, 3).ry(1.1, 3).cx(3, 0).h(2);
        c
    }

    #[test]
    fn identity_block_is_unitary() {
        for k in 1..=4 {
            assert!(DenseUnitary::identity(k).is_unitary(1e-14));
        }
    }

    #[test]
    fn grow_preserves_action_on_old_bits() {
        let mut u = DenseUnitary::identity(1);
        u.push_gate(&Gate::q1p1(GateKind::Ry, 0, 0.8), &[0]);
        let g = u.grow(3);
        assert_eq!(g.num_qubits(), 3);
        assert!(g.is_unitary(1e-13));
        // Applying grown block on qubits [0,1,2] == applying small on [0].
        let mut s1 = reference::random_state(4, 11);
        let mut s2 = s1.clone();
        g.apply_to_state(&mut s1, &[0, 1, 2]);
        u.apply_to_state(&mut s2, &[0]);
        assert!(max_deviation(&s1, &s2) < 1e-13);
    }

    #[test]
    fn fused_program_matches_unfused_execution() {
        for width in 1..=5usize {
            let c = mixed_circuit(5);
            let prog = fuse(&c, width);
            assert_eq!(prog.source_gate_count(), c.unitary_count());
            let mut fused_state = reference::zero_state(5);
            prog.apply_to_state(&mut fused_state);
            let direct = reference::run(&c);
            assert!(
                max_deviation(&fused_state, &direct) < 1e-12,
                "width {width}: deviation {}",
                max_deviation(&fused_state, &direct)
            );
        }
    }

    #[test]
    fn all_blocks_unitary() {
        let c = mixed_circuit(6);
        let prog = fuse(&c, 4);
        for b in &prog.blocks {
            assert!(b.unitary.is_unitary(1e-12));
            assert_eq!(b.qubits.len(), b.unitary.num_qubits());
        }
    }

    #[test]
    fn wider_window_fuses_more() {
        let c = mixed_circuit(6);
        let narrow = fuse(&c, 2);
        let wide = fuse(&c, 5);
        assert!(wide.blocks.len() <= narrow.blocks.len());
        assert!(wide.compression_ratio() >= narrow.compression_ratio());
        assert!(wide.compression_ratio() > 1.0);
    }

    #[test]
    fn width_one_isolates_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.h(0).h(0).cx(0, 1).h(1);
        let prog = fuse(&c, 1);
        // h,h fuse on q0 (same qubit fits width 1); cx gets its own block;
        // h(1) its own.
        assert_eq!(prog.blocks.len(), 3);
        assert_eq!(prog.blocks[1].qubits.len(), 2);
        let mut s = reference::zero_state(3);
        prog.apply_to_state(&mut s);
        let direct = reference::run(&c);
        assert!(max_deviation(&s, &direct) < 1e-13);
    }

    #[test]
    fn barrier_flushes_window() {
        let mut c = Circuit::new(2);
        c.h(0).barrier().h(1);
        let prog = fuse(&c, 2);
        assert_eq!(prog.blocks.len(), 2);
    }

    #[test]
    fn consecutive_same_pair_gates_fuse_to_one_block() {
        // The random CX-block structure: ry,rz then cx on one pair.
        let mut c = Circuit::new(4);
        c.ry(0.4, 2).rz(0.9, 3).cx(2, 3);
        let prog = fuse(&c, 2);
        assert_eq!(prog.blocks.len(), 1);
        assert_eq!(prog.blocks[0].source_gates, 3);
        let mut s = reference::zero_state(4);
        prog.apply_to_state(&mut s);
        assert!(max_deviation(&s, &reference::run(&c)) < 1e-13);
    }

    #[test]
    fn empty_circuit_fuses_to_empty_program() {
        let c = Circuit::new(3);
        let prog = fuse(&c, 5);
        assert!(prog.blocks.is_empty());
        assert_eq!(prog.compression_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "fusion width")]
    fn zero_width_rejected() {
        fuse(&Circuit::new(1), 0);
    }

    #[test]
    #[should_panic(expected = "arity <= 2")]
    fn ccx_rejected() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        fuse(&c, 5);
    }

    #[test]
    fn try_fuse_rejects_ccx_without_panicking() {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2);
        match try_fuse(&c, 5) {
            Err(FusionError::UnsupportedArity { gate, arity }) => {
                assert_eq!(gate, "ccx");
                assert_eq!(arity, 3);
            }
            other => panic!("expected UnsupportedArity, got {other:?}"),
        }
    }

    #[test]
    fn try_fuse_rejects_invalid_widths() {
        assert_eq!(try_fuse(&Circuit::new(1), 0), Err(FusionError::InvalidWidth { width: 0 }));
        assert_eq!(try_fuse(&Circuit::new(1), 7), Err(FusionError::InvalidWidth { width: 7 }));
    }

    #[test]
    fn try_fuse_matches_fuse_on_valid_input() {
        let c = mixed_circuit(5);
        assert_eq!(try_fuse(&c, 4).unwrap(), fuse(&c, 4));
    }

    #[test]
    fn mixes_bit_detects_controls_and_targets() {
        // CX(control=q0 high?, ...): build cx with control as local bit 1
        // (first operand) and target bit 0.
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        let prog = fuse(&c, 2);
        let b = &prog.blocks[0];
        // Block qubits = [1, 0]; local bit 0 ↔ qubit 1 (control),
        // local bit 1 ↔ qubit 0 (target).
        assert_eq!(b.qubits, vec![1, 0]);
        let mask = b.mixing_mask();
        assert!(!mask[0], "control bit must not mix");
        assert!(mask[1], "target bit must mix");
    }

    #[test]
    fn diagonal_blocks_mix_nothing() {
        let mut c = Circuit::new(3);
        c.rz(0.4, 0).cr1(0.9, 1, 2).rz(-0.2, 2);
        let prog = fuse(&c, 3);
        for b in &prog.blocks {
            assert!(b.mixing_mask().iter().all(|&m| !m), "diagonal kernels mix no bits");
        }
    }

    #[test]
    fn rotation_on_control_strand_mixes_it() {
        // The Fig. 4a random-block pattern: ry on the control strand makes
        // the fused block mix the control qubit too.
        let mut c = Circuit::new(2);
        c.ry(0.7, 1).cx(1, 0);
        let prog = fuse(&c, 2);
        assert!(prog.blocks[0].mixing_mask().iter().all(|&m| m));
    }

    #[test]
    fn condition_on_extracts_controlled_action() {
        // CX conditioned on control=1 is X; on control=0 is I.
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        let prog = fuse(&c, 2);
        let b = &prog.blocks[0];
        // local bit 0 = control (qubit 1), local bit 1 = target (qubit 0).
        let on = b.unitary.condition_on(&[(0, 1)]);
        let off = b.unitary.condition_on(&[(0, 0)]);
        assert_eq!(on.num_qubits(), 1);
        assert!((on.at(0, 1) - C64::ONE).norm() < 1e-14, "X when control set");
        assert!((on.at(1, 0) - C64::ONE).norm() < 1e-14);
        assert!((off.at(0, 0) - C64::ONE).norm() < 1e-14, "I when control clear");
        assert!((off.at(1, 1) - C64::ONE).norm() < 1e-14);
    }

    #[test]
    fn condition_on_multiple_bits() {
        // cr1(λ) is diagonal in both bits: conditioning both yields the
        // 1x1 phase.
        let mut c = Circuit::new(2);
        c.cr1(0.8, 1, 0);
        let prog = fuse(&c, 2);
        let u = &prog.blocks[0].unitary;
        let both_set = u.condition_on(&[(0, 1), (1, 1)]);
        assert_eq!(both_set.num_qubits(), 0);
        assert!((both_set.at(0, 0) - C64::cis(0.8)).norm() < 1e-14);
        let control_clear = u.condition_on(&[(0, 0), (1, 1)]);
        assert!((control_clear.at(0, 0) - C64::ONE).norm() < 1e-14);
    }

    #[test]
    fn conditioned_application_matches_full_block() {
        // Applying the conditioned sub-blocks per half-space must equal
        // applying the full block.
        let mut c = Circuit::new(3);
        c.rz(0.3, 2).cx(2, 0).cr1(0.5, 2, 1);
        let prog = fuse(&c, 3);
        assert_eq!(prog.blocks.len(), 1);
        let b = &prog.blocks[0];
        let mask = b.mixing_mask();
        // Find an unmixed block qubit (qubit 2: control + diagonal only).
        let j = mask.iter().position(|&m| !m).expect("an unmixed bit exists");
        let gq = b.qubits[j];
        let mut full = reference::random_state(3, 5);
        let mut cond = full.clone();
        b.unitary.apply_to_state(&mut full, &b.qubits);
        // Conditioned path: split the state on qubit gq.
        for bit in 0..2usize {
            let sub = b.unitary.condition_on(&[(j, bit)]);
            let sub_qubits: Vec<u32> = b
                .qubits
                .iter()
                .enumerate()
                .filter(|&(idx, _)| idx != j)
                .map(|(_, &q)| q)
                .collect();
            // Apply sub-block only to amplitudes with qubit gq == bit:
            // gather those amplitudes into a temporary, transform, scatter.
            let mask_g = 1usize << gq;
            let mut half: Vec<C64> = Vec::with_capacity(cond.len() / 2);
            let mut idxs: Vec<usize> = Vec::with_capacity(cond.len() / 2);
            for (i, &a) in cond.iter().enumerate() {
                if ((i & mask_g != 0) as usize) == bit {
                    half.push(a);
                    idxs.push(i);
                }
            }
            // The gathered half has qubit gq removed: remap sub_qubits to
            // their positions in the compacted index. Qubits above gq
            // shift down by one.
            let remap: Vec<u32> = sub_qubits
                .iter()
                .map(|&q| if q > gq { q - 1 } else { q })
                .collect();
            sub.apply_to_state(&mut half, &remap);
            for (a, &i) in half.iter().zip(&idxs) {
                cond[i] = *a;
            }
        }
        assert!(max_deviation(&full, &cond) < 1e-12);
    }

    #[test]
    fn structure_classifies_the_four_kernel_classes() {
        // Diagonal: a cr1/rz ladder.
        let mut c = Circuit::new(2);
        c.cr1(0.8, 0, 1).rz(0.3, 0);
        let b = &fuse(&c, 2).blocks[0];
        assert!(matches!(b.structure(), KernelStructure::Diagonal));
        assert_eq!(b.structure().mixed_count(2), 0);

        // Permutation: fused x/cx/swap chain (not diagonal).
        let mut c = Circuit::new(3);
        c.x(0).cx(0, 1).swap(1, 2);
        let b = &fuse(&c, 3).blocks[0];
        match b.structure() {
            KernelStructure::Permutation(perm) => {
                assert_eq!(perm.len(), b.unitary.dim());
                // Columns map to distinct rows with unimodular entries.
                let mut rows: Vec<usize> = perm.iter().map(|&(r, _)| r).collect();
                rows.sort_unstable();
                rows.dedup();
                assert_eq!(rows.len(), b.unitary.dim());
                for &(_, e) in &perm {
                    assert!((e.norm() - 1.0).abs() < 1e-12);
                }
            }
            other => panic!("expected permutation, got {}", other.name()),
        }

        // Controlled: ry on the target strand keeps the control unmixed.
        let mut c = Circuit::new(2);
        c.ry(0.4, 0).cx(1, 0);
        let b = &fuse(&c, 2).blocks[0];
        match b.structure() {
            KernelStructure::Controlled { mixing } => {
                assert_eq!(mixing.iter().filter(|&&m| m).count(), 1);
            }
            other => panic!("expected controlled, got {}", other.name()),
        }

        // Dense: mixing on every strand.
        let mut c = Circuit::new(2);
        c.ry(0.7, 1).ry(0.2, 0).cx(1, 0);
        let b = &fuse(&c, 2).blocks[0];
        assert!(matches!(b.structure(), KernelStructure::Dense));
        assert_eq!(b.structure().mixed_count(2), 2);
    }

    #[test]
    fn permutation_rejects_mixing_rotations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let b = &fuse(&c, 2).blocks[0];
        assert!(b.unitary.permutation(1e-15).is_none(), "h mixes amplitudes");
    }

    #[test]
    fn from_elements_round_trips() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = &fuse(&c, 2).blocks[0].unitary;
        let rebuilt = DenseUnitary::from_elements(2, u.elements().to_vec());
        assert_eq!(&rebuilt, u);
    }

    #[test]
    fn deep_circuit_with_random_structure() {
        // Pseudo-random 40-gate circuit over 6 qubits at width 5.
        let mut c = Circuit::new(6);
        let mut s = 12345u64;
        let mut rnd = move |m: u64| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % m
        };
        for _ in 0..40 {
            match rnd(4) {
                0 => {
                    c.ry(rnd(628) as f64 / 100.0, rnd(6) as u32);
                }
                1 => {
                    c.rz(rnd(628) as f64 / 100.0, rnd(6) as u32);
                }
                2 => {
                    c.h(rnd(6) as u32);
                }
                _ => {
                    let a = rnd(6) as u32;
                    let b = (a + 1 + rnd(5) as u32) % 6;
                    c.cx(a, b);
                }
            }
        }
        let prog = fuse(&c, 5);
        let mut fused = reference::zero_state(6);
        prog.apply_to_state(&mut fused);
        assert!(max_deviation(&fused, &reference::run(&c)) < 1e-11);
    }
}
