//! Error type shared by the IR, encoding, and serialization layers.

use std::fmt;

/// Errors produced while building, encoding, or decoding circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A gate referenced a qubit index outside the circuit's register.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: u32,
        /// Register width of the circuit.
        num_qubits: u32,
    },
    /// A two-qubit gate used the same qubit for both operands.
    DuplicateQubit {
        /// The repeated index.
        qubit: u32,
    },
    /// The tensor capacity `d` violates Lemma B.2 (`d ≥ max(|G|, |C|)`).
    CapacityExceeded {
        /// Requested capacity.
        capacity: usize,
        /// Required capacity.
        required: usize,
    },
    /// Circuits with different register widths were batch-encoded without
    /// padding enabled.
    MixedWidths {
        /// Width of the first circuit.
        expected: u32,
        /// Width of the offending circuit.
        found: u32,
    },
    /// A serialized stream was malformed.
    Malformed(String),
    /// A serialized stream used an unsupported format version.
    UnsupportedVersion(u16),
    /// Gate-kind tag not recognized by this build.
    UnknownGateKind(u8),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit circuit")
            }
            IrError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} twice")
            }
            IrError::CapacityExceeded { capacity, required } => write!(
                f,
                "tensor capacity {capacity} violates Lemma B.2: requires at least {required}"
            ),
            IrError::MixedWidths { expected, found } => write!(
                f,
                "batch encoding requires uniform register width: expected {expected}, found {found}"
            ),
            IrError::Malformed(msg) => write!(f, "malformed stream: {msg}"),
            IrError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            IrError::UnknownGateKind(k) => write!(f, "unknown gate kind tag {k}"),
        }
    }
}

impl std::error::Error for IrError {}
