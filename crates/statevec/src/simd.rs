//! SIMD lane kernels shared by the full-state and sweep-tile hot paths.
//!
//! Every kernel in [`crate::gpu`] has two implementations: the scalar
//! reference (the original per-amplitude loops) and a lane-vectorized path
//! built on [`qgear_num::simd`]. The vector path engages when three
//! conditions hold:
//!
//! 1. SIMD is enabled ([`simd_enabled`], a process-global toggle the
//!    differential tests flip to compare the two paths bit for bit);
//! 2. the kernel's target bits all sit at or above the lane width
//!    (`log2(LANES)` — 2 for `f64x4`, 3 for `f32x8`), so `LANES`
//!    consecutive amplitude groups occupy `LANES` consecutive addresses
//!    and lane loads/stores are contiguous;
//! 3. there are at least `LANES` groups to fill one lane vector.
//!
//! Otherwise the kernel falls back to the scalar path — which doubles as
//! the remainder/tail handling the differential tier exercises with small
//! and low-qubit states.
//!
//! # Bit identity
//!
//! The lane operations replicate the exact scalar `Complex` formulas per
//! lane (see [`qgear_num::simd`]), and the vector kernels accumulate in the
//! same order over the same operands as the scalar loops. Results are
//! therefore **bitwise identical** in both precisions, which is what lets
//! the toggle exist at all: flipping it mid-run cannot change any result.

use qgear_num::{CLanes, Complex, Scalar};
use std::sync::atomic::{AtomicBool, Ordering};

static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);

/// True when the lane-vectorized kernels may engage (the default).
pub fn simd_enabled() -> bool {
    SIMD_ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable the SIMD lane kernels.
///
/// Used by the differential test tier to force the scalar reference path;
/// because both paths are bitwise identical, toggling is safe at any time,
/// including while other threads are mid-kernel.
pub fn set_simd_enabled(on: bool) {
    SIMD_ENABLED.store(on, Ordering::Relaxed);
}

/// log2 of the lane count for precision `T` (2 for f64, 3 for f32).
#[inline(always)]
pub(crate) fn lane_log2<T: Scalar>() -> usize {
    T::LANES.trailing_zeros() as usize
}

/// Record one kernel dispatch on the lane path (`kernel.simd.f64x4` /
/// `kernel.simd.f32x8`) or the scalar fallback (`kernel.simd.scalar`).
#[inline]
pub(crate) fn record_dispatch<T: Scalar>(vectorized: bool) {
    if vectorized {
        qgear_telemetry::counter_inc(match T::PRECISION_NAME {
            "fp32" => qgear_telemetry::names::KERNEL_SIMD_F32X8,
            _ => qgear_telemetry::names::KERNEL_SIMD_F64X4,
        });
    } else {
        qgear_telemetry::counter_inc(qgear_telemetry::names::KERNEL_SIMD_SCALAR);
    }
}

/// Maximum span of the per-chunk local-index table used by [`DiagTable`].
/// 4096 amplitudes (one sweep tile at the default width) keep the table in
/// L1 alongside the amplitudes it indexes.
pub(crate) const DIAG_CHUNK: usize = 4096;

/// Precomputed application plan for one diagonal kernel.
///
/// The scalar diagonal path re-derives the kernel-local index of every
/// amplitude with a bit-test loop over the qubit masks. `DiagTable`
/// hoists that work out of the inner loop: for a span processed in
/// `chunk`-sized pieces (`chunk` = the largest power of two ≤
/// [`DIAG_CHUNK`] dividing the span), the local-index contribution of the
/// sub-chunk bits is a `chunk`-entry lookup table and the contribution of
/// the remaining bits is a single per-chunk constant. The inner loop is
/// then a table load and one complex multiply — which the lane path does
/// `LANES` amplitudes at a time.
///
/// The multiplicand `d[hi | lowtab[j]]` is the exact value the scalar
/// path computes, so both paths are bitwise identical.
pub(crate) struct DiagTable<T: Scalar> {
    /// Diagonal entries in execution precision.
    d: Vec<Complex<T>>,
    /// Local-index contribution of the sub-chunk address bits.
    lowtab: Vec<u8>,
    /// `(global mask, local bit)` pairs for address bits ≥ chunk.
    hipairs: Vec<(usize, usize)>,
    /// Chunk length; divides the span and every chunk start.
    chunk: usize,
}

impl<T: Scalar> DiagTable<T> {
    /// Build the table for diagonal `d` over single-bit `masks` (mask `j`
    /// selects kernel-local bit `j`), applied to spans of `span` amplitudes
    /// starting at span-aligned offsets.
    pub(crate) fn build(d: Vec<Complex<T>>, masks: &[usize], span: usize) -> Self {
        let chunk = DIAG_CHUNK.min(span).max(1);
        debug_assert!(span.is_multiple_of(chunk));
        let mut lowtab = vec![0u8; chunk];
        for (j, &mask) in masks.iter().enumerate() {
            if mask < chunk {
                for (i, slot) in lowtab.iter_mut().enumerate() {
                    if i & mask != 0 {
                        *slot |= 1 << j;
                    }
                }
            }
        }
        let hipairs = masks
            .iter()
            .enumerate()
            .filter(|&(_, &mask)| mask >= chunk)
            .map(|(j, &mask)| (mask, 1usize << j))
            .collect();
        DiagTable { d, lowtab, hipairs, chunk }
    }

    /// Chunk length the table was built for (parallel callers split the
    /// state at this granularity).
    pub(crate) fn chunk(&self) -> usize {
        self.chunk
    }

    /// Multiply the diagonal into `span`, whose first element sits at
    /// global/tile index `start` (must be chunk-aligned; `span.len()` must
    /// be a multiple of the chunk).
    pub(crate) fn apply(&self, span: &mut [Complex<T>], start: usize) {
        debug_assert!(start.is_multiple_of(self.chunk) && span.len().is_multiple_of(self.chunk));
        let vector = simd_enabled() && self.chunk >= T::LANES;
        for (ci, cs) in span.chunks_mut(self.chunk).enumerate() {
            let base = start + ci * self.chunk;
            let mut hi = 0usize;
            for &(mask, bit) in &self.hipairs {
                if base & mask != 0 {
                    hi |= bit;
                }
            }
            if vector {
                let mut j = 0usize;
                while j < cs.len() {
                    let amps = T::Lanes::load(cs, j);
                    let dv = T::Lanes::from_fn(|l| self.d[hi | self.lowtab[j + l] as usize]);
                    // Same operand order as the scalar `*amp *= d[local]`
                    // (MulAssign is `amp * d`), so bitwise identical.
                    amps.mul(dv).store(cs, j);
                    j += T::LANES;
                }
            } else {
                for (j, amp) in cs.iter_mut().enumerate() {
                    *amp *= self.d[hi | self.lowtab[j] as usize];
                }
            }
        }
    }
}

/// Apply one dense `dim × dim` kernel to `LANES` consecutive sub-groups
/// whose bases are `base0 .. base0 + LANES`.
///
/// `msplat` is the row-major matrix with every entry pre-broadcast to a
/// lane vector; `offs[c]` is the address offset of kernel-local index `c`
/// (the OR of the masks selected by `c`'s bits). Accumulation runs in the
/// same `c = 0..dim` order with the same `mul_add` chain as the scalar
/// loop, one lane per sub-group, so results are bitwise identical.
///
/// # Safety
/// Caller guarantees every address `base0 | offs[c] + lane` is in bounds
/// and not concurrently accessed by another task (the group-disjointness
/// argument of [`crate::gpu::GpuDevice::apply_block`]).
#[inline(always)]
pub(crate) unsafe fn dense_block_lanes<T: Scalar>(
    ptr: *mut Complex<T>,
    base0: usize,
    msplat: &[T::Lanes],
    dim: usize,
    offs: &[usize],
) {
    let zero = T::Lanes::splat(Complex::ZERO);
    let mut inp = [zero; 64];
    for c in 0..dim {
        inp[c] = unsafe { T::Lanes::load_ptr(ptr.add(base0 | offs[c])) };
    }
    for r in 0..dim {
        let mut acc = zero;
        let row = &msplat[r * dim..(r + 1) * dim];
        for (c, rc) in row.iter().enumerate() {
            acc = rc.mul_add(inp[c], acc);
        }
        unsafe { acc.store_ptr(ptr.add(base0 | offs[r])) };
    }
}

/// Apply one permutation kernel (column `c` → row `rows[c]` with weight
/// `phases[c]`) to `LANES` consecutive sub-groups based at `base0`.
///
/// Gathers every column before the first store, like the scalar path, so
/// in-place cycles are safe. The multiply is `phase * amp` with the phase
/// as the left operand — the exact scalar operand order.
///
/// # Safety
/// Same contract as [`dense_block_lanes`].
#[inline(always)]
pub(crate) unsafe fn perm_block_lanes<T: Scalar>(
    ptr: *mut Complex<T>,
    base0: usize,
    phase_splat: &[T::Lanes],
    rows: &[usize],
    dim: usize,
    offs: &[usize],
) {
    let zero = T::Lanes::splat(Complex::ZERO);
    let mut inp = [zero; 64];
    for c in 0..dim {
        inp[c] = unsafe { T::Lanes::load_ptr(ptr.add(base0 | offs[c])) };
    }
    for c in 0..dim {
        unsafe { phase_splat[c].mul(inp[c]).store_ptr(ptr.add(base0 | offs[rows[c]])) };
    }
}

/// True when a kernel whose sub-group expansion inserts bits at the
/// positions in `sorted_bits` (ascending) can take the lane path over a
/// span of `groups` sub-groups: every inserted bit must clear the lane
/// width so consecutive groups stay address-consecutive, and there must
/// be at least one full lane vector of groups.
#[inline(always)]
pub(crate) fn lanes_ok<T: Scalar>(sorted_bits: &[usize], groups: usize) -> bool {
    groups >= T::LANES && sorted_bits.first().is_none_or(|&b| b >= lane_log2::<T>())
}

/// Pre-broadcast a row-major matrix (or phase list) into lane vectors.
#[inline]
pub(crate) fn splat_all<T: Scalar>(m: &[Complex<T>]) -> Vec<T::Lanes> {
    m.iter().map(|&e| T::Lanes::splat(e)).collect()
}

/// Address offset of each kernel-local index: `offs[c]` ORs together the
/// single-bit `masks[j]` for every set bit `j` of `c`. Hoists the
/// per-amplitude mask loop of the scalar gather out of the hot loop (the
/// scalar paths use it too — `base | offs[c]` equals the mask-loop result
/// exactly).
#[inline]
pub(crate) fn local_offsets(masks: &[usize]) -> Vec<usize> {
    let dim = 1usize << masks.len();
    let mut offs = vec![0usize; dim];
    for (j, &mask) in masks.iter().enumerate() {
        for i in 0..(1usize << j) {
            offs[(1usize << j) | i] = offs[i] | mask;
        }
    }
    offs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_num::C64;

    #[test]
    fn toggle_roundtrip() {
        assert!(simd_enabled());
        set_simd_enabled(false);
        assert!(!simd_enabled());
        set_simd_enabled(true);
        assert!(simd_enabled());
    }

    #[test]
    fn local_offsets_match_mask_loop() {
        let masks = [1usize << 3, 1 << 1, 1 << 5];
        let offs = local_offsets(&masks);
        for (local, &got) in offs.iter().enumerate().take(8) {
            let mut want = 0usize;
            for (j, &mask) in masks.iter().enumerate() {
                if local & (1 << j) != 0 {
                    want |= mask;
                }
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn diag_table_matches_scalar_mask_loop() {
        // 2-bit diagonal with one mask below and one above the chunk span.
        let d: Vec<C64> = (0..4).map(|i| Complex::new(1.0 + i as f64, -(i as f64))).collect();
        let masks = [1usize << 1, 1 << 13];
        let n = 1usize << 15;
        let mut amps: Vec<C64> = (0..n)
            .map(|i| Complex::new((i % 7) as f64 * 0.1, (i % 5) as f64 * 0.2))
            .collect();
        let mut expect = amps.clone();
        for (i, amp) in expect.iter_mut().enumerate() {
            let mut local = 0usize;
            for (j, &mask) in masks.iter().enumerate() {
                if i & mask != 0 {
                    local |= 1 << j;
                }
            }
            *amp *= d[local];
        }
        let table = DiagTable::build(d, &masks, n);
        table.apply(&mut amps, 0);
        assert_eq!(amps, expect);
    }

    #[test]
    fn lanes_ok_requires_clear_low_bits_and_full_lanes() {
        assert!(lanes_ok::<f64>(&[2, 5], 16));
        assert!(!lanes_ok::<f64>(&[1, 5], 16), "bit 1 is below the f64x4 lane width");
        assert!(!lanes_ok::<f64>(&[2, 5], 2), "fewer groups than lanes");
        assert!(!lanes_ok::<f32>(&[2, 5], 16), "f32x8 needs bits ≥ 3");
        assert!(lanes_ok::<f32>(&[3, 5], 16));
        assert!(lanes_ok::<f64>(&[], 8), "no inserted bits is trivially contiguous");
    }
}
