//! Segmented execution: a resumable cursor over the fused/sweep schedule.
//!
//! [`SegmentedRun`] builds the *same* execution plan as
//! [`GpuDevice`]'s straight-through [`Simulator::run`] — same capacity
//! checks, same fusion clamp, same
//! sweep scheduling decision — but applies it in bounded steps under
//! caller control instead of one uninterruptible loop. Because the step
//! kernels ([`GpuDevice::apply_block`] / [`GpuDevice::apply_sweep`])
//! are deterministic over disjoint amplitude groups, the state after
//! `k` steps is bit-identical whether those steps ran in one call, one
//! per call, or across a checkpoint/restore boundary on a different
//! worker. That property is what makes a [`StateCheckpoint`] safe to
//! resume from: the cursor plus the amplitudes *are* the execution
//! state; there is nothing hidden.
//!
//! Step granularity matches the plan the options select: one step per
//! cache-blocked sweep when sweeping is on and profitable (the same
//! `sweep_width > 0 && blocks > 1` condition as the straight-through
//! path), otherwise one step per fused block. Under
//! [`ExecStrategy::Planned`](crate::planner::ExecStrategy) the steps are
//! the planner's segments — one per scheduled sweep, each executed in
//! its cost-model-chosen mode — and the planner's mode-decision digest
//! is folded into the checkpoint fingerprint so a cursor can only
//! resume under the identical plan.
//!
//! [`Simulator::run`]: crate::Simulator::run

use crate::backend::{
    check_capacity, sample_measured, ExecStats, RunOptions, RunOutput, SimError,
};
use crate::checkpoint::{
    fold_strategy, plan_fingerprint, CheckpointCounters, CheckpointError, CheckpointScalar,
    StateCheckpoint,
};
use crate::gpu::GpuDevice;
use crate::planner::{self, ExecStrategy, ExecutionPlan};
use crate::sampling::SamplingConfig;
use crate::state::StateVector;
use qgear_ir::fusion::{self, FusedProgram};
use qgear_ir::schedule::{self, Sweep};
use qgear_ir::Circuit;
use std::time::{Duration, Instant};

/// The checkpointable step schedule a [`SegmentedRun`] walks — the same
/// three shapes the straight-through engine executes.
enum StepPlan {
    /// Kernel-at-a-time: one step per fused block (`sweep_width == 0`
    /// or a single-block program).
    Blocks { program: FusedProgram },
    /// Sweep-fused: one step per cache-blocked sweep.
    Sweeps {
        program: FusedProgram,
        sweeps: Vec<Sweep>,
        /// Exact-mode flag passed to `apply_sweep` (`!sweep_reorder`).
        exact: bool,
    },
    /// Adaptive: one step per planner segment, each in its chosen mode.
    Planned { plan: ExecutionPlan },
}

/// A partially-executed simulation: the evolving state plus a cursor
/// into its (fixed) kernel schedule.
pub struct SegmentedRun<T: CheckpointScalar> {
    state: StateVector<T>,
    plan: StepPlan,
    measured: Vec<u32>,
    cursor: usize,
    steps_total: usize,
    counters: CheckpointCounters,
    fingerprint: u64,
    sampling: SamplingConfig,
    /// Real wall-clock accumulated across `advance` calls.
    elapsed: Duration,
}

impl<T: CheckpointScalar> SegmentedRun<T> {
    /// Build the plan exactly as the straight-through
    /// [`Simulator::run`](crate::Simulator::run) would and position
    /// the cursor at step zero.
    pub fn new(
        device: &GpuDevice,
        circuit: &Circuit,
        opts: &RunOptions,
    ) -> Result<Self, SimError> {
        let effective = RunOptions {
            memory_limit: opts.memory_limit.or(Some(device.memory_bytes)),
            ..opts.clone()
        };
        check_capacity::<T>(circuit.num_qubits(), &effective)?;
        let (unitary, measured) = circuit.split_measurements();
        let state: StateVector<T> = StateVector::zero(circuit.num_qubits());
        let base_fingerprint = plan_fingerprint(
            circuit,
            effective.fusion_width,
            effective.sweep_width,
            effective.sweep_reorder,
            T::PRECISION_TAG,
        );
        let (plan, steps_total, fingerprint) = if effective.strategy == ExecStrategy::Planned {
            let plan = planner::plan(
                &unitary,
                effective.fusion_width,
                effective.sweep_width,
                effective.sweep_reorder,
                &effective.planner_costs,
                2 * T::BYTES,
            )
            .map_err(|e| {
                SimError::UnsupportedGate(format!(
                    "{e} (transpile to the native set before kernel transformation)"
                ))
            })?;
            let steps = plan.len();
            // The mode-decision digest distinguishes plans that walk the
            // same schedule with different per-segment choices (e.g.
            // differently calibrated cost models).
            let fp = fold_strategy(base_fingerprint, plan.digest);
            (StepPlan::Planned { plan }, steps, fp)
        } else {
            let fusion_width = opts.fusion_width.clamp(1, fusion::MAX_FUSION_WIDTH);
            let program = fusion::try_fuse(&unitary, fusion_width).map_err(|e| {
                SimError::UnsupportedGate(format!(
                    "{e} (transpile to the native set before kernel transformation)"
                ))
            })?;
            if effective.sweep_width > 0 && program.blocks.len() > 1 {
                let sched_opts = schedule::SweepOptions {
                    max_width: effective.sweep_width,
                    reorder: effective.sweep_reorder,
                };
                let sweeps = schedule::sweeps(&program, &sched_opts).sweeps;
                let steps = sweeps.len();
                let exact = !effective.sweep_reorder;
                (StepPlan::Sweeps { program, sweeps, exact }, steps, base_fingerprint)
            } else {
                let steps = program.blocks.len();
                (StepPlan::Blocks { program }, steps, base_fingerprint)
            }
        };
        Ok(SegmentedRun {
            state,
            plan,
            measured,
            cursor: 0,
            steps_total,
            counters: CheckpointCounters::default(),
            fingerprint,
            sampling: SamplingConfig {
                shots: effective.shots,
                seed: effective.seed,
                batch_shots: effective.shot_batch,
            },
            elapsed: Duration::ZERO,
        })
    }

    /// Apply up to `max_steps` further schedule steps (at least one when
    /// not already done, even if `max_steps == 0` would stall). Returns
    /// the number of steps actually applied. Stats accounting per step
    /// matches the straight-through path exactly; the per-call telemetry
    /// deltas sum to the same totals an uninterrupted run would emit.
    pub fn advance(&mut self, max_steps: usize) -> usize {
        if self.cursor >= self.steps_total {
            return 0;
        }
        let start = Instant::now();
        let sim_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SIMULATE);
        let from = self.cursor;
        let end = self.steps_total.min(self.cursor + max_steps.max(1));
        let amp_bytes = (2 * T::BYTES) as u128;
        let n_amps = self.state.len() as u128;
        let before = self.counters;
        while self.cursor < end {
            match &self.plan {
                StepPlan::Sweeps { program, sweeps, exact } => {
                    let sweep = &sweeps[self.cursor];
                    GpuDevice::apply_sweep(
                        self.state.amplitudes_mut(),
                        &program.blocks,
                        sweep,
                        *exact,
                    );
                    self.counters.sweeps_executed += 1;
                    self.counters.kernels_launched += sweep.kernels.len() as u64;
                    self.counters.bytes_touched += 2 * n_amps * amp_bytes;
                    for &ki in &sweep.kernels {
                        self.counters.flops +=
                            n_amps * (1u128 << program.blocks[ki].qubits.len());
                    }
                }
                StepPlan::Blocks { program } => {
                    let block = &program.blocks[self.cursor];
                    GpuDevice::apply_block(self.state.amplitudes_mut(), block);
                    self.counters.kernels_launched += 1;
                    self.counters.bytes_touched += 2 * n_amps * amp_bytes;
                    self.counters.flops += n_amps * (1u128 << block.qubits.len());
                }
                StepPlan::Planned { plan } => {
                    let seg =
                        planner::execute_segment(self.state.amplitudes_mut(), plan, self.cursor);
                    self.counters.sweeps_executed += seg.sweeps_executed;
                    self.counters.kernels_launched += seg.kernels_launched;
                    self.counters.bytes_touched += seg.bytes_touched;
                    self.counters.flops += seg.flops;
                }
            }
            self.cursor += 1;
        }
        let applied = self.counters;
        if applied.sweeps_executed > before.sweeps_executed {
            qgear_telemetry::counter_add(
                qgear_telemetry::names::SWEEPS_EXECUTED,
                (applied.sweeps_executed - before.sweeps_executed) as u128,
            );
        }
        qgear_telemetry::counter_add(
            qgear_telemetry::names::KERNELS_LAUNCHED,
            (applied.kernels_launched - before.kernels_launched) as u128,
        );
        if self.cursor >= self.steps_total && self.counters.gates_applied == 0 {
            self.counters.gates_applied = match &self.plan {
                StepPlan::Blocks { program } | StepPlan::Sweeps { program, .. } => {
                    program.source_gate_count() as u64
                }
                StepPlan::Planned { plan } => plan.source_gates,
            };
            qgear_telemetry::counter_add(
                qgear_telemetry::names::GATES_APPLIED,
                self.counters.gates_applied as u128,
            );
        }
        drop(sim_span);
        self.elapsed += start.elapsed();
        self.cursor - from
    }

    /// Snapshot the current execution state. Cheap relative to the
    /// evolution itself (one amplitude-vector clone); the caller owns
    /// serialization via [`crate::checkpoint::encode`].
    pub fn checkpoint(&self) -> StateCheckpoint<T> {
        StateCheckpoint {
            num_qubits: self.state.num_qubits(),
            cursor: self.cursor as u64,
            steps_total: self.steps_total as u64,
            fingerprint: self.fingerprint,
            counters: self.counters,
            sampling: self.sampling,
            state: self.state.clone(),
        }
    }

    /// Rebuild the plan for `(circuit, opts)` and install a verified
    /// checkpoint's state and cursor into it.
    ///
    /// The checkpoint must describe the *same* plan: the fingerprint,
    /// step count, and amplitude count are all cross-checked against the
    /// freshly-rebuilt schedule, so a checkpoint from a different
    /// circuit, fusion width, or sweep configuration is rejected rather
    /// than silently producing wrong amplitudes. The sampling
    /// configuration is taken from `opts` (the job spec stays
    /// authoritative), which the codec round-trips for audit only.
    pub fn resume(
        device: &GpuDevice,
        circuit: &Circuit,
        opts: &RunOptions,
        ck: StateCheckpoint<T>,
    ) -> Result<Self, CheckpointError> {
        let mut run = SegmentedRun::new(device, circuit, opts)
            .map_err(|e| CheckpointError::Rebuild(e.to_string()))?;
        if ck.fingerprint != run.fingerprint {
            return Err(CheckpointError::PlanMismatch {
                expected: run.fingerprint,
                found: ck.fingerprint,
            });
        }
        if ck.steps_total != run.steps_total as u64 || ck.cursor > ck.steps_total {
            return Err(CheckpointError::CursorOutOfRange {
                cursor: ck.cursor,
                steps_total: run.steps_total as u64,
            });
        }
        if ck.state.len() != run.state.len() {
            return Err(CheckpointError::AmplitudeMismatch {
                expected: 2 * run.state.len() as u64,
                found: 2 * ck.state.len() as u64,
            });
        }
        run.state = ck.state;
        run.cursor = ck.cursor as usize;
        run.counters = ck.counters;
        Ok(run)
    }

    /// Steps applied so far.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Total steps in the schedule.
    pub fn steps_total(&self) -> usize {
        self.steps_total
    }

    /// Whether every schedule step has been applied.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.steps_total
    }

    /// Fingerprint of the plan this run executes.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The (possibly partially-evolved) state.
    pub fn state(&self) -> &StateVector<T> {
        &self.state
    }

    /// Counters accumulated so far, as [`ExecStats`] (real wall-clock
    /// reflects only the work done *in this process* — resumed runs
    /// don't inherit a dead worker's timings).
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            gates_applied: self.counters.gates_applied,
            kernels_launched: self.counters.kernels_launched,
            sweeps_executed: self.counters.sweeps_executed,
            bytes_touched: self.counters.bytes_touched,
            flops: self.counters.flops,
            elapsed: self.elapsed,
            ..ExecStats::default()
        }
    }

    /// Finish the run: sample (if the circuit measures and shots were
    /// requested) and hand back the same shape as
    /// [`Simulator::run`](crate::Simulator::run). Panics if the
    /// schedule is not complete — call after `is_done()`.
    pub fn finish(self, opts: &RunOptions) -> RunOutput<T> {
        assert!(self.is_done(), "finish() before the schedule completed");
        let mut stats = self.stats();
        let sample_start = Instant::now();
        let sample_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SAMPLE);
        let counts = sample_measured(&self.state, &self.measured, opts);
        drop(sample_span);
        stats.sampling_elapsed = sample_start.elapsed();
        RunOutput { state: opts.keep_state.then_some(self.state), counts, stats }
    }
}

impl GpuDevice {
    /// Run a circuit in bounded segments of `segment_steps` schedule
    /// steps each. Functionally identical to [`Simulator::run`] on the
    /// same options (bit-identical amplitudes and counts); exists so
    /// callers that don't need checkpoints can still exercise the
    /// segmented path end to end.
    ///
    /// [`Simulator::run`]: crate::Simulator::run
    pub fn run_segmented<T: CheckpointScalar>(
        &self,
        circuit: &Circuit,
        opts: &RunOptions,
        segment_steps: usize,
    ) -> Result<RunOutput<T>, SimError> {
        let mut run = SegmentedRun::new(self, circuit, opts)?;
        while !run.is_done() {
            run.advance(segment_steps);
        }
        Ok(run.finish(opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{decode, encode};

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        for q in 0..n {
            c.measure(q);
        }
        c
    }

    fn bits<T: CheckpointScalar>(state: &StateVector<T>) -> Vec<u64> {
        state
            .amplitudes()
            .iter()
            .flat_map(|a| [a.re.to_f64().to_bits(), a.im.to_f64().to_bits()])
            .collect()
    }

    #[test]
    fn segmented_matches_straight_through() {
        use crate::Simulator;
        let c = ghz(4);
        let opts = RunOptions { shots: 64, fusion_width: 1, sweep_width: 0, ..Default::default() };
        let dev = GpuDevice::a100_40gb();
        let straight: RunOutput<f64> = dev.run(&c, &opts).unwrap();
        let segmented: RunOutput<f64> = dev.run_segmented(&c, &opts, 1).unwrap();
        assert_eq!(
            bits(straight.state.as_ref().unwrap()),
            bits(segmented.state.as_ref().unwrap())
        );
        assert_eq!(straight.counts, segmented.counts);
        assert_eq!(straight.stats.kernels_launched, segmented.stats.kernels_launched);
        assert_eq!(straight.stats.gates_applied, segmented.stats.gates_applied);
        assert_eq!(straight.stats.flops, segmented.stats.flops);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let c = ghz(3);
        let opts = RunOptions { shots: 32, fusion_width: 1, sweep_width: 0, ..Default::default() };
        let dev = GpuDevice::a100_40gb();

        let mut clean: SegmentedRun<f64> = SegmentedRun::new(&dev, &c, &opts).unwrap();
        while !clean.is_done() {
            clean.advance(1);
        }

        let mut first: SegmentedRun<f64> = SegmentedRun::new(&dev, &c, &opts).unwrap();
        first.advance(2);
        let bytes = encode(&first.checkpoint());
        drop(first); // the "worker" dies here

        let ck = decode::<f64>(&bytes).unwrap();
        assert_eq!(ck.cursor, 2);
        let mut resumed = SegmentedRun::resume(&dev, &c, &opts, ck).unwrap();
        while !resumed.is_done() {
            resumed.advance(1);
        }
        assert_eq!(bits(clean.state()), bits(resumed.state()));
        assert_eq!(clean.stats().kernels_launched, resumed.stats().kernels_launched);
    }

    #[test]
    fn resume_rejects_a_different_plan() {
        let dev = GpuDevice::a100_40gb();
        let opts = RunOptions { fusion_width: 1, sweep_width: 0, ..Default::default() };
        let mut run: SegmentedRun<f64> = SegmentedRun::new(&dev, &ghz(3), &opts).unwrap();
        run.advance(1);
        let ck = run.checkpoint();
        let other = ghz(4);
        assert!(matches!(
            SegmentedRun::resume(&dev, &other, &opts, ck),
            Err(CheckpointError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn sweep_schedule_checkpoints_at_sweep_granularity() {
        use crate::Simulator;
        let c = ghz(4);
        // Narrow sweeps without reordering: several sweeps, exact mode.
        let opts = RunOptions {
            shots: 16,
            fusion_width: 1,
            sweep_width: 2,
            sweep_reorder: false,
            ..Default::default()
        };
        let dev = GpuDevice::a100_40gb();
        let mut run: SegmentedRun<f64> = SegmentedRun::new(&dev, &c, &opts).unwrap();
        assert!(run.steps_total() > 1, "plan should have multiple sweeps");
        run.advance(1);
        let ck = decode::<f64>(&encode(&run.checkpoint())).unwrap();
        let mut resumed = SegmentedRun::resume(&dev, &c, &opts, ck).unwrap();
        while !resumed.is_done() {
            resumed.advance(1);
        }
        let straight: RunOutput<f64> = dev.run(&c, &opts).unwrap();
        assert_eq!(bits(straight.state.as_ref().unwrap()), bits(resumed.state()));
    }
}
