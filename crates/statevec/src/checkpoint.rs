//! The mid-circuit checkpoint codec: a durable, integrity-verified
//! snapshot of a partially-evolved state vector.
//!
//! A [`StateCheckpoint`] captures everything a replacement worker needs
//! to continue a run bit-identically from a segment boundary: the full
//! amplitude vector in execution precision, the schedule cursor into
//! the fused/sweep plan, the deterministic execution counters, the
//! sampling configuration, and a fingerprint of the plan the cursor
//! indexes into (so a checkpoint can never be replayed against a
//! different circuit, fusion window, or sweep schedule).
//!
//! ## Wire format (`QCKP`, version 1)
//!
//! ```text
//! magic   "QCKP"                        4 bytes
//! version u16 LE                        2 bytes
//! section*                              (exactly one META, one STATE)
//!   tag     u8   (1 = META, 2 = STATE)
//!   len     u32 LE (payload bytes)
//!   payload [len bytes]
//!   crc     u32 LE over tag ‖ len ‖ payload
//! ```
//!
//! Every section is CRC-32-framed with the same IEEE polynomial as
//! `qgear-ir::qpy` ([`qgear_ir::qpy::crc32`]); the STATE payload is a
//! `qgear-hdf5lite` container (which carries its own internal CRC), so
//! amplitude bytes are double-covered. The decoder *rejects* — it never
//! "best-efforts" — on a bad magic, an unknown version or section tag,
//! a CRC mismatch, truncation, trailing bytes, a precision or plan
//! mismatch, or any internally-inconsistent metadata. A corrupted
//! checkpoint therefore surfaces as a typed [`CheckpointError`] at the
//! recovery ladder, never as silently-wrong amplitudes.

use crate::sampling::SamplingConfig;
use crate::state::StateVector;
use qgear_hdf5lite::{Compression, Dataset, H5File};
use qgear_ir::qpy::crc32;
use qgear_ir::Circuit;
use qgear_num::{Complex, Scalar};
use std::fmt;

/// Leading magic of every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"QCKP";

/// Current format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Widest register a checkpoint may claim; anything larger is treated
/// as metadata corruption (2^40 fp64 amplitudes is already 16 TiB).
const MAX_CHECKPOINT_QUBITS: u32 = 40;

const SECTION_META: u8 = 1;
const SECTION_STATE: u8 = 2;

/// Fixed width of the META payload (all fields little-endian).
const META_LEN: usize = 1 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 16 + 16 + 8 + 8 + 8;

/// Path of the amplitude dataset inside the STATE container.
const AMPLITUDE_DATASET: &str = "checkpoint/amplitudes";

/// Scalars that can ride in a checkpoint: the codec needs a precision
/// tag and a bit-exact route in and out of an hdf5lite [`Dataset`].
pub trait CheckpointScalar: Scalar {
    /// Precision tag stored in META (the per-component byte width).
    const PRECISION_TAG: u8;

    /// Pack interleaved `re, im` components into a dataset, bit-exactly.
    fn dataset_from(parts: &[Self]) -> Dataset;

    /// Unpack a dataset back into components; errors on a dtype mismatch.
    fn parts_from(ds: &Dataset) -> Result<Vec<Self>, qgear_hdf5lite::H5Error>;
}

impl CheckpointScalar for f32 {
    const PRECISION_TAG: u8 = 4;

    fn dataset_from(parts: &[Self]) -> Dataset {
        Dataset::from_f32(parts, &[parts.len() as u64])
    }

    fn parts_from(ds: &Dataset) -> Result<Vec<Self>, qgear_hdf5lite::H5Error> {
        ds.as_f32()
    }
}

impl CheckpointScalar for f64 {
    const PRECISION_TAG: u8 = 8;

    fn dataset_from(parts: &[Self]) -> Dataset {
        Dataset::from_f64(parts, &[parts.len() as u64])
    }

    fn parts_from(ds: &Dataset) -> Result<Vec<Self>, qgear_hdf5lite::H5Error> {
        ds.as_f64()
    }
}

/// Why a checkpoint was rejected. Every variant means "do not load";
/// the serving recovery ladder counts them and falls back a generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer ended before the advertised structure did.
    Truncated,
    /// Leading bytes are not `QCKP`.
    BadMagic,
    /// Version newer than this build understands.
    UnsupportedVersion(u16),
    /// A section tag outside the known set.
    UnknownSection(u8),
    /// A section's CRC-32 frame failed verification.
    SectionCrc(u8),
    /// The same section appeared twice.
    DuplicateSection(u8),
    /// A required section was absent.
    MissingSection(&'static str),
    /// Metadata is internally inconsistent.
    Malformed(&'static str),
    /// The embedded hdf5lite container failed to parse.
    Container(String),
    /// Checkpoint was written at a different precision than requested.
    PrecisionMismatch {
        /// Tag the caller's scalar type expects.
        expected: u8,
        /// Tag stored in the checkpoint.
        found: u8,
    },
    /// Checkpoint belongs to a different circuit/plan.
    PlanMismatch {
        /// Fingerprint of the plan the caller rebuilt.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// Cursor points past the end of the schedule.
    CursorOutOfRange {
        /// Stored cursor.
        cursor: u64,
        /// Stored schedule length.
        steps_total: u64,
    },
    /// Amplitude count disagrees with the claimed register width.
    AmplitudeMismatch {
        /// `2^(num_qubits+1)` components expected.
        expected: u64,
        /// Components actually present.
        found: u64,
    },
    /// The execution plan could not be rebuilt for resume.
    Rebuild(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::UnknownSection(t) => write!(f, "unknown section tag {t}"),
            CheckpointError::SectionCrc(t) => write!(f, "CRC mismatch in section {t}"),
            CheckpointError::DuplicateSection(t) => write!(f, "duplicate section {t}"),
            CheckpointError::MissingSection(s) => write!(f, "missing section {s}"),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::Container(e) => write!(f, "state container: {e}"),
            CheckpointError::PrecisionMismatch { expected, found } => {
                write!(f, "precision tag {found}, expected {expected}")
            }
            CheckpointError::PlanMismatch { expected, found } => {
                write!(f, "plan fingerprint {found:#x}, expected {expected:#x}")
            }
            CheckpointError::CursorOutOfRange { cursor, steps_total } => {
                write!(f, "cursor {cursor} out of range for {steps_total} steps")
            }
            CheckpointError::AmplitudeMismatch { expected, found } => {
                write!(f, "{found} amplitude components, expected {expected}")
            }
            CheckpointError::Rebuild(why) => write!(f, "plan rebuild failed: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Deterministic execution counters carried across a checkpoint, so a
/// resumed run's final [`crate::ExecStats`] matches an uninterrupted
/// one. Wall-clock timings are deliberately *not* checkpointed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Source gates processed (set when the schedule completes).
    pub gates_applied: u64,
    /// Kernels launched so far.
    pub kernels_launched: u64,
    /// Cache-blocked sweeps executed so far.
    pub sweeps_executed: u64,
    /// State-vector bytes read + written so far.
    pub bytes_touched: u128,
    /// Complex multiply-adds performed so far.
    pub flops: u128,
}

/// One mid-circuit snapshot: everything needed to continue the run
/// bit-identically from `cursor` steps into the schedule.
#[derive(Debug, Clone)]
pub struct StateCheckpoint<T: CheckpointScalar> {
    /// Register width.
    pub num_qubits: u32,
    /// Schedule steps already applied to `state`.
    pub cursor: u64,
    /// Total steps in the schedule.
    pub steps_total: u64,
    /// Fingerprint of `(circuit, fusion/sweep options, precision)` —
    /// see [`plan_fingerprint`]. Resume refuses a mismatch.
    pub fingerprint: u64,
    /// Deterministic counters accumulated so far.
    pub counters: CheckpointCounters,
    /// Sampling configuration the run will use at completion. Sampling
    /// only happens after the last segment, so the "RNG state" of an
    /// in-flight run is exactly its seed configuration.
    pub sampling: SamplingConfig,
    /// The partially-evolved amplitudes.
    pub state: StateVector<T>,
}

/// Fingerprint of the execution plan a checkpoint cursor indexes into:
/// a FNV-1a/splitmix digest of the canonical circuit plus every option
/// that shapes the fused/sweep schedule or the arithmetic. Two runs
/// with equal fingerprints rebuild byte-identical schedules, so a
/// cursor is portable between them; anything else must be rejected.
///
/// Fixed-mode runs use this digest directly (value-stable with earlier
/// releases). Adaptive runs additionally fold the planner's per-segment
/// mode-decision digest in via [`fold_strategy`], so a cursor taken
/// under one plan can never resume under a run whose cost model decided
/// differently — the segmentation itself would differ.
pub fn plan_fingerprint(
    circuit: &Circuit,
    fusion_width: usize,
    sweep_width: usize,
    sweep_reorder: bool,
    precision_tag: u8,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{circuit:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = mix(h, fusion_width as u64);
    h = mix(h, sweep_width as u64);
    h = mix(h, u64::from(sweep_reorder));
    mix(h, u64::from(precision_tag))
}

/// Fold an execution-strategy digest (e.g.
/// [`ExecutionPlan::digest`](crate::planner::ExecutionPlan)) into a plan
/// fingerprint. Any nonzero-entropy digest moves the fingerprint, so
/// fixed-mode cursors (un-folded fingerprints) and adaptive cursors
/// reject each other on resume.
pub fn fold_strategy(fingerprint: u64, strategy_digest: u64) -> u64 {
    mix(mix(fingerprint, 1), strategy_digest)
}

/// One splitmix64 avalanche step (shared by the fingerprint builders).
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Append one CRC-framed section.
fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Serialize a checkpoint to its framed wire format.
pub fn encode<T: CheckpointScalar>(ck: &StateCheckpoint<T>) -> Vec<u8> {
    let mut meta = Vec::with_capacity(META_LEN);
    meta.push(T::PRECISION_TAG);
    meta.extend_from_slice(&ck.num_qubits.to_le_bytes());
    meta.extend_from_slice(&ck.cursor.to_le_bytes());
    meta.extend_from_slice(&ck.steps_total.to_le_bytes());
    meta.extend_from_slice(&ck.fingerprint.to_le_bytes());
    meta.extend_from_slice(&ck.counters.gates_applied.to_le_bytes());
    meta.extend_from_slice(&ck.counters.kernels_launched.to_le_bytes());
    meta.extend_from_slice(&ck.counters.sweeps_executed.to_le_bytes());
    meta.extend_from_slice(&ck.counters.bytes_touched.to_le_bytes());
    meta.extend_from_slice(&ck.counters.flops.to_le_bytes());
    meta.extend_from_slice(&ck.sampling.shots.to_le_bytes());
    meta.extend_from_slice(&ck.sampling.seed.to_le_bytes());
    meta.extend_from_slice(&ck.sampling.batch_shots.to_le_bytes());
    debug_assert_eq!(meta.len(), META_LEN);

    // Interleave re/im components and hand them to the container, which
    // stores little-endian bytes — a bit-exact round trip.
    let mut parts: Vec<T> = Vec::with_capacity(2 * ck.state.len());
    for amp in ck.state.amplitudes() {
        parts.push(amp.re);
        parts.push(amp.im);
    }
    let mut file = H5File::new();
    file.write_dataset(AMPLITUDE_DATASET, T::dataset_from(&parts))
        .expect("fresh container accepts the dataset");
    let state_bytes = file.to_bytes(Compression::ShuffleRle);

    let mut out = Vec::with_capacity(6 + meta.len() + state_bytes.len() + 18);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    push_section(&mut out, SECTION_META, &meta);
    push_section(&mut out, SECTION_STATE, &state_bytes);
    out
}

/// Little-endian readers over the fixed-width META payload.
struct MetaReader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> MetaReader<'a> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.off..self.off + N]);
        self.off += N;
        out
    }

    fn u8(&mut self) -> u8 {
        let [b] = self.take::<1>();
        b
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    fn u128(&mut self) -> u128 {
        u128::from_le_bytes(self.take::<16>())
    }
}

/// Deserialize and *verify* a checkpoint. Any corruption — truncation,
/// a flipped bit anywhere in the buffer, a wrong precision or plan —
/// returns `Err`; this function never panics on arbitrary input and
/// never allocates based on unverified size claims.
pub fn decode<T: CheckpointScalar>(bytes: &[u8]) -> Result<StateCheckpoint<T>, CheckpointError> {
    if bytes.len() < 6 {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }

    let mut meta: Option<&[u8]> = None;
    let mut state: Option<&[u8]> = None;
    let mut off = 6;
    while off < bytes.len() {
        if bytes.len() - off < 9 {
            return Err(CheckpointError::Truncated);
        }
        let tag = bytes[off];
        let len = u32::from_le_bytes([bytes[off + 1], bytes[off + 2], bytes[off + 3], bytes[off + 4]])
            as usize;
        if bytes.len() - off - 9 < len {
            return Err(CheckpointError::Truncated);
        }
        let frame = &bytes[off..off + 5 + len];
        let stored = u32::from_le_bytes([
            bytes[off + 5 + len],
            bytes[off + 6 + len],
            bytes[off + 7 + len],
            bytes[off + 8 + len],
        ]);
        if crc32(frame) != stored {
            return Err(CheckpointError::SectionCrc(tag));
        }
        let payload = &bytes[off + 5..off + 5 + len];
        let slot = match tag {
            SECTION_META => &mut meta,
            SECTION_STATE => &mut state,
            other => return Err(CheckpointError::UnknownSection(other)),
        };
        if slot.is_some() {
            return Err(CheckpointError::DuplicateSection(tag));
        }
        *slot = Some(payload);
        off += 9 + len;
    }
    let meta = meta.ok_or(CheckpointError::MissingSection("META"))?;
    let state = state.ok_or(CheckpointError::MissingSection("STATE"))?;
    if meta.len() != META_LEN {
        return Err(CheckpointError::Malformed("META payload width"));
    }

    let mut r = MetaReader { buf: meta, off: 0 };
    let precision = r.u8();
    if precision != T::PRECISION_TAG {
        return Err(CheckpointError::PrecisionMismatch {
            expected: T::PRECISION_TAG,
            found: precision,
        });
    }
    let num_qubits = r.u32();
    if num_qubits > MAX_CHECKPOINT_QUBITS {
        return Err(CheckpointError::Malformed("implausible register width"));
    }
    let cursor = r.u64();
    let steps_total = r.u64();
    if cursor > steps_total {
        return Err(CheckpointError::CursorOutOfRange { cursor, steps_total });
    }
    let fingerprint = r.u64();
    let counters = CheckpointCounters {
        gates_applied: r.u64(),
        kernels_launched: r.u64(),
        sweeps_executed: r.u64(),
        bytes_touched: r.u128(),
        flops: r.u128(),
    };
    let sampling =
        SamplingConfig { shots: r.u64(), seed: r.u64(), batch_shots: r.u64() };

    let file =
        H5File::from_bytes(state).map_err(|e| CheckpointError::Container(e.to_string()))?;
    let ds = file
        .dataset(AMPLITUDE_DATASET)
        .map_err(|e| CheckpointError::Container(e.to_string()))?;
    let parts = T::parts_from(ds).map_err(|e| CheckpointError::Container(e.to_string()))?;
    let expected = 2u64 << num_qubits;
    if parts.len() as u64 != expected {
        return Err(CheckpointError::AmplitudeMismatch {
            expected,
            found: parts.len() as u64,
        });
    }
    let amps: Vec<Complex<T>> =
        parts.chunks_exact(2).map(|p| Complex::new(p[0], p[1])).collect();

    Ok(StateCheckpoint {
        num_qubits,
        cursor,
        steps_total,
        fingerprint,
        counters,
        sampling,
        state: StateVector::from_amplitudes(amps),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> StateCheckpoint<f64> {
        let mut state: StateVector<f64> = StateVector::zero(3);
        state.amplitudes_mut()[3] = Complex::new(0.25, -0.5);
        StateCheckpoint {
            num_qubits: 3,
            cursor: 2,
            steps_total: 5,
            fingerprint: 0xFEED_FACE_CAFE_F00D,
            counters: CheckpointCounters {
                gates_applied: 0,
                kernels_launched: 7,
                sweeps_executed: 2,
                bytes_touched: 4096,
                flops: 512,
            },
            sampling: SamplingConfig { shots: 100, seed: 9, batch_shots: 0 },
            state,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample_checkpoint();
        let bytes = encode(&ck);
        let back: StateCheckpoint<f64> = decode(&bytes).expect("roundtrip");
        assert_eq!(back.num_qubits, ck.num_qubits);
        assert_eq!(back.cursor, ck.cursor);
        assert_eq!(back.steps_total, ck.steps_total);
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.counters, ck.counters);
        assert_eq!(back.sampling, ck.sampling);
        for (a, b) in ck.state.amplitudes().iter().zip(back.state.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn fp32_roundtrip_is_bit_exact() {
        let mut state: StateVector<f32> = StateVector::zero(2);
        state.amplitudes_mut()[1] = Complex::new(0.125f32, -0.375);
        let ck = StateCheckpoint {
            num_qubits: 2,
            cursor: 0,
            steps_total: 1,
            fingerprint: 1,
            counters: CheckpointCounters::default(),
            sampling: SamplingConfig { shots: 1, seed: 1, batch_shots: 0 },
            state,
        };
        let back: StateCheckpoint<f32> = decode(&encode(&ck)).expect("roundtrip");
        for (a, b) in ck.state.amplitudes().iter().zip(back.state.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&sample_checkpoint());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode::<f64>(&bad).is_err(),
                    "flip at byte {i} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode(&sample_checkpoint());
        for cut in 0..bytes.len() {
            assert!(decode::<f64>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn precision_mismatch_is_rejected() {
        let bytes = encode(&sample_checkpoint());
        assert!(matches!(
            decode::<f32>(&bytes),
            Err(CheckpointError::PrecisionMismatch { expected: 4, found: 8 })
        ));
    }

    #[test]
    fn fingerprint_separates_plans() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(3);
        b.h(0).cx(0, 2);
        let fa = plan_fingerprint(&a, 5, 12, true, 8);
        assert_eq!(fa, plan_fingerprint(&a, 5, 12, true, 8), "pure function");
        assert_ne!(fa, plan_fingerprint(&b, 5, 12, true, 8), "circuit");
        assert_ne!(fa, plan_fingerprint(&a, 1, 12, true, 8), "fusion width");
        assert_ne!(fa, plan_fingerprint(&a, 5, 0, true, 8), "sweep width");
        assert_ne!(fa, plan_fingerprint(&a, 5, 12, false, 8), "reorder");
        assert_ne!(fa, plan_fingerprint(&a, 5, 12, true, 4), "precision");
    }
}
