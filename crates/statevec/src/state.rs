//! State-vector storage and basic linear-algebra queries.

use qgear_num::{AlignedVec, Complex, Scalar};

/// A `2^n`-amplitude quantum state (Eq. 1), generic over precision.
///
/// Amplitudes live in cache-line-aligned storage ([`AlignedVec`]): the base
/// address is always 64-byte aligned, so the SIMD lane kernels in
/// [`crate::gpu`] stream over the array without ever straddling a cache
/// line at the start of a lane vector.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector<T: Scalar> {
    num_qubits: u32,
    amps: AlignedVec<Complex<T>>,
}

impl<T: Scalar> StateVector<T> {
    /// `|0…0⟩` over `n` qubits. Allocates `2^n` amplitudes; callers are
    /// responsible for memory-capacity checks (see `RunOptions`).
    pub fn zero(num_qubits: u32) -> Self {
        assert!(num_qubits < usize::BITS, "qubit count overflows the address space");
        let mut amps = AlignedVec::from_elem(Complex::ZERO, 1usize << num_qubits);
        amps[0] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Copy existing amplitudes into aligned storage (length must be a
    /// power of two).
    pub fn from_amplitudes(amps: Vec<Complex<T>>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        let num_qubits = amps.len().trailing_zeros();
        StateVector { num_qubits, amps: AlignedVec::from_slice(&amps) }
    }

    /// Register width.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of amplitudes (`2^n`).
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// True only for the (unrepresentable) zero-qubit edge case guard.
    pub fn is_empty(&self) -> bool {
        self.amps.is_empty()
    }

    /// Immutable amplitude access. The base pointer is 64-byte aligned.
    pub fn amplitudes(&self) -> &[Complex<T>] {
        self.amps.as_slice()
    }

    /// Mutable amplitude access (engines' working surface).
    pub fn amplitudes_mut(&mut self) -> &mut [Complex<T>] {
        self.amps.as_mut_slice()
    }

    /// Copy out into a plain amplitude vector.
    pub fn into_amplitudes(self) -> Vec<Complex<T>> {
        self.amps.to_vec()
    }

    /// Memory footprint in bytes (2 reals per amplitude).
    pub fn byte_len(&self) -> usize {
        self.amps.len() * 2 * T::BYTES
    }

    /// Total squared norm; 1 for a valid state.
    pub fn norm_sqr(&self) -> T {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalize in place (guards against fp32 drift on deep circuits).
    pub fn renormalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > T::ZERO {
            let inv = T::ONE / n;
            for a in self.amps.iter_mut() {
                *a = a.scale(inv);
            }
        }
    }

    /// Born-rule probability of each basis state.
    pub fn probabilities(&self) -> Vec<T> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that qubit `q` measures `|1⟩`.
    pub fn prob_one(&self, q: u32) -> T {
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Expectation value of Pauli-Z on qubit `q`: `P(0) − P(1)`.
    pub fn expect_z(&self, q: u32) -> T {
        T::ONE - self.prob_one(q) - self.prob_one(q)
    }

    /// Marginal probability distribution over an ordered subset of qubits.
    /// `qubits[j]` maps to bit `j` of the returned distribution's index.
    /// Runs in one pass over the full state.
    pub fn marginal(&self, qubits: &[u32]) -> Vec<T> {
        let m = qubits.len();
        assert!(m <= 30, "marginal over too many qubits");
        let mut out = vec![T::ZERO; 1usize << m];
        for (i, a) in self.amps.iter().enumerate() {
            let mut key = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                key |= ((i >> q) & 1) << j;
            }
            out[key] += a.norm_sqr();
        }
        out
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &Self) -> Complex<T> {
        assert_eq!(self.len(), other.len());
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` (global-phase insensitive).
    pub fn fidelity(&self, other: &Self) -> T {
        self.inner(other).norm_sqr()
    }

    /// Convert precision (e.g. compare an fp32 run against the fp64 oracle).
    pub fn cast<U: Scalar>(&self) -> StateVector<U> {
        let amps: Vec<Complex<U>> = self.amps.iter().map(|a| a.cast()).collect();
        StateVector { num_qubits: self.num_qubits, amps: AlignedVec::from_slice(&amps) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_num::C64;

    #[test]
    fn zero_state_basics() {
        let s: StateVector<f64> = StateVector::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.len(), 8);
        assert_eq!(s.byte_len(), 8 * 16);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.amplitudes()[0], C64::ONE);
    }

    #[test]
    fn fp32_byte_len() {
        let s: StateVector<f32> = StateVector::zero(10);
        assert_eq!(s.byte_len(), 1024 * 8); // the paper's fp32: 8 B/amplitude
    }

    #[test]
    fn from_amplitudes_infers_width() {
        let amps = vec![C64::ZERO; 16];
        let s = StateVector::from_amplitudes(amps);
        assert_eq!(s.num_qubits(), 4);
    }

    #[test]
    #[should_panic(expected = "must be 2^n")]
    fn non_power_of_two_rejected() {
        StateVector::from_amplitudes(vec![C64::ZERO; 3]);
    }

    #[test]
    fn prob_one_and_expect_z() {
        // |10⟩: qubit 1 is 1, qubit 0 is 0.
        let mut amps = vec![C64::ZERO; 4];
        amps[2] = C64::ONE;
        let s = StateVector::from_amplitudes(amps);
        assert_eq!(s.prob_one(1), 1.0);
        assert_eq!(s.prob_one(0), 0.0);
        assert_eq!(s.expect_z(1), -1.0);
        assert_eq!(s.expect_z(0), 1.0);
    }

    #[test]
    fn marginal_distribution() {
        // Uniform 2-qubit state: marginal over qubit 1 alone = [0.5, 0.5].
        let amps = vec![C64::from_re(0.5); 4];
        let s = StateVector::from_amplitudes(amps);
        let m = s.marginal(&[1]);
        assert!((m[0] - 0.5).abs() < 1e-15);
        assert!((m[1] - 0.5).abs() < 1e-15);
        // Marginal over both, reversed order: index bit 0 = qubit 1.
        let m2 = s.marginal(&[1, 0]);
        assert_eq!(m2.len(), 4);
        for p in m2 {
            assert!((p - 0.25).abs() < 1e-15);
        }
    }

    #[test]
    fn renormalize_restores_unit_norm() {
        let mut s = StateVector::from_amplitudes(vec![C64::from_re(2.0), C64::ZERO]);
        s.renormalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fidelity_and_inner() {
        let a: StateVector<f64> = StateVector::zero(2);
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-15);
        let mut amps = vec![C64::ZERO; 4];
        amps[3] = C64::ONE;
        let c = StateVector::from_amplitudes(amps);
        assert_eq!(a.fidelity(&c), 0.0);
    }

    #[test]
    fn cast_roundtrip() {
        let mut s: StateVector<f64> = StateVector::zero(2);
        s.amplitudes_mut()[1] = C64::new(0.25, -0.5);
        let t: StateVector<f32> = s.cast();
        let u: StateVector<f64> = t.cast();
        assert_eq!(s.amplitudes()[1], u.amplitudes()[1]);
    }
}
