//! Batched multi-circuit execution: evolve many same-shape circuits in
//! lockstep over one batch-major amplitude array.
//!
//! Production traffic at serving scale is dominated by many *small*
//! circuits that share a structure — the same parametrized ansatz or
//! QCrank template resubmitted with different angles. Running them one
//! job at a time leaves the SoA kernels starved: every kernel pass pays
//! its gather/scatter bookkeeping and dispatch overhead for a handful of
//! amplitudes. This module lays the members' amplitudes out
//! **batch-major** (amplitude index outer, batch index inner) so one
//! schedule walk touches the per-pass index arithmetic once and streams
//! contiguous member lanes through it — the memory-bandwidth argument of
//! Qibo and "Warp Speed" applied across circuits instead of within one.
//!
//! ## Bit-identity contract
//!
//! Broadcasting the *schedule* is a performance decision only; the
//! per-member **arithmetic** is exactly what a solo [`GpuDevice`] run
//! performs. Each member is fused and scheduled from its own gate
//! parameters, executes its own kernel matrices through the same scalar
//! operations in the same order, and its amplitudes occupy a strided
//! lane no other member reads or writes. Consequently every member's
//! final state is **bit-identical** to its standalone run, independent
//! of batch size, member order, and worker thread count (the parallel
//! groups are data-disjoint exactly as in `apply_block`).
//!
//! Because kernel *classification* is value-dependent (a `ry(0)` block
//! is diagonal where `ry(0.3)` is not), two same-shape members can fuse
//! into structurally different schedules. [`run_batched`] detects this
//! and returns [`BatchError::Incongruent`]; callers fall back to solo
//! dispatch for such batches, keeping the contract unconditional.

use crate::arena;
use crate::backend::{ExecStats, RunOptions, SimError};
use crate::gpu::{GpuDevice, KernelPlan, SharedState};
use crate::planner::ExecStrategy;
use crate::state::StateVector;
use qgear_ir::fusion::{self, FusedBlock, FusedProgram};
use qgear_ir::schedule::{self, Sweep};
use qgear_ir::Circuit;
use qgear_num::{Complex, Scalar};
use rayon::prelude::*;
use std::time::Instant;

/// Why a batch could not execute as a batch. `Incongruent` is the
/// expected soft failure (fall back to solo dispatch); the others are
/// hard errors of the same kinds solo execution raises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// Members fused or scheduled into different structures (same shape,
    /// parameter-dependent classification drift). Not an error in any
    /// member — the batch just cannot share a schedule walk.
    Incongruent(String),
    /// The requested options cannot drive a batch (e.g. the adaptive
    /// planner strategy, which plans per circuit).
    Unsupported(String),
    /// A member failed the same way it would have failed solo.
    Sim(SimError),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Incongruent(why) => write!(f, "incongruent batch: {why}"),
            BatchError::Unsupported(why) => write!(f, "unsupported batch: {why}"),
            BatchError::Sim(e) => write!(f, "member error: {e}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// A batch-major amplitude container: `amps[i * batch + m]` is amplitude
/// `i` of member `m`. Members are strided lanes of one allocation, so a
/// kernel pass over amplitude groups streams all members through the
/// same index arithmetic.
#[derive(Debug, Clone)]
pub struct BatchStateVector<T: Scalar> {
    num_qubits: u32,
    batch: usize,
    amps: qgear_num::AlignedVec<Complex<T>>,
}

impl<T: Scalar> BatchStateVector<T> {
    /// `batch` copies of `|0…0⟩` over `n` qubits, in cache-line-aligned
    /// storage like the solo [`StateVector`].
    pub fn zero(num_qubits: u32, batch: usize) -> Self {
        assert!(num_qubits < usize::BITS, "qubit count overflows the address space");
        let mut amps =
            qgear_num::AlignedVec::from_elem(Complex::ZERO, (1usize << num_qubits) * batch);
        for amp in amps.iter_mut().take(batch) {
            *amp = Complex::ONE;
        }
        BatchStateVector { num_qubits, batch, amps }
    }

    /// Register width shared by every member.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of members.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Amplitudes per member (`2^n`).
    pub fn member_len(&self) -> usize {
        1usize << self.num_qubits
    }

    /// The raw batch-major amplitude array.
    pub fn amplitudes(&self) -> &[Complex<T>] {
        self.amps.as_slice()
    }

    /// Extract one member's state as a standalone [`StateVector`].
    pub fn member_state(&self, m: usize) -> StateVector<T> {
        assert!(m < self.batch);
        let amps = (0..self.member_len()).map(|i| self.amps[i * self.batch + m]).collect();
        StateVector::from_amplitudes(amps)
    }

    /// One member's marginal over an ordered qubit subset — the exact
    /// accumulation [`StateVector::marginal`] performs, on the strided
    /// lane, so downstream sampling is bit-identical to the solo path.
    pub fn member_marginal(&self, m: usize, qubits: &[u32]) -> Vec<T> {
        assert!(m < self.batch);
        let mq = qubits.len();
        assert!(mq <= 30, "marginal over too many qubits");
        let mut out = vec![T::ZERO; 1usize << mq];
        for i in 0..self.member_len() {
            let a = self.amps[i * self.batch + m];
            let mut key = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                key |= ((i >> q) & 1) << j;
            }
            out[key] += a.norm_sqr();
        }
        out
    }
}

/// One member's evolved state and its solo-equivalent counters.
#[derive(Debug, Clone)]
pub struct BatchMemberOutput<T: Scalar> {
    /// The member's final state (always kept: batch callers sample from
    /// it and decide retention themselves).
    pub state: StateVector<T>,
    /// Counters a solo run of this member would have reported (elapsed
    /// fields carry the whole batch's wall time).
    pub stats: ExecStats,
}

/// A member's per-block execution choice, mirroring the dispatch inside
/// `GpuDevice::apply_block`: element-wise diagonal multiply or dense
/// gather/mul-add/scatter, each with the member's own matrix.
enum BlockPlan<T: Scalar> {
    Diag(Vec<Complex<T>>),
    Dense(Vec<Complex<T>>),
}

/// Evolve `circuits` in lockstep on `device`, one member per batch lane.
///
/// Structural knobs (`fusion_width`, `sweep_width`, `sweep_reorder`,
/// `memory_limit`) come from `opts`; per-member sampling knobs are the
/// caller's business — the returned states feed the same
/// `marginal_probs`/`sample_from_probs` pipeline solo serving uses.
///
/// Every member's state is bit-identical to what a solo
/// `device.run(circuit, opts)` evolution would produce (see the module
/// docs for the argument); counters match the solo formulas per member.
pub fn run_batched<T: Scalar>(
    device: &GpuDevice,
    circuits: &[&Circuit],
    opts: &RunOptions,
) -> Result<Vec<BatchMemberOutput<T>>, BatchError> {
    if circuits.is_empty() {
        return Ok(Vec::new());
    }
    if opts.strategy == ExecStrategy::Planned {
        return Err(BatchError::Unsupported(
            "the adaptive planner prices segments per circuit; batches run fixed-mode".into(),
        ));
    }
    let batch = circuits.len();
    let num_qubits = circuits[0].num_qubits();
    if let Some(odd) = circuits.iter().find(|c| c.num_qubits() != num_qubits) {
        return Err(BatchError::Incongruent(format!(
            "member width {} != leader width {num_qubits}",
            odd.num_qubits()
        )));
    }
    if num_qubits >= usize::BITS - 1 {
        return Err(BatchError::Sim(SimError::TooManyQubits(num_qubits)));
    }
    // Capacity: the batch array holds every member at once.
    let limit = opts.memory_limit.unwrap_or(device.memory_bytes);
    let required = (1u128 << num_qubits) * 2 * T::BYTES as u128 * batch as u128;
    if required > limit {
        return Err(BatchError::Sim(SimError::OutOfMemory { required, limit }));
    }

    // Fuse and schedule every member from its own parameters; the batch
    // only proceeds when the structures agree (same block boundaries and
    // supports, same sweep grouping), which is what makes one schedule
    // walk valid for all lanes.
    let width = opts.fusion_width.clamp(1, fusion::MAX_FUSION_WIDTH);
    let mut programs: Vec<FusedProgram> = Vec::with_capacity(batch);
    for circuit in circuits {
        let (unitary, _) = circuit.split_measurements();
        let program = fusion::try_fuse(&unitary, width).map_err(|e| {
            BatchError::Sim(SimError::UnsupportedGate(format!(
                "{e} (transpile to the native set before kernel transformation)"
            )))
        })?;
        programs.push(program);
    }
    check_block_congruence(&programs)?;

    let sweeping = opts.sweep_width > 0 && programs[0].blocks.len() > 1;
    let mut plans: Vec<schedule::SweepSchedule> = Vec::new();
    if sweeping {
        let sched_opts =
            schedule::SweepOptions { max_width: opts.sweep_width, reorder: opts.sweep_reorder };
        plans = programs.iter().map(|p| schedule::sweeps(p, &sched_opts)).collect();
        check_sweep_congruence(&plans)?;
    }

    // --- lockstep evolution over the batch-major array -------------------
    let start = Instant::now();
    let sim_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SIMULATE);
    let mut state: BatchStateVector<T> = BatchStateVector::zero(num_qubits, batch);
    let n_amps = state.member_len() as u128;
    let amp_bytes = (2 * T::BYTES) as u128;
    let mut stats = ExecStats::default();
    if sweeping {
        for (si, sweep) in plans[0].sweeps.iter().enumerate() {
            let member_sweeps: Vec<&Sweep> = plans.iter().map(|p| &p.sweeps[si]).collect();
            apply_sweep_batched(&mut state, &programs, &member_sweeps, !opts.sweep_reorder);
            stats.sweeps_executed += 1;
            stats.kernels_launched += sweep.kernels.len() as u64;
            stats.bytes_touched += 2 * n_amps * amp_bytes;
            for &ki in &sweep.kernels {
                stats.flops += n_amps * (1u128 << programs[0].blocks[ki].qubits.len());
            }
        }
        qgear_telemetry::counter_add(
            qgear_telemetry::names::SWEEPS_EXECUTED,
            stats.sweeps_executed as u128,
        );
    } else {
        for bi in 0..programs[0].blocks.len() {
            let blocks: Vec<&FusedBlock> = programs.iter().map(|p| &p.blocks[bi]).collect();
            apply_block_batched(&mut state, &blocks);
            stats.kernels_launched += 1;
            stats.bytes_touched += 2 * n_amps * amp_bytes;
            stats.flops += n_amps * (1u128 << programs[0].blocks[bi].qubits.len());
        }
    }
    qgear_telemetry::counter_add(
        qgear_telemetry::names::GATES_APPLIED,
        programs.iter().map(|p| p.source_gate_count() as u128).sum(),
    );
    qgear_telemetry::counter_add(
        qgear_telemetry::names::KERNELS_LAUNCHED,
        stats.kernels_launched as u128,
    );
    drop(sim_span);
    stats.elapsed = start.elapsed();

    Ok((0..batch)
        .map(|m| {
            let mut member_stats = stats.clone();
            member_stats.gates_applied = programs[m].source_gate_count() as u64;
            BatchMemberOutput { state: state.member_state(m), stats: member_stats }
        })
        .collect())
}

/// All members must fuse into the same block boundaries over the same
/// qubit supports (in the same operand order — the order fixes the
/// local-bit layout of each kernel).
fn check_block_congruence(programs: &[FusedProgram]) -> Result<(), BatchError> {
    let leader = &programs[0];
    for (m, p) in programs.iter().enumerate().skip(1) {
        if p.blocks.len() != leader.blocks.len() {
            return Err(BatchError::Incongruent(format!(
                "member {m} fused into {} blocks, leader into {}",
                p.blocks.len(),
                leader.blocks.len()
            )));
        }
        for (bi, (a, b)) in leader.blocks.iter().zip(&p.blocks).enumerate() {
            if a.qubits != b.qubits {
                return Err(BatchError::Incongruent(format!(
                    "member {m} block {bi} supports {:?} != leader {:?}",
                    b.qubits, a.qubits
                )));
            }
        }
    }
    Ok(())
}

/// All members must schedule into the same sweeps: same kernel grouping,
/// same union supports, same diagonal classification (the flag selects a
/// different execution path, so it is part of the structure).
fn check_sweep_congruence(plans: &[schedule::SweepSchedule]) -> Result<(), BatchError> {
    let leader = &plans[0];
    for (m, p) in plans.iter().enumerate().skip(1) {
        if p.sweeps.len() != leader.sweeps.len() {
            return Err(BatchError::Incongruent(format!(
                "member {m} scheduled {} sweeps, leader {}",
                p.sweeps.len(),
                leader.sweeps.len()
            )));
        }
        for (si, (a, b)) in leader.sweeps.iter().zip(&p.sweeps).enumerate() {
            if a.kernels != b.kernels || a.qubits != b.qubits || a.diagonal != b.diagonal {
                return Err(BatchError::Incongruent(format!(
                    "member {m} sweep {si} diverges from the leader's grouping"
                )));
            }
        }
    }
    Ok(())
}

/// One fused-block pass over the whole batch. `blocks[m]` is member `m`'s
/// block at this schedule position; all share the leader's support. Index
/// arithmetic is computed once per group and reused across every lane;
/// per-lane arithmetic replays `GpuDevice::apply_block` exactly.
fn apply_block_batched<T: Scalar>(state: &mut BatchStateVector<T>, blocks: &[&FusedBlock]) {
    let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::APPLY_BLOCK);
    qgear_telemetry::counter_add(
        qgear_telemetry::names::AMPLITUDES_TOUCHED,
        2 * state.amps.len() as u128,
    );
    let batch = state.batch;
    let leader = blocks[0];
    let k = leader.qubits.len();
    let dim = 1usize << k;
    debug_assert!(dim <= 64);
    // Per-member plan: the same diagonal-vs-dense dispatch the solo path
    // makes, so each lane multiplies through its solo matrices.
    let member_plans: Vec<BlockPlan<T>> = blocks
        .iter()
        .map(|b| match b.unitary.diagonal(1e-15) {
            Some(diag) => BlockPlan::Diag(diag.iter().map(|c| c.cast()).collect()),
            None => BlockPlan::Dense(b.unitary.elements().iter().map(|c| c.cast()).collect()),
        })
        .collect();
    let mut sorted = leader.qubits.clone();
    sorted.sort_unstable();
    let masks: Vec<usize> = leader.qubits.iter().map(|&q| 1usize << q).collect();
    let groups = state.member_len() >> k;

    let shared = SharedState(state.amps.as_mut_slice().as_mut_ptr());
    let shared = &shared;
    let member_plans = &member_plans;
    let masks = &masks;
    let sorted = &sorted;
    (0..groups).into_par_iter().for_each(move |g| {
        let mut base = g;
        for &q in sorted {
            let low = base & ((1usize << q) - 1);
            base = ((base >> q) << (q + 1)) | low;
        }
        // Member-independent gather indices for this group.
        let mut idx = [0usize; 64];
        for (local, i) in idx.iter_mut().enumerate().take(dim) {
            let mut v = base;
            for (j, &mask) in masks.iter().enumerate() {
                if local & (1 << j) != 0 {
                    v |= mask;
                }
            }
            *i = v;
        }
        for (m, plan) in member_plans.iter().enumerate() {
            match plan {
                BlockPlan::Diag(d) => {
                    for local in 0..dim {
                        // SAFETY: lane (idx, m) pairs are disjoint across
                        // tasks (group-disjoint indices, exclusive lanes).
                        unsafe {
                            let slot = idx[local] * batch + m;
                            let mut amp = shared.read(slot);
                            amp *= d[local];
                            shared.write(slot, amp);
                        }
                    }
                }
                BlockPlan::Dense(mat) => {
                    let mut scratch = [Complex::<T>::ZERO; 64];
                    for local in 0..dim {
                        // SAFETY: same disjointness argument.
                        scratch[local] = unsafe { shared.read(idx[local] * batch + m) };
                    }
                    for (local, row) in mat.chunks_exact(dim).enumerate() {
                        let mut acc = Complex::<T>::ZERO;
                        for c in 0..dim {
                            acc = row[c].mul_add(scratch[c], acc);
                        }
                        // SAFETY: same disjointness argument.
                        unsafe { shared.write(idx[local] * batch + m, acc) };
                    }
                }
            }
        }
    });
}

/// One scheduled sweep over the whole batch: gather each tile once per
/// member lane, run the member's kernel plans while it is hot, scatter.
/// `member_sweeps[m]` is member `m`'s sweep at this schedule position
/// (congruence guarantees identical structure; matrices differ).
fn apply_sweep_batched<T: Scalar>(
    state: &mut BatchStateVector<T>,
    programs: &[FusedProgram],
    member_sweeps: &[&Sweep],
    exact: bool,
) {
    let sweep = member_sweeps[0];
    if let [only] = sweep.kernels.as_slice() {
        let blocks: Vec<&FusedBlock> = programs.iter().map(|p| &p.blocks[*only]).collect();
        apply_block_batched(state, &blocks);
        return;
    }
    let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::APPLY_SWEEP);
    qgear_telemetry::counter_add(
        qgear_telemetry::names::AMPLITUDES_TOUCHED,
        2 * state.amps.len() as u128,
    );
    let batch = state.batch;
    // All-diagonal sweeps: one element-wise pass per lane, member plans
    // applied in schedule order — the solo fast path per lane.
    if sweep.diagonal {
        // Per member, per kernel: the cast diagonal and its qubit masks.
        type DiagPlan<T> = Vec<(Vec<Complex<T>>, Vec<usize>)>;
        let member_plans: Vec<DiagPlan<T>> = programs
            .iter()
            .map(|program| {
                sweep
                    .kernels
                    .iter()
                    .map(|&ki| {
                        let b = &program.blocks[ki];
                        let diag = b.unitary.diagonal(1e-15).expect("diagonal sweep member");
                        (
                            diag.iter().map(|c| c.cast()).collect(),
                            b.qubits.iter().map(|&q| 1usize << q).collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        state.amps.as_mut_slice().par_iter_mut().enumerate().for_each(|(slot, amp)| {
            let (i, m) = (slot / batch, slot % batch);
            for (d, masks) in &member_plans[m] {
                let mut local = 0usize;
                for (j, &mask) in masks.iter().enumerate() {
                    if i & mask != 0 {
                        local |= 1 << j;
                    }
                }
                *amp *= d[local];
            }
        });
        return;
    }

    let u = sweep.qubits.len();
    let tile = 1usize << u;
    debug_assert!(tile <= state.member_len());
    let pos =
        |q: u32| sweep.qubits.iter().position(|&x| x == q).expect("kernel qubit in sweep");
    // Member kernel plans in tile-slot space — the same construction as
    // the solo sweep path, per member, so Diag/Dense/Factored choices and
    // matrices are each member's own.
    let member_plans: Vec<Vec<KernelPlan<T>>> = programs
        .iter()
        .map(|program| {
            sweep
                .kernels
                .iter()
                .map(|&ki| {
                    let b = &program.blocks[ki];
                    let masks: Vec<usize> = b.qubits.iter().map(|&q| 1usize << pos(q)).collect();
                    if let Some(diag) = b.unitary.diagonal(1e-15) {
                        return KernelPlan::diag(
                            diag.iter().map(|c| c.cast()).collect(),
                            &masks,
                            1usize << sweep.qubits.len(),
                        );
                    }
                    let k = b.qubits.len();
                    let mixing = b.mixing_mask();
                    let mu = mixing.iter().filter(|&&m| m).count();
                    if !exact && mu < k {
                        return KernelPlan::factored(b, &mixing, &masks);
                    }
                    KernelPlan::dense(
                        b.unitary.elements().iter().map(|c| c.cast()).collect(),
                        &masks,
                    )
                })
                .collect()
        })
        .collect();
    let mut offs = vec![0usize; tile];
    for (j, &q) in sweep.qubits.iter().enumerate() {
        let bit = 1usize << q;
        for i in 0..(1usize << j) {
            offs[(1usize << j) | i] = offs[i] | bit;
        }
    }

    let groups = state.member_len() >> u;
    let shared = SharedState(state.amps.as_mut_slice().as_mut_ptr());
    let shared = &shared;
    let member_plans = &member_plans;
    let offs = &offs;
    let union_qubits = &sweep.qubits;
    (0..groups).into_par_iter().for_each(move |g| {
        arena::with_scratch::<T, _>(tile, |scratch| {
            let mut base = g;
            for &q in union_qubits {
                let low = base & ((1usize << q) - 1);
                base = ((base >> q) << (q + 1)) | low;
            }
            for (m, plans) in member_plans.iter().enumerate() {
                // Gather the member's tile lane. SAFETY: distinct groups
                // expand to disjoint index sets and each lane belongs to
                // exactly one member, so tasks never alias.
                for (slot, &off) in offs.iter().enumerate() {
                    scratch[slot] = unsafe { shared.read((base | off) * batch + m) };
                }
                for plan in plans {
                    plan.apply(scratch, tile);
                }
                // SAFETY: same disjointness argument.
                for (slot, &off) in offs.iter().enumerate() {
                    unsafe { shared.write((base | off) * batch + m, scratch[slot]) };
                }
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{RunOutput, Simulator};

    fn ansatz(n: u32, thetas: &[f64]) -> Circuit {
        let mut c = Circuit::new(n);
        for (q, &t) in thetas.iter().enumerate() {
            let q = (q as u32) % n;
            c.h(q).ry(t, q).cx(q, (q + 1) % n).rz(-t * 0.5, (q + 1) % n);
        }
        c.measure_all();
        c
    }

    fn solo_state(circ: &Circuit, opts: &RunOptions) -> Vec<Complex<f64>> {
        let evolve = RunOptions { shots: 0, keep_state: true, ..opts.clone() };
        let out: RunOutput<f64> = GpuDevice::a100_40gb().run(circ, &evolve).unwrap();
        out.state.unwrap().amplitudes().to_vec()
    }

    fn assert_bits_equal(a: &[Complex<f64>], b: &[Complex<f64>], what: &str) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}");
        }
    }

    #[test]
    fn every_member_is_bit_identical_to_its_solo_run() {
        let members: Vec<Circuit> = (0..5)
            .map(|i| ansatz(4, &[0.1 + 0.7 * i as f64, -0.3 * i as f64, 1.1, 0.4 * i as f64]))
            .collect();
        let refs: Vec<&Circuit> = members.iter().collect();
        for (fusion_width, sweep_width) in [(1usize, 0usize), (3, 0), (3, 6), (1, 6)] {
            let opts = RunOptions { fusion_width, sweep_width, ..Default::default() };
            let outs = run_batched::<f64>(&GpuDevice::a100_40gb(), &refs, &opts)
                .expect("congruent parameter sweep");
            for (m, out) in outs.iter().enumerate() {
                let solo = solo_state(&members[m], &opts);
                assert_bits_equal(
                    out.state.amplitudes(),
                    &solo,
                    &format!("member {m} width {fusion_width} sweep {sweep_width}"),
                );
            }
        }
    }

    #[test]
    fn member_order_and_batch_size_do_not_change_results() {
        let a = ansatz(3, &[0.2, 1.4, -0.6]);
        let b = ansatz(3, &[2.0, 0.1, 0.9]);
        let c = ansatz(3, &[-1.2, 0.8, 0.3]);
        let opts = RunOptions::default();
        let fwd = run_batched::<f64>(&GpuDevice::a100_40gb(), &[&a, &b, &c], &opts).unwrap();
        let rev = run_batched::<f64>(&GpuDevice::a100_40gb(), &[&c, &b, &a], &opts).unwrap();
        let solo_b = run_batched::<f64>(&GpuDevice::a100_40gb(), &[&b], &opts).unwrap();
        assert_bits_equal(fwd[1].state.amplitudes(), rev[1].state.amplitudes(), "order");
        assert_bits_equal(fwd[1].state.amplitudes(), solo_b[0].state.amplitudes(), "size");
    }

    #[test]
    fn stats_match_the_solo_formulas() {
        let members: Vec<Circuit> = (0..3).map(|i| ansatz(4, &[0.3 * i as f64, 0.7, 1.9])).collect();
        let refs: Vec<&Circuit> = members.iter().collect();
        let opts = RunOptions::default();
        let outs = run_batched::<f64>(&GpuDevice::a100_40gb(), &refs, &opts).unwrap();
        for (m, out) in outs.iter().enumerate() {
            let evolve = RunOptions { shots: 0, keep_state: true, ..opts.clone() };
            let solo: RunOutput<f64> = GpuDevice::a100_40gb().run(&members[m], &evolve).unwrap();
            assert_eq!(out.stats.gates_applied, solo.stats.gates_applied);
            assert_eq!(out.stats.kernels_launched, solo.stats.kernels_launched);
            assert_eq!(out.stats.sweeps_executed, solo.stats.sweeps_executed);
            assert_eq!(out.stats.bytes_touched, solo.stats.bytes_touched);
            assert_eq!(out.stats.flops, solo.stats.flops);
        }
    }

    #[test]
    fn member_marginal_matches_state_marginal() {
        let a = ansatz(4, &[0.4, 1.1, -0.2]);
        let b = ansatz(4, &[1.7, 0.05, 2.4]);
        let outs =
            run_batched::<f64>(&GpuDevice::a100_40gb(), &[&a, &b], &RunOptions::default()).unwrap();
        // Re-run the batch to exercise the container API directly.
        let (unitary_a, measured) = a.split_measurements();
        let _ = unitary_a;
        for (m, out) in outs.iter().enumerate() {
            let direct = out.state.marginal(&measured);
            // Rebuild the container marginal from the member state by
            // round-tripping through a 1-batch container.
            let solo = run_batched::<f64>(
                &GpuDevice::a100_40gb(),
                &[[&a, &b][m]],
                &RunOptions::default(),
            )
            .unwrap();
            let solo_marginal = solo[0].state.marginal(&measured);
            for (x, y) in direct.iter().zip(&solo_marginal) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn incongruent_members_are_rejected_not_mangled() {
        // Width mismatch.
        let a = ansatz(3, &[0.1]);
        let b = ansatz(4, &[0.1]);
        let err =
            run_batched::<f64>(&GpuDevice::a100_40gb(), &[&a, &b], &RunOptions::default());
        assert!(matches!(err, Err(BatchError::Incongruent(_))), "{err:?}");
        // ry(0) fuses diagonal where ry(0.3) does not: classification may
        // drift. Whatever the verdict, it must be a clean congruence
        // answer — and congruent batches must still be bit-identical.
        let flat = ansatz(3, &[0.0, 0.0]);
        let steep = ansatz(3, &[0.3, 1.2]);
        match run_batched::<f64>(&GpuDevice::a100_40gb(), &[&flat, &steep], &RunOptions::default())
        {
            Ok(outs) => {
                let opts = RunOptions::default();
                assert_bits_equal(outs[0].state.amplitudes(), &solo_state(&flat, &opts), "flat");
                assert_bits_equal(outs[1].state.amplitudes(), &solo_state(&steep, &opts), "steep");
            }
            Err(BatchError::Incongruent(_)) => {}
            Err(other) => panic!("unexpected batch error: {other}"),
        }
    }

    #[test]
    fn planner_strategy_and_oom_are_refused() {
        let a = ansatz(3, &[0.5]);
        let planned = RunOptions::planned();
        assert!(matches!(
            run_batched::<f64>(&GpuDevice::a100_40gb(), &[&a], &planned),
            Err(BatchError::Unsupported(_))
        ));
        let tight = RunOptions { memory_limit: Some(64), ..Default::default() };
        assert!(matches!(
            run_batched::<f64>(&GpuDevice::a100_40gb(), &[&a, &a], &tight),
            Err(BatchError::Sim(SimError::OutOfMemory { .. }))
        ));
    }
}
