//! State-vector simulation engines.
//!
//! Two engines implement the Appendix A semantics with very different
//! execution models, mirroring the paper's CPU-vs-GPU comparison:
//!
//! * [`AerCpuBackend`] — the *baseline*: sequential, per-gate dense
//!   application with no fusion, like Qiskit Aer's CPU state-vector method.
//! * [`GpuDevice`] — the *simulated GPU*: circuits are first fused into
//!   dense kernels (`qgear-ir::fusion`, the §2.2 "kernel transformation"),
//!   then each kernel sweeps the state vector data-parallel over rayon
//!   worker threads standing in for CUDA thread blocks. Execution
//!   statistics (kernel launches, bytes touched) feed the calibrated
//!   performance model in `qgear-perfmodel`.
//!
//! Shared infrastructure: [`StateVector`] storage generic over `f32`/`f64`
//! ([`qgear_num::Scalar`]), Born-rule [`sampling`] with multinomial shot
//! draws, and the [`Simulator`] trait the `qgear` core crate dispatches on.

pub mod aer;
pub mod backend;
pub mod gpu;
pub mod sampling;
pub mod state;

pub use aer::AerCpuBackend;
pub use backend::{Counts, ExecStats, RunOptions, RunOutput, SimError, Simulator};
pub use gpu::GpuDevice;
pub use state::StateVector;
