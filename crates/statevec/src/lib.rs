//! State-vector simulation engines.
//!
//! Two engines implement the Appendix A semantics with very different
//! execution models, mirroring the paper's CPU-vs-GPU comparison:
//!
//! * [`AerCpuBackend`] — the *baseline*: sequential, per-gate dense
//!   application with no fusion, like Qiskit Aer's CPU state-vector method.
//! * [`GpuDevice`] — the *simulated GPU*: circuits are first fused into
//!   dense kernels (`qgear-ir::fusion`, the §2.2 "kernel transformation"),
//!   then each kernel sweeps the state vector data-parallel over rayon
//!   worker threads standing in for CUDA thread blocks. Execution
//!   statistics (kernel launches, bytes touched) feed the calibrated
//!   performance model in `qgear-perfmodel`.
//!
//! Neither fixed execution mode wins everywhere — the hot-path bench
//! records dense fusion running 3–6× *slower* than the per-gate baseline
//! on unstructured workloads. The [`planner`] module resolves this: under
//! [`RunOptions::planned`] the simulated-GPU engine prices unfused, fused
//! (structure-dispatched) and sweep execution per scheduled segment
//! against a calibrated cost model and runs each segment in its cheapest
//! mode. See `docs/PLANNER.md` for the model and decision procedure.
//!
//! Shared infrastructure: [`StateVector`] storage generic over `f32`/`f64`
//! ([`qgear_num::Scalar`]), Born-rule [`sampling`] with multinomial shot
//! draws, and the [`Simulator`] trait the `qgear` core crate dispatches on.
//!
//! Both engines open `simulate`/`sample` spans and update the canonical
//! counters from `qgear-telemetry` while recording is enabled; with
//! telemetry off (the default) the hooks cost one relaxed atomic load.
//!
//! ```
//! use qgear_ir::Circuit;
//! use qgear_statevec::{AerCpuBackend, GpuDevice, RunOptions, RunOutput, Simulator};
//!
//! // A GHZ circuit run on both engines gives identical physics: the
//! // fused simulated-GPU engine just gets there in fewer sweeps.
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2);
//! let opts = RunOptions::default();
//! let aer: RunOutput<f64> = AerCpuBackend.run(&c, &opts).unwrap();
//! let gpu: RunOutput<f64> = GpuDevice::a100_40gb().run(&c, &opts).unwrap();
//! let (a, g) = (aer.state.unwrap(), gpu.state.unwrap());
//! assert!(a.fidelity(&g) > 1.0 - 1e-12);
//! assert!(gpu.stats.kernels_launched < aer.stats.kernels_launched);
//!
//! // The adaptive planner picks the cheapest mode per segment instead
//! // of one global mode — same physics, never the worst-case path.
//! let planned: RunOutput<f64> = GpuDevice::a100_40gb().run(&c, &RunOptions::planned()).unwrap();
//! assert!(planned.state.unwrap().fidelity(&g) > 1.0 - 1e-12);
//! ```

pub mod aer;
pub mod arena;
pub mod backend;
pub mod batch;
pub mod checkpoint;
pub mod gpu;
pub mod noise;
pub mod planner;
pub mod sampling;
pub mod segment;
pub mod simd;
pub mod state;

pub use aer::AerCpuBackend;
pub use backend::{
    marginal_probs, sample_from_probs, Counts, ExecStats, RunOptions, RunOutput, ShotBatchOutput,
    SimError, Simulator,
};
pub use batch::{run_batched, BatchError, BatchMemberOutput, BatchStateVector};
pub use checkpoint::{
    decode as decode_checkpoint, encode as encode_checkpoint, plan_fingerprint,
    CheckpointCounters, CheckpointError, CheckpointScalar, StateCheckpoint,
};
pub use gpu::GpuDevice;
pub use noise::{NoiseChannel, NoiseModel, TrajectoryBackend};
pub use planner::{plan, ExecStrategy, ExecutionPlan, PlannerCosts, SegmentMode};
pub use sampling::SamplingConfig;
pub use segment::SegmentedRun;
pub use simd::{set_simd_enabled, simd_enabled};
pub use state::StateVector;
