//! Reusable aligned scratch arena for the sweep executors.
//!
//! The sweep hot path needs a tile-sized scratch buffer per worker to
//! gather/apply/scatter amplitude tiles. Allocating one per sweep (the old
//! `for_each_init(|| vec![...])` pattern) churns the allocator on every
//! pass and every batch member. The arena keeps returned buffers in a
//! thread-local pool keyed by element type and length, so a segment, the
//! next segment, and every member of a batched run all reuse the same
//! cache-line-aligned allocation.
//!
//! Buffers are zero-initialized on first allocation only; callers must
//! write every slot they read (both sweep executors gather the full tile
//! before applying kernels, so this holds by construction). Pool hits and
//! misses are observable as the `scratch.reuse` / `scratch.alloc`
//! telemetry counters.
//!
//! The pool never hands out a buffer that is already checked out on the
//! same thread (it is *popped* from the pool for the duration of the
//! closure), and pooled buffers are separate heap allocations — they can
//! never alias live amplitude storage. `tests/differential.rs` pins both
//! properties down.

use qgear_num::{AlignedVec, Complex, Scalar};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Stack of idle buffers per (element type, length) shape.
type ShapePools = HashMap<(TypeId, usize), Vec<Box<dyn Any>>>;

thread_local! {
    /// Per-thread pool: (element type, length) → stack of idle buffers.
    static POOL: RefCell<ShapePools> = RefCell::new(HashMap::new());
}

/// Run `f` with a cache-line-aligned scratch buffer of `len` complex
/// values, reusing a pooled buffer when one is available.
///
/// The buffer's contents are whatever the previous user left there (zeros
/// on first allocation) — callers must fully overwrite before reading.
/// Nested calls are fine: each request pops its own buffer, so no two
/// live borrows ever share storage.
pub fn with_scratch<T: Scalar, R>(len: usize, f: impl FnOnce(&mut [Complex<T>]) -> R) -> R {
    let key = (TypeId::of::<Complex<T>>(), len);
    let pooled = POOL.with(|pool| pool.borrow_mut().get_mut(&key).and_then(Vec::pop));
    let mut buf: Box<AlignedVec<Complex<T>>> = match pooled {
        Some(any) => {
            qgear_telemetry::counter_inc(qgear_telemetry::names::SCRATCH_REUSE);
            any.downcast().expect("pool entries are keyed by TypeId")
        }
        None => {
            qgear_telemetry::counter_inc(qgear_telemetry::names::SCRATCH_ALLOC);
            Box::new(AlignedVec::from_elem(Complex::ZERO, len))
        }
    };
    let out = f(buf.as_mut_slice());
    POOL.with(|pool| pool.borrow_mut().entry(key).or_default().push(buf));
    out
}

/// Drop every pooled buffer on the calling thread (test hook; the pool is
/// otherwise bounded by the distinct tile sizes a thread touches).
pub fn clear_thread_pool() {
    POOL.with(|pool| pool.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_num::{C64, CACHE_LINE_BYTES};

    #[test]
    fn scratch_is_aligned_and_reused() {
        clear_thread_pool();
        let first = with_scratch::<f64, _>(256, |s| {
            assert_eq!(s.len(), 256);
            assert_eq!(s.as_ptr() as usize % CACHE_LINE_BYTES, 0);
            s[0] = C64::ONE;
            s.as_ptr() as usize
        });
        // Same size class on the same thread: the exact buffer comes back,
        // contents intact (callers overwrite before reading).
        let second = with_scratch::<f64, _>(256, |s| {
            assert_eq!(s[0], C64::ONE);
            s.as_ptr() as usize
        });
        assert_eq!(first, second);
    }

    #[test]
    fn nested_requests_never_alias() {
        clear_thread_pool();
        with_scratch::<f64, _>(64, |outer| {
            let outer_range = outer.as_ptr() as usize..outer.as_ptr() as usize + 64 * 16;
            with_scratch::<f64, _>(64, |inner| {
                assert!(!outer_range.contains(&(inner.as_ptr() as usize)));
            });
        });
    }

    #[test]
    fn distinct_precisions_get_distinct_buffers() {
        clear_thread_pool();
        let p64 = with_scratch::<f64, _>(32, |s| s.as_ptr() as usize);
        let p32 = with_scratch::<f32, _>(32, |s| s.as_ptr() as usize);
        assert_ne!(p64, p32);
    }
}
