//! The simulated-GPU engine.
//!
//! Plays the role of CUDA-Q's `nvidia` target on one A100: the circuit is
//! fused into dense kernels (§2.2 "kernel transformation"; Appendix D.2
//! `gate fusion = 5`) and each kernel sweeps the state vector
//! **data-parallel** — rayon worker tasks stand in for CUDA thread blocks,
//! with each task owning a disjoint set of amplitude groups exactly as a
//! thread block owns a tile of the state.
//!
//! Execution is bit-identical to sequential application of the same fused
//! kernels (each amplitude group is computed independently), so the
//! oracle tests compare against `qgear-ir`'s reference simulator directly.
//! The inner loops additionally run in explicit SIMD lane form
//! (`f64x4`/`f32x8`, see [`crate::simd`]) whenever a kernel's group
//! layout allows it; the lane kernels replicate the scalar complex
//! arithmetic operation-for-operation, so this too preserves bit
//! identity — `tests/differential.rs` pins it down by diffing whole runs
//! with SIMD forced off.
//!
//! The device also models the *structure* of a GPU — SM count, warp size,
//! per-kernel launch accounting — because the performance model in
//! `qgear-perfmodel` converts those counters into projected A100 timings.

use crate::arena;
use crate::backend::{check_capacity, sample_measured, ExecStats, RunOptions, RunOutput, SimError, Simulator};
use crate::planner::{self, ExecStrategy};
use crate::simd::{self, DiagTable};
use crate::state::StateVector;
use qgear_ir::fusion::{self, FusedBlock, KernelStructure};
use qgear_ir::schedule::{self, Sweep};
use qgear_ir::Circuit;
use qgear_num::{Complex, Scalar};
use rayon::prelude::*;
use std::time::Instant;

/// Simulated GPU device description. Defaults model one NVIDIA A100
/// (Ampere: 108 SMs, 32-thread warps, 40 GB HBM2e as on Perlmutter's
/// original GPU partition).
#[derive(Debug, Clone)]
pub struct GpuDevice {
    /// Marketing name, for reports.
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Device memory in bytes (enforced when `RunOptions::memory_limit`
    /// is `None`).
    pub memory_bytes: u128,
}

impl Default for GpuDevice {
    fn default() -> Self {
        GpuDevice::a100_40gb()
    }
}

impl GpuDevice {
    /// Perlmutter's A100 with 40 GB HBM2e — the Fig. 4a single-GPU device.
    pub fn a100_40gb() -> Self {
        GpuDevice {
            name: "NVIDIA A100 40GB (simulated)".to_owned(),
            sm_count: 108,
            warp_size: 32,
            memory_bytes: 40_000_000_000,
        }
    }

    /// The 80 GB HBM2e variant (`-C "gpu&hbm80g"`, Appendix E.3).
    pub fn a100_80gb() -> Self {
        GpuDevice {
            name: "NVIDIA A100 80GB (simulated)".to_owned(),
            sm_count: 108,
            warp_size: 32,
            memory_bytes: 80_000_000_000,
        }
    }

    /// Maximum register width this device can hold at `amp_bytes` per
    /// amplitude (8 for fp32, 16 for fp64).
    pub fn max_qubits(&self, amp_bytes: u128) -> u32 {
        let mut n = 0u32;
        while (1u128 << (n + 1)) * amp_bytes <= self.memory_bytes {
            n += 1;
        }
        n
    }

    /// Execute one fused block over the state, data-parallel.
    ///
    /// Splits the `2^(n-k)` independent amplitude groups across rayon
    /// workers; each group gathers its `2^k` amplitudes, multiplies by the
    /// dense kernel, and scatters back. Groups are disjoint by
    /// construction, which is the safety argument for the shared-pointer
    /// write access below.
    pub fn apply_block<T: Scalar>(state: &mut [Complex<T>], block: &FusedBlock) {
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::APPLY_BLOCK);
        // Each kernel reads and writes every amplitude once.
        qgear_telemetry::counter_add(
            qgear_telemetry::names::AMPLITUDES_TOUCHED,
            2 * state.len() as u128,
        );
        let k = block.qubits.len();
        let dim = 1usize << k;
        debug_assert!(dim <= 64);
        // Diagonal fast path: fused phase ladders (QFT's cr1 chains, rz
        // runs) need no gather/scatter — one element-wise sweep, exactly
        // like a cuQuantum diagonal kernel. The precomputed DiagTable
        // replaces the per-amplitude mask-test loop with a table lookup
        // and multiplies `T::LANES` amplitudes per step.
        if let Some(diag) = block.unitary.diagonal(1e-15) {
            let d: Vec<Complex<T>> = diag.iter().map(|c| c.cast()).collect();
            let masks: Vec<usize> = block.qubits.iter().map(|&q| 1usize << q).collect();
            let table = DiagTable::build(d, &masks, state.len());
            simd::record_dispatch::<T>(simd::simd_enabled() && table.chunk() >= T::LANES);
            let chunk = table.chunk();
            state
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, cs)| table.apply(cs, ci * chunk));
            return;
        }
        // Kernel matrix in execution precision.
        let m: Vec<Complex<T>> = block.unitary.elements().iter().map(|c| c.cast()).collect();
        // Sorted bit positions for group-index expansion.
        let mut sorted = block.qubits.clone();
        sorted.sort_unstable();
        // Masks in local-bit order (block.qubits[j] ↔ local bit j) and the
        // per-local-index address offsets they induce (hoisted out of the
        // per-group gather loop).
        let masks: Vec<usize> = block.qubits.iter().map(|&q| 1usize << q).collect();
        let offs = simd::local_offsets(&masks);
        let groups = state.len() >> k;
        let sorted_bits: Vec<usize> = sorted.iter().map(|&q| q as usize).collect();
        let vector = simd::simd_enabled() && simd::lanes_ok::<T>(&sorted_bits, groups);
        simd::record_dispatch::<T>(vector);

        let shared = SharedState(state.as_mut_ptr());
        let shared = &shared;
        let offs = &offs;
        let sorted = &sorted;
        if vector {
            // Lane path: with every block qubit at or above the lane
            // width, `T::LANES` consecutive groups sit at consecutive
            // addresses — one lane vector per matrix column, same
            // accumulation order as the scalar loop, bitwise identical.
            let msplat = simd::splat_all::<T>(&m);
            let msplat = &msplat;
            (0..groups / T::LANES).into_par_iter().for_each(move |gb| {
                let mut base = gb * T::LANES;
                for &q in sorted {
                    let low = base & ((1usize << q) - 1);
                    base = ((base >> q) << (q + 1)) | low;
                }
                // SAFETY: distinct groups expand to disjoint index sets
                // (zero bits reinserted at every block qubit position), so
                // lane blocks never alias each other.
                unsafe { simd::dense_block_lanes::<T>(shared.0, base, msplat, dim, offs) };
            });
            return;
        }
        (0..groups).into_par_iter().for_each(move |g| {
            // Expand the group index around the block's qubit bits.
            let mut base = g;
            for &q in sorted {
                let low = base & ((1usize << q) - 1);
                base = ((base >> q) << (q + 1)) | low;
            }
            // Gather.
            let mut scratch = [Complex::<T>::ZERO; 64];
            for local in 0..dim {
                // SAFETY: every index derived from a distinct group `g` is
                // distinct: `base` reinserts zero bits at the block qubit
                // positions, so two groups never share any gathered index.
                scratch[local] = unsafe { shared.read(base | offs[local]) };
            }
            // Multiply + scatter.
            for (local, row) in m.chunks_exact(dim).enumerate() {
                let mut acc = Complex::<T>::ZERO;
                for c in 0..dim {
                    acc = row[c].mul_add(scratch[c], acc);
                }
                // SAFETY: same disjointness argument as the gather.
                unsafe { shared.write(base | offs[local], acc) };
            }
        });
    }

    /// Execute one fused block through the kernel matching its structure
    /// class — the planner's "fused stops meaning dense `2^k` apply"
    /// dispatch (see [`KernelStructure`] and `crate::planner`).
    ///
    /// `Diagonal` and `Dense` fall through to [`GpuDevice::apply_block`]
    /// (which already has the element-wise diagonal fast path);
    /// `Permutation` runs a gather/permute/scatter pass with one complex
    /// multiply per amplitude; `Controlled` runs the block-diagonal
    /// factorization over the full state, cutting per-amplitude cost from
    /// `2^k` to `2^μ` mul-adds. All four dispatch targets apply the same
    /// unitary: results agree with the dense kernel to the structure
    /// classifier's tolerance (1e-15, far below engine agreement bounds).
    pub fn apply_block_structured<T: Scalar>(
        state: &mut [Complex<T>],
        block: &FusedBlock,
        structure: &KernelStructure,
    ) {
        match structure {
            KernelStructure::Diagonal | KernelStructure::Dense => {
                GpuDevice::apply_block(state, block);
            }
            KernelStructure::Permutation(perm) => {
                GpuDevice::apply_block_permutation(state, block, perm);
            }
            KernelStructure::Controlled { mixing } => {
                GpuDevice::apply_block_controlled(state, block, mixing);
            }
        }
    }

    /// Permutation kernel: the fused block's matrix has exactly one
    /// nonzero per column (X/CX/SWAP ladders, optionally with phases).
    /// Where the structure dispatch sends `Dense` blocks through the
    /// `2^k`-wide mul-add accumulation (scalar or SIMD-lane form, see
    /// [`crate::simd`]), a permutation block reduces to an index shuffle
    /// plus one complex multiply per amplitude; the lane path performs
    /// that shuffle on `T::LANES` amplitude groups per step when every
    /// block qubit clears the lane width, and falls back to the scalar
    /// shuffle otherwise.
    fn apply_block_permutation<T: Scalar>(
        state: &mut [Complex<T>],
        block: &FusedBlock,
        perm: &[(usize, qgear_num::C64)],
    ) {
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::APPLY_BLOCK);
        qgear_telemetry::counter_add(
            qgear_telemetry::names::AMPLITUDES_TOUCHED,
            2 * state.len() as u128,
        );
        let k = block.qubits.len();
        let dim = 1usize << k;
        debug_assert!(dim <= 64);
        // Column `c` maps to row `rows[c]` with weight `phases[c]`.
        let rows: Vec<usize> = perm.iter().map(|&(r, _)| r).collect();
        let phases: Vec<Complex<T>> = perm.iter().map(|&(_, p)| p.cast()).collect();
        let mut sorted = block.qubits.clone();
        sorted.sort_unstable();
        let masks: Vec<usize> = block.qubits.iter().map(|&q| 1usize << q).collect();
        let offs = simd::local_offsets(&masks);
        let groups = state.len() >> k;
        let sorted_bits: Vec<usize> = sorted.iter().map(|&q| q as usize).collect();
        let vector = simd::simd_enabled() && simd::lanes_ok::<T>(&sorted_bits, groups);
        simd::record_dispatch::<T>(vector);

        let shared = SharedState(state.as_mut_ptr());
        let shared = &shared;
        let rows = &rows;
        let offs = &offs;
        let sorted = &sorted;
        if vector {
            let phase_splat = simd::splat_all::<T>(&phases);
            let phase_splat = &phase_splat;
            (0..groups / T::LANES).into_par_iter().for_each(move |gb| {
                let mut base = gb * T::LANES;
                for &q in sorted {
                    let low = base & ((1usize << q) - 1);
                    base = ((base >> q) << (q + 1)) | low;
                }
                // SAFETY: group-disjoint lane blocks, as in `apply_block`.
                unsafe {
                    simd::perm_block_lanes::<T>(shared.0, base, phase_splat, rows, dim, offs)
                };
            });
            return;
        }
        let phases = &phases;
        (0..groups).into_par_iter().for_each(move |g| {
            let mut base = g;
            for &q in sorted {
                let low = base & ((1usize << q) - 1);
                base = ((base >> q) << (q + 1)) | low;
            }
            let mut scratch = [Complex::<T>::ZERO; 64];
            for local in 0..dim {
                // SAFETY: group-disjoint indices, as in `apply_block`.
                scratch[local] = unsafe { shared.read(base | offs[local]) };
            }
            for c in 0..dim {
                // SAFETY: same disjointness argument as the gather.
                unsafe { shared.write(base | offs[rows[c]], phases[c] * scratch[c]) };
            }
        });
    }

    /// Controlled-structure kernel: the block mixes only `μ < k` of its
    /// qubits ([`FusedBlock::mixing_mask`]), so it factors into `2^(k-μ)`
    /// independent `2^μ × 2^μ` sub-unitaries indexed by the unmixed
    /// (control/phase) bits — the full-state analogue of the sweep path's
    /// `KernelPlan::Factored`, built by the same factorization.
    fn apply_block_controlled<T: Scalar>(
        state: &mut [Complex<T>],
        block: &FusedBlock,
        mixing: &[bool],
    ) {
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::APPLY_BLOCK);
        qgear_telemetry::counter_add(
            qgear_telemetry::names::AMPLITUDES_TOUCHED,
            2 * state.len() as u128,
        );
        // Global bit masks (the factorization is mask-space agnostic: it
        // works identically on tile slots and global indices).
        let masks: Vec<usize> = block.qubits.iter().map(|&q| 1usize << q).collect();
        let KernelPlan::Factored { subs, subs_splat, offs, sorted_mixed, diag_extract, min_extract_bit, mdim } =
            KernelPlan::<T>::factored(block, mixing, &masks)
        else {
            unreachable!("factored() always builds KernelPlan::Factored")
        };
        let mu = sorted_mixed.len();
        debug_assert!(mdim <= 64);
        let groups = state.len() >> mu;
        // Lane path needs both the mixed bits (address contiguity of
        // consecutive groups) and the extract bits (a lane-uniform
        // sub-unitary index) to clear the lane width.
        let vector = simd::simd_enabled()
            && simd::lanes_ok::<T>(&sorted_mixed, groups)
            && min_extract_bit >= simd::lane_log2::<T>();
        simd::record_dispatch::<T>(vector);

        let shared = SharedState(state.as_mut_ptr());
        let shared = &shared;
        let subs = &subs;
        let subs_splat = &subs_splat;
        let offs = &offs;
        let sorted_mixed = &sorted_mixed;
        let diag_extract = &diag_extract;
        if vector {
            (0..groups / T::LANES).into_par_iter().for_each(move |gb| {
                let mut base = gb * T::LANES;
                for &p in sorted_mixed {
                    let low = base & ((1usize << p) - 1);
                    base = ((base >> p) << (p + 1)) | low;
                }
                // Every extract bit clears the lane width, so the whole
                // lane block shares one sub-unitary.
                let mut d = 0usize;
                for &(mask, weight) in diag_extract {
                    if base & mask != 0 {
                        d |= weight;
                    }
                }
                // SAFETY: group-disjoint lane blocks — zero bits are
                // reinserted at every mixed position, as in `apply_block`.
                unsafe {
                    simd::dense_block_lanes::<T>(shared.0, base, &subs_splat[d], mdim, offs)
                };
            });
            return;
        }
        (0..groups).into_par_iter().for_each(move |g| {
            // Expand the group index around the mixed bits; the base then
            // carries every assignment of the unmixed bits.
            let mut base = g;
            for &p in sorted_mixed {
                let low = base & ((1usize << p) - 1);
                base = ((base >> p) << (p + 1)) | low;
            }
            let mut d = 0usize;
            for &(mask, weight) in diag_extract {
                if base & mask != 0 {
                    d |= weight;
                }
            }
            let sub = &subs[d];
            let mut scratch = [Complex::<T>::ZERO; 64];
            for a in 0..mdim {
                // SAFETY: groups expand to disjoint index sets (zero bits
                // reinserted at every mixed position), so tasks never
                // alias — same argument as `apply_block`.
                scratch[a] = unsafe { shared.read(base | offs[a]) };
            }
            for (r, row) in sub.chunks_exact(mdim).enumerate() {
                let mut acc = Complex::<T>::ZERO;
                for c in 0..mdim {
                    acc = row[c].mul_add(scratch[c], acc);
                }
                // SAFETY: same disjointness argument as the gather.
                unsafe { shared.write(base | offs[r], acc) };
            }
        });
    }

    /// Execute one scheduled sweep — several mutually-reorderable fused
    /// kernels — in a single cache-blocked pass over the state.
    ///
    /// This is the sweep-fusion analogue of CUDA shared-memory tiling:
    /// each rayon task gathers one `2^u`-amplitude tile (`u` = the
    /// sweep's union support) into a scratch buffer sized to stay
    /// cache-resident, applies *every* kernel of the sweep to the tile
    /// while it is hot, then scatters once. DRAM-level traffic is one
    /// read + one write of the state per *sweep* instead of per kernel.
    ///
    /// `exact` selects the tile arithmetic. When `true` (order-preserving
    /// schedules), each kernel runs the same `mul_add` accumulation as
    /// [`GpuDevice::apply_block`], so sweep execution is **bit-identical**
    /// to applying the sweep's kernels sequentially over the full state in
    /// the same order. When `false` (the default reordering schedules,
    /// which already only agree up to round-off), each kernel is instead
    /// applied through its block-diagonal factorization: a kernel of width
    /// `k` that mixes only `μ` of its qubits ([`FusedBlock::mixing_mask`])
    /// splits into `2^(k-μ)` independent `2^μ × 2^μ` sub-unitaries indexed
    /// by the unmixed (control/phase) bits, cutting the per-amplitude cost
    /// from `2^k` to `2^μ` mul-adds — 16× for QFT kernels, which mix only
    /// the single `h` qubit of each block.
    pub fn apply_sweep<T: Scalar>(
        state: &mut [Complex<T>],
        blocks: &[FusedBlock],
        sweep: &Sweep,
        exact: bool,
    ) {
        if let [only] = sweep.kernels.as_slice() {
            GpuDevice::apply_block(state, &blocks[*only]);
            return;
        }
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::APPLY_SWEEP);
        // One pass: the whole state is read and written once.
        qgear_telemetry::counter_add(
            qgear_telemetry::names::AMPLITUDES_TOUCHED,
            2 * state.len() as u128,
        );
        // All-diagonal sweeps need no gather/scatter at any width: one
        // element-wise pass applies every phase pattern in order. Each
        // kernel gets its own DiagTable; applying the tables kernel-major
        // per chunk keeps every amplitude's multiplies in sweep order, so
        // the pass stays bit-identical to sequential application.
        if sweep.diagonal {
            let tables: Vec<DiagTable<T>> = sweep
                .kernels
                .iter()
                .map(|&ki| {
                    let b = &blocks[ki];
                    let diag = b.unitary.diagonal(1e-15).expect("diagonal sweep member");
                    let masks: Vec<usize> = b.qubits.iter().map(|&q| 1usize << q).collect();
                    DiagTable::build(diag.iter().map(|c| c.cast()).collect(), &masks, state.len())
                })
                .collect();
            let chunk = tables.first().map_or(state.len(), |t| t.chunk());
            for t in &tables {
                simd::record_dispatch::<T>(simd::simd_enabled() && t.chunk() >= T::LANES);
            }
            state.par_chunks_mut(chunk).enumerate().for_each(|(ci, cs)| {
                for t in &tables {
                    t.apply(cs, ci * chunk);
                }
            });
            return;
        }

        let u = sweep.qubits.len();
        let tile = 1usize << u;
        debug_assert!(tile <= state.len());
        // Scratch-slot position of a sweep qubit (sweep.qubits is sorted).
        let pos = |q: u32| sweep.qubits.iter().position(|&x| x == q).expect("kernel qubit in sweep");
        let plans: Vec<KernelPlan<T>> = sweep
            .kernels
            .iter()
            .map(|&ki| {
                let b = &blocks[ki];
                let masks: Vec<usize> = b.qubits.iter().map(|&q| 1usize << pos(q)).collect();
                if let Some(diag) = b.unitary.diagonal(1e-15) {
                    return KernelPlan::diag(diag.iter().map(|c| c.cast()).collect(), &masks, tile);
                }
                let k = b.qubits.len();
                let mixing = b.mixing_mask();
                let mu = mixing.iter().filter(|&&m| m).count();
                if !exact && mu < k {
                    return KernelPlan::factored(b, &mixing, &masks);
                }
                KernelPlan::dense(b.unitary.elements().iter().map(|c| c.cast()).collect(), &masks)
            })
            .collect();
        for plan in &plans {
            simd::record_dispatch::<T>(plan.lane_eligible(tile));
        }
        let groups = state.len() >> u;

        // Zero-copy fast path: when the sweep's union support is exactly
        // the low `u` qubits, slot `j` of tile `g` *is* amplitude
        // `g·2^u + j` — the tile is a contiguous slice of the state, so
        // the kernels run in place and the gather/scatter round-trip
        // through scratch disappears.
        if sweep.qubits.iter().enumerate().all(|(j, &q)| q as usize == j) {
            qgear_telemetry::counter_add(
                qgear_telemetry::names::SWEEP_ZERO_COPY_TILES,
                groups as u128,
            );
            let plans = &plans;
            state.par_chunks_mut(tile).for_each(|tile_slice| {
                for plan in plans {
                    plan.apply(tile_slice, tile);
                }
            });
            return;
        }

        // Tile-slot → global-offset table: slot bit `j` lives at global
        // bit `sweep.qubits[j]`. Built once per sweep, shared read-only.
        let mut offs = vec![0usize; tile];
        for (j, &q) in sweep.qubits.iter().enumerate() {
            let bit = 1usize << q;
            for i in 0..(1usize << j) {
                offs[(1usize << j) | i] = offs[i] | bit;
            }
        }

        let shared = SharedState(state.as_mut_ptr());
        let shared = &shared;
        let plans = &plans;
        let offs = &offs;
        let union_qubits = &sweep.qubits;
        (0..groups).into_par_iter().for_each(move |g| {
            // Tile scratch comes from the per-thread arena: one aligned
            // buffer per worker is reused across every tile, sweep,
            // segment, and batch member of this size (scratch.reuse).
            arena::with_scratch::<T, _>(tile, |scratch| {
                // Expand the tile index around the union's qubit bits.
                let mut base = g;
                for &q in union_qubits {
                    let low = base & ((1usize << q) - 1);
                    base = ((base >> q) << (q + 1)) | low;
                }
                // Gather the tile. SAFETY: distinct `g` values produce
                // disjoint index sets (zero bits are reinserted at every
                // union qubit position), so tasks never alias.
                for (slot, &off) in offs.iter().enumerate() {
                    scratch[slot] = unsafe { shared.read(base | off) };
                }
                // Apply every kernel while the tile is hot.
                for plan in plans {
                    plan.apply(scratch, tile);
                }
                // Scatter once. SAFETY: same disjointness argument.
                for (slot, &off) in offs.iter().enumerate() {
                    unsafe { shared.write(base | off, scratch[slot]) };
                }
            });
        });
    }
}

/// One kernel's precomputed application plan inside a sweep tile: the
/// matrix (or diagonal) in execution precision plus its qubit positions
/// remapped into tile-slot space. Everything derivable once per kernel —
/// local-index address offsets, lane-splatted matrix entries, diagonal
/// lookup tables — is computed at build time and shared read-only across
/// every tile, worker, and batch member.
pub(crate) enum KernelPlan<T: Scalar> {
    /// Pure phase pattern: element-wise multiply, no data movement.
    Diag {
        /// Precomputed chunked lookup table (see [`DiagTable`]).
        table: DiagTable<T>,
    },
    /// Dense kernel: gather/apply/scatter over tile sub-groups.
    Dense {
        /// Row-major kernel matrix in execution precision (scalar path).
        m: Vec<Complex<T>>,
        /// The same matrix with every entry pre-broadcast to a lane
        /// vector (lane path).
        msplat: Vec<<T as Scalar>::Lanes>,
        /// Address offset of each kernel-local index inside a tile.
        offs: Vec<usize>,
        /// Tile-slot positions of the kernel's qubits, ascending (for
        /// sub-group index expansion).
        sorted_local: Vec<usize>,
        /// Kernel dimension `2^k`.
        dim: usize,
    },
    /// Block-diagonal kernel factored over its unmixed (control/phase)
    /// bits: one `2^μ × 2^μ` sub-unitary per assignment of the unmixed
    /// bits, applied to the `μ` mixed bits only. Per-amplitude cost is
    /// `2^μ` mul-adds instead of the dense `2^k`.
    Factored {
        /// Sub-unitaries, row-major `2^μ × 2^μ`, indexed by the unmixed
        /// bits packed in kernel-local order.
        subs: Vec<Vec<Complex<T>>>,
        /// Lane-splatted sub-unitaries (lane path).
        subs_splat: Vec<Vec<<T as Scalar>::Lanes>>,
        /// Address offset of each mixed-bit local index.
        offs: Vec<usize>,
        /// Tile-slot positions of the mixed bits, ascending (sub-group
        /// index expansion).
        sorted_mixed: Vec<usize>,
        /// `(tile-slot mask, packed weight)` pairs extracting the
        /// sub-unitary index from a sub-group base slot.
        diag_extract: Vec<(usize, usize)>,
        /// Lowest bit position among the extract masks (`usize::MAX` when
        /// there are none): the lane path needs it to clear the lane
        /// width so one sub-unitary serves the whole lane block.
        min_extract_bit: usize,
        /// Sub-unitary dimension `2^μ`.
        mdim: usize,
    },
}

impl<T: Scalar> KernelPlan<T> {
    /// Diagonal kernel plan over spans of `span` amplitudes/slots.
    pub(crate) fn diag(d: Vec<Complex<T>>, masks: &[usize], span: usize) -> Self {
        KernelPlan::Diag { table: DiagTable::build(d, masks, span) }
    }

    /// Dense kernel plan. `masks[j]` is the tile-slot mask of
    /// kernel-local bit `j`; the matrix is row-major `2^k × 2^k`.
    pub(crate) fn dense(m: Vec<Complex<T>>, masks: &[usize]) -> Self {
        let mut sorted_local: Vec<usize> =
            masks.iter().map(|&mask| mask.trailing_zeros() as usize).collect();
        sorted_local.sort_unstable();
        KernelPlan::Dense {
            msplat: simd::splat_all::<T>(&m),
            offs: simd::local_offsets(masks),
            dim: 1usize << masks.len(),
            m,
            sorted_local,
        }
    }

    /// Build the block-diagonal factorization of a kernel that mixes only
    /// some of its qubits. `mixing` is the kernel-local mixing mask and
    /// `masks[j]` the tile-slot mask of kernel-local bit `j`. The dropped
    /// cross-block matrix entries are below the `mixing_mask` tolerance
    /// (1e-12), so the factored product matches the dense one to well
    /// under the engines' agreement tolerance.
    pub(crate) fn factored(b: &FusedBlock, mixing: &[bool], masks: &[usize]) -> Self {
        let k = b.qubits.len();
        let dim = 1usize << k;
        let mixed_bits: Vec<usize> = (0..k).filter(|&j| mixing[j]).collect();
        let diag_bits: Vec<usize> = (0..k).filter(|&j| !mixing[j]).collect();
        let mdim = 1usize << mixed_bits.len();
        // Kernel-local index with assignment `d` on the unmixed bits and
        // `a` on the mixed bits.
        let expand = |d: usize, a: usize| -> usize {
            let mut i = 0usize;
            for (t, &j) in diag_bits.iter().enumerate() {
                if d & (1 << t) != 0 {
                    i |= 1 << j;
                }
            }
            for (t, &j) in mixed_bits.iter().enumerate() {
                if a & (1 << t) != 0 {
                    i |= 1 << j;
                }
            }
            i
        };
        let u = b.unitary.elements();
        let subs: Vec<Vec<Complex<T>>> = (0..dim >> mixed_bits.len())
            .map(|d| {
                let mut sub = Vec::with_capacity(mdim * mdim);
                for r in 0..mdim {
                    let row = expand(d, r) * dim;
                    for c in 0..mdim {
                        sub.push(u[row + expand(d, c)].cast());
                    }
                }
                sub
            })
            .collect();
        let mut sorted_mixed: Vec<usize> =
            mixed_bits.iter().map(|&j| masks[j].trailing_zeros() as usize).collect();
        sorted_mixed.sort_unstable();
        let mixed_masks: Vec<usize> = mixed_bits.iter().map(|&j| masks[j]).collect();
        let diag_extract: Vec<(usize, usize)> = diag_bits
            .iter()
            .enumerate()
            .map(|(t, &j)| (masks[j], 1usize << t))
            .collect();
        KernelPlan::Factored {
            subs_splat: subs.iter().map(|sub| simd::splat_all::<T>(sub)).collect(),
            offs: simd::local_offsets(&mixed_masks),
            min_extract_bit: diag_extract
                .iter()
                .map(|&(mask, _)| mask.trailing_zeros() as usize)
                .min()
                .unwrap_or(usize::MAX),
            subs,
            sorted_mixed,
            diag_extract,
            mdim,
        }
    }

    /// True when [`KernelPlan::apply`] over a `tile`-slot span will take
    /// the SIMD lane path under the current toggle state (telemetry
    /// dispatch accounting).
    pub(crate) fn lane_eligible(&self, tile: usize) -> bool {
        if !simd::simd_enabled() {
            return false;
        }
        match self {
            KernelPlan::Diag { table } => table.chunk() >= T::LANES,
            KernelPlan::Dense { sorted_local, .. } => {
                simd::lanes_ok::<T>(sorted_local, tile >> sorted_local.len())
            }
            KernelPlan::Factored { sorted_mixed, min_extract_bit, .. } => {
                simd::lanes_ok::<T>(sorted_mixed, tile >> sorted_mixed.len())
                    && *min_extract_bit >= simd::lane_log2::<T>()
            }
        }
    }

    /// Apply this kernel to a gathered tile, in place. `Diag` and `Dense`
    /// arithmetic is bit-identical to the full-state paths in
    /// `apply_block` (on both the scalar and lane paths, which are
    /// themselves bitwise identical); `Factored` agrees to the
    /// factorization tolerance.
    pub(crate) fn apply(&self, scratch: &mut [Complex<T>], tile: usize) {
        let vector = self.lane_eligible(tile);
        match self {
            KernelPlan::Diag { table } => table.apply(scratch, 0),
            KernelPlan::Dense { m, msplat, offs, sorted_local, dim } => {
                let dim = *dim;
                let sub_groups = tile >> sorted_local.len();
                if vector {
                    let ptr = scratch.as_mut_ptr();
                    for sgb in 0..sub_groups / T::LANES {
                        let mut sbase = sgb * T::LANES;
                        for &p in sorted_local {
                            let low = sbase & ((1usize << p) - 1);
                            sbase = ((sbase >> p) << (p + 1)) | low;
                        }
                        // SAFETY: every touched slot `sbase | offs[c] + l`
                        // lies inside this exclusively borrowed tile, and
                        // sub-groups are disjoint.
                        unsafe { simd::dense_block_lanes::<T>(ptr, sbase, msplat, dim, offs) };
                    }
                    return;
                }
                for sg in 0..sub_groups {
                    let mut sbase = sg;
                    for &p in sorted_local {
                        let low = sbase & ((1usize << p) - 1);
                        sbase = ((sbase >> p) << (p + 1)) | low;
                    }
                    let mut tmp = [Complex::<T>::ZERO; 64];
                    for local in 0..dim {
                        tmp[local] = scratch[sbase | offs[local]];
                    }
                    for (local, row) in m.chunks_exact(dim).enumerate() {
                        let mut acc = Complex::<T>::ZERO;
                        for c in 0..dim {
                            acc = row[c].mul_add(tmp[c], acc);
                        }
                        scratch[sbase | offs[local]] = acc;
                    }
                }
            }
            KernelPlan::Factored {
                subs, subs_splat, offs, sorted_mixed, diag_extract, mdim, ..
            } => {
                let mdim = *mdim;
                let sub_groups = tile >> sorted_mixed.len();
                if vector {
                    let ptr = scratch.as_mut_ptr();
                    for sgb in 0..sub_groups / T::LANES {
                        let mut base = sgb * T::LANES;
                        for &p in sorted_mixed {
                            let low = base & ((1usize << p) - 1);
                            base = ((base >> p) << (p + 1)) | low;
                        }
                        let mut d = 0usize;
                        for &(mask, weight) in diag_extract {
                            if base & mask != 0 {
                                d |= weight;
                            }
                        }
                        // SAFETY: as in the Dense lane arm — in-tile,
                        // disjoint sub-groups, exclusive borrow.
                        unsafe {
                            simd::dense_block_lanes::<T>(ptr, base, &subs_splat[d], mdim, offs)
                        };
                    }
                    return;
                }
                for sg in 0..sub_groups {
                    // Expand the sub-group index around the mixed slots;
                    // the base ranges over every assignment of the other
                    // tile slots, including this kernel's unmixed bits.
                    let mut base = sg;
                    for &p in sorted_mixed {
                        let low = base & ((1usize << p) - 1);
                        base = ((base >> p) << (p + 1)) | low;
                    }
                    // The unmixed-bit assignment picks the sub-unitary.
                    let mut d = 0usize;
                    for &(mask, weight) in diag_extract {
                        if base & mask != 0 {
                            d |= weight;
                        }
                    }
                    let sub = &subs[d];
                    let mut tmp = [Complex::<T>::ZERO; 64];
                    for a in 0..mdim {
                        tmp[a] = scratch[base | offs[a]];
                    }
                    for (r, row) in sub.chunks_exact(mdim).enumerate() {
                        let mut acc = Complex::<T>::ZERO;
                        for c in 0..mdim {
                            acc = row[c].mul_add(tmp[c], acc);
                        }
                        scratch[base | offs[r]] = acc;
                    }
                }
            }
        }
    }
}

/// Raw shared pointer wrapper used to hand disjoint slices of the state to
/// rayon tasks. All writes go to group-disjoint indices (see
/// [`GpuDevice::apply_block`]), so no two tasks alias.
pub(crate) struct SharedState<T>(pub(crate) *mut Complex<T>);
unsafe impl<T> Send for SharedState<T> {}
unsafe impl<T> Sync for SharedState<T> {}

impl<T: Scalar> SharedState<T> {
    /// SAFETY: caller guarantees `i` is in bounds and no concurrent task
    /// writes the same index.
    #[inline(always)]
    pub(crate) unsafe fn read(&self, i: usize) -> Complex<T> {
        *self.0.add(i)
    }

    /// SAFETY: caller guarantees `i` is in bounds and uniquely owned by the
    /// calling task for the duration of the kernel.
    #[inline(always)]
    pub(crate) unsafe fn write(&self, i: usize, v: Complex<T>) {
        *self.0.add(i) = v;
    }
}

impl<T: Scalar> Simulator<T> for GpuDevice {
    fn name(&self) -> &'static str {
        "nvidia"
    }

    fn run(&self, circuit: &Circuit, opts: &RunOptions) -> Result<RunOutput<T>, SimError> {
        // Device memory is the default capacity bound; an explicit option
        // overrides (used by the harnesses to model other devices).
        let effective = RunOptions {
            memory_limit: opts.memory_limit.or(Some(self.memory_bytes)),
            ..opts.clone()
        };
        check_capacity::<T>(circuit.num_qubits(), &effective)?;
        let (unitary, measured) = circuit.split_measurements();
        let mut state: StateVector<T> = StateVector::zero(circuit.num_qubits());
        let amp_bytes = (2 * T::BYTES) as u128;
        let n_amps = state.len() as u128;

        let mut stats = ExecStats::default();
        let start = Instant::now();
        let sim_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SIMULATE);
        if effective.strategy == ExecStrategy::Planned {
            // Adaptive path: the planner walks the sweep schedule and
            // executes every segment in its cost-model-chosen mode.
            let plan = planner::plan(
                &unitary,
                effective.fusion_width,
                effective.sweep_width,
                effective.sweep_reorder,
                &effective.planner_costs,
                2 * T::BYTES,
            )
            .map_err(|e| {
                SimError::UnsupportedGate(format!(
                    "{e} (transpile to the native set before kernel transformation)"
                ))
            })?;
            for idx in 0..plan.len() {
                let seg = planner::execute_segment(state.amplitudes_mut(), &plan, idx);
                stats.kernels_launched += seg.kernels_launched;
                stats.sweeps_executed += seg.sweeps_executed;
                stats.bytes_touched += seg.bytes_touched;
                stats.flops += seg.flops;
            }
            stats.gates_applied = plan.source_gates;
            qgear_telemetry::counter_add(
                qgear_telemetry::names::SWEEPS_EXECUTED,
                stats.sweeps_executed as u128,
            );
            qgear_telemetry::counter_add(qgear_telemetry::names::GATES_APPLIED, stats.gates_applied as u128);
            qgear_telemetry::counter_add(qgear_telemetry::names::KERNELS_LAUNCHED, stats.kernels_launched as u128);
            drop(sim_span);
            stats.elapsed = start.elapsed();

            let sample_start = Instant::now();
            let sample_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SAMPLE);
            let counts = sample_measured(&state, &measured, &effective);
            drop(sample_span);
            stats.sampling_elapsed = sample_start.elapsed();
            return Ok(RunOutput { state: effective.keep_state.then_some(state), counts, stats });
        }
        // Fusion rejects arity-3 gates with a typed error; surface it as
        // an unsupported-gate failure instead of aborting the caller's
        // thread (the serving workers depend on this).
        let program =
            fusion::try_fuse(&unitary, opts.fusion_width.clamp(1, fusion::MAX_FUSION_WIDTH))
                .map_err(|e| {
                    SimError::UnsupportedGate(format!(
                        "{e} (transpile to the native set before kernel transformation)"
                    ))
                })?;
        if effective.sweep_width > 0 && program.blocks.len() > 1 {
            // Sweep-fused path: group commuting/disjoint kernels into
            // cache-blocked passes. DRAM traffic is charged per sweep;
            // arithmetic is still charged per kernel.
            let sched_opts = schedule::SweepOptions {
                max_width: effective.sweep_width,
                reorder: effective.sweep_reorder,
            };
            let plan = schedule::sweeps(&program, &sched_opts);
            for sweep in &plan.sweeps {
                GpuDevice::apply_sweep(
                    state.amplitudes_mut(),
                    &program.blocks,
                    sweep,
                    !effective.sweep_reorder,
                );
                stats.sweeps_executed += 1;
                stats.kernels_launched += sweep.kernels.len() as u64;
                stats.bytes_touched += 2 * n_amps * amp_bytes;
                for &ki in &sweep.kernels {
                    stats.flops += n_amps * (1u128 << program.blocks[ki].qubits.len());
                }
            }
            qgear_telemetry::counter_add(
                qgear_telemetry::names::SWEEPS_EXECUTED,
                stats.sweeps_executed as u128,
            );
        } else {
            for block in &program.blocks {
                GpuDevice::apply_block(state.amplitudes_mut(), block);
                stats.kernels_launched += 1;
                stats.bytes_touched += 2 * n_amps * amp_bytes;
                stats.flops += n_amps * (1u128 << block.qubits.len());
            }
        }
        stats.gates_applied = program.source_gate_count() as u64;
        qgear_telemetry::counter_add(qgear_telemetry::names::GATES_APPLIED, stats.gates_applied as u128);
        qgear_telemetry::counter_add(qgear_telemetry::names::KERNELS_LAUNCHED, stats.kernels_launched as u128);
        drop(sim_span);
        stats.elapsed = start.elapsed();

        let sample_start = Instant::now();
        let sample_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SAMPLE);
        let counts = sample_measured(&state, &measured, &effective);
        drop(sample_span);
        stats.sampling_elapsed = sample_start.elapsed();

        Ok(RunOutput { state: effective.keep_state.then_some(state), counts, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aer::AerCpuBackend;
    use qgear_ir::reference;
    use qgear_num::approx::max_deviation;

    fn rich_circuit(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed | 1;
        let mut rnd = move |m: u64| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % m
        };
        for _ in 0..80 {
            match rnd(5) {
                0 => {
                    c.h(rnd(n as u64) as u32);
                }
                1 => {
                    c.ry(rnd(628) as f64 / 100.0, rnd(n as u64) as u32);
                }
                2 => {
                    c.rz(rnd(628) as f64 / 100.0, rnd(n as u64) as u32);
                }
                _ => {
                    let a = rnd(n as u64) as u32;
                    let b = (a + 1 + rnd(n as u64 - 1) as u32) % n;
                    c.cx(a, b);
                }
            }
        }
        c
    }

    #[test]
    fn gpu_matches_reference_all_fusion_widths() {
        let c = rich_circuit(7, 3);
        let expect = reference::run(&c);
        for width in 1..=5usize {
            // Exercise all three execution modes: plain fused
            // (sweep_width 0), order-preserving sweeps, reordering sweeps.
            for (sweep_width, sweep_reorder) in [(0, false), (6, false), (6, true)] {
                let opts = RunOptions { fusion_width: width, sweep_width, sweep_reorder, ..Default::default() };
                let out: RunOutput<f64> = GpuDevice::a100_40gb().run(&c, &opts).unwrap();
                let got = out.state.unwrap();
                assert!(
                    max_deviation(got.amplitudes(), &expect) < 1e-11,
                    "width {width} sweep {sweep_width}/{sweep_reorder}"
                );
            }
        }
    }

    #[test]
    fn gpu_matches_aer_baseline() {
        for seed in [11u64, 12, 13] {
            let c = rich_circuit(8, seed);
            let aer: RunOutput<f64> = AerCpuBackend.run(&c, &RunOptions::default()).unwrap();
            let gpu: RunOutput<f64> = GpuDevice::default().run(&c, &RunOptions::default()).unwrap();
            let a = aer.state.unwrap();
            let g = gpu.state.unwrap();
            assert!(a.fidelity(&g) > 1.0 - 1e-10, "seed {seed}");
        }
    }

    #[test]
    fn fusion_reduces_kernel_launches() {
        // Plain fused path (sweep_width 0): fusion alone must cut both
        // launches and DRAM traffic — the §2.2 claim.
        let c = rich_circuit(6, 21);
        let narrow: RunOutput<f64> = GpuDevice::default()
            .run(&c, &RunOptions { fusion_width: 1, sweep_width: 0, ..Default::default() })
            .unwrap();
        let wide: RunOutput<f64> = GpuDevice::default()
            .run(&c, &RunOptions { fusion_width: 5, sweep_width: 0, ..Default::default() })
            .unwrap();
        assert!(wide.stats.kernels_launched < narrow.stats.kernels_launched);
        assert_eq!(wide.stats.gates_applied, narrow.stats.gates_applied);
        assert!(wide.stats.bytes_touched < narrow.stats.bytes_touched);
        assert_eq!(wide.stats.sweeps_executed, 0, "sweep_width 0 disables sweeping");
    }

    #[test]
    fn sweeps_reduce_state_passes_below_kernel_count() {
        // A QFT-shaped ladder: diagonal cr1 chains commute past the h
        // kernels, so the scheduler packs many kernels per pass.
        let n = 10u32;
        let mut c = Circuit::new(n);
        for i in (0..n).rev() {
            c.h(i);
            for j in (0..i).rev() {
                c.cr1(std::f64::consts::TAU / f64::powi(2.0, (i - j + 1) as i32), j, i);
            }
        }
        let fused: RunOutput<f64> = GpuDevice::default()
            .run(&c, &RunOptions { sweep_width: 0, ..Default::default() })
            .unwrap();
        let swept: RunOutput<f64> = GpuDevice::default()
            .run(&c, &RunOptions::default())
            .unwrap();
        assert!(swept.stats.sweeps_executed > 0);
        assert!(
            swept.stats.sweeps_executed < swept.stats.kernels_launched,
            "sweeps {} must undercut kernels {}",
            swept.stats.sweeps_executed,
            swept.stats.kernels_launched
        );
        assert_eq!(swept.stats.kernels_launched, fused.stats.kernels_launched);
        assert!(swept.stats.bytes_touched < fused.stats.bytes_touched);
        assert_eq!(swept.stats.flops, fused.stats.flops, "sweeping reorders, never re-does, arithmetic");
        let a = fused.state.unwrap();
        let b = swept.state.unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }

    #[test]
    fn order_preserving_sweeps_are_bit_identical_to_plain_fused() {
        // With reorder off, sweeps only group adjacent kernels and the
        // tile arithmetic replays the full-state op sequence exactly —
        // results must match the plain fused path bit for bit.
        for seed in [2u64, 9, 40] {
            let c = rich_circuit(8, seed);
            let plain: RunOutput<f64> = GpuDevice::default()
                .run(&c, &RunOptions { sweep_width: 0, ..Default::default() })
                .unwrap();
            let swept: RunOutput<f64> = GpuDevice::default()
                .run(&c, &RunOptions { sweep_width: 6, sweep_reorder: false, ..Default::default() })
                .unwrap();
            let a = plain.state.unwrap();
            let b = swept.state.unwrap();
            for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
                assert!(x.re == y.re && x.im == y.im, "seed {seed}: sweep drift");
            }
        }
    }

    #[test]
    fn device_memory_is_default_limit() {
        // A tiny simulated device rejects an 18-qubit fp64 state (4 MiB).
        let tiny = GpuDevice { memory_bytes: 1 << 20, ..GpuDevice::a100_40gb() };
        let mut c = Circuit::new(18);
        c.h(0);
        let err = <GpuDevice as Simulator<f64>>::run(&tiny, &c, &RunOptions::default());
        assert!(matches!(err, Err(SimError::OutOfMemory { .. })));
        // Explicit memory_limit overrides the device bound.
        let opts = RunOptions { memory_limit: Some(u128::MAX), ..Default::default() };
        assert!(<GpuDevice as Simulator<f64>>::run(&tiny, &c, &opts).is_ok());
    }

    #[test]
    fn max_qubits_reproduces_paper_capacities() {
        // fp32 (8 B/amp): one 40 GB A100 holds 32 qubits, not 33 — §3.
        assert_eq!(GpuDevice::a100_40gb().max_qubits(8), 32);
        // fp64 halves it to 31.
        assert_eq!(GpuDevice::a100_40gb().max_qubits(16), 31);
        // 80 GB variant: 33 at fp32.
        assert_eq!(GpuDevice::a100_80gb().max_qubits(8), 33);
    }

    #[test]
    fn ccx_rejected_with_guidance() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let err = <GpuDevice as Simulator<f64>>::run(&GpuDevice::default(), &c, &RunOptions::default());
        assert!(matches!(err, Err(SimError::UnsupportedGate(_))));
    }

    #[test]
    fn sampling_ghz_state() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
        let opts = RunOptions { shots: 50_000, ..Default::default() };
        let out: RunOutput<f64> = GpuDevice::default().run(&c, &opts).unwrap();
        let counts = out.counts.unwrap();
        assert_eq!(counts.total(), 50_000);
        // Only |0000⟩ and |1111⟩ occur.
        assert_eq!(counts.get(0) + counts.get(0b1111), 50_000);
        assert!((counts.probability(0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn fp32_run_close_to_fp64() {
        let c = rich_circuit(6, 5);
        let o32: RunOutput<f32> = GpuDevice::default().run(&c, &RunOptions::default()).unwrap();
        let o64: RunOutput<f64> = GpuDevice::default().run(&c, &RunOptions::default()).unwrap();
        let s32: StateVector<f64> = o32.state.unwrap().cast();
        assert!(o64.state.unwrap().fidelity(&s32) > 0.9999);
    }

    #[test]
    fn diagonal_fast_path_matches_reference() {
        // A cr1/rz ladder fuses into purely diagonal kernels; the fast
        // path must produce the same state as the oracle.
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q); // dense prologue so the diagonal acts on a rich state
        }
        for i in 0..5u32 {
            c.cr1(0.3 + i as f64 * 0.2, i, i + 1);
            c.rz(0.1 * i as f64, i);
        }
        let out: RunOutput<f64> = GpuDevice::a100_40gb()
            .run(&c, &RunOptions::default())
            .unwrap();
        let expect = reference::run(&c);
        assert!(max_deviation(out.state.unwrap().amplitudes(), &expect) < 1e-12);
    }

    #[test]
    fn diagonal_extraction_on_fused_ladder() {
        use qgear_ir::fusion;
        let mut c = Circuit::new(4);
        c.cr1(0.5, 0, 1).rz(0.2, 2).cr1(0.7, 2, 3).rz(-0.4, 0);
        let prog = fusion::fuse(&c, 4);
        assert_eq!(prog.blocks.len(), 1);
        let diag = prog.blocks[0].unitary.diagonal(1e-14).expect("ladder is diagonal");
        assert_eq!(diag.len(), 16);
        for z in &diag {
            assert!((z.norm() - 1.0).abs() < 1e-13, "diagonal of a unitary is unimodular");
        }
    }

    #[test]
    fn stats_flops_scale_with_block_width() {
        let mut c = Circuit::new(6);
        c.h(0); // one 1-qubit block: 2 flops/amp
        let o1: RunOutput<f64> = GpuDevice::default()
            .run(&c, &RunOptions { fusion_width: 1, ..Default::default() })
            .unwrap();
        assert_eq!(o1.stats.flops, 64 * 2);
    }
}
