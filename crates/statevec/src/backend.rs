//! The simulator interface shared by every engine.

use crate::sampling;
use crate::state::StateVector;
use qgear_ir::Circuit;
use qgear_num::Scalar;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Errors an engine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The state vector would exceed the configured memory limit — the
    /// failure mode Fig. 4a shows at 34 qubits on the CPU node and 33 on a
    /// single 40 GB A100.
    OutOfMemory {
        /// Bytes the state would need.
        required: u128,
        /// Configured limit.
        limit: u128,
    },
    /// Circuit contains gates the engine cannot execute directly.
    UnsupportedGate(String),
    /// Register too wide for this build's address space.
    TooManyQubits(u32),
    /// A multi-device engine lost an inter-device exchange (partner died
    /// or the payload failed its integrity check). The partitioned state
    /// is unusable; callers recover from a checkpoint or restart.
    Interconnect(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { required, limit } => {
                write!(f, "state needs {required} B but device holds {limit} B")
            }
            SimError::UnsupportedGate(g) => write!(f, "unsupported gate: {g}"),
            SimError::TooManyQubits(n) => write!(f, "{n} qubits exceed the address space"),
            SimError::Interconnect(msg) => write!(f, "interconnect failure: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Execution options shared by all engines.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Shots to sample from the final state (0 = no sampling).
    pub shots: u64,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Shots per sampling batch (0 = one batch). Batching never changes
    /// the histogram — see [`sampling::SamplingConfig`] — it only bounds
    /// how many shots are materialized per pass in streaming consumers.
    pub shot_batch: u64,
    /// Gate-fusion window for kernel-based engines (the paper's
    /// `gate fusion = 5`); ignored by the unfused baseline.
    pub fusion_width: usize,
    /// Union-support cap (qubits) for the commutation-aware sweep
    /// scheduler: fused kernels are grouped into cache-blocked sweeps
    /// whose tiles hold `2^sweep_width` amplitudes. `0` disables
    /// sweeping (one full-state pass per fused kernel, the pre-sweep
    /// behaviour); ignored by the unfused baseline.
    pub sweep_width: usize,
    /// Allow the sweep scheduler to move kernels past *commuting*
    /// neighbours into earlier sweeps. `false` restricts it to grouping
    /// adjacent kernels, which keeps execution bit-identical to the
    /// plain fused path (reordered execution is equal only up to fp
    /// round-off).
    pub sweep_reorder: bool,
    /// Keep the final state in the output (costs memory).
    pub keep_state: bool,
    /// Simulated device memory in bytes; `None` disables the check.
    /// Set to 40 GB to reproduce the single-A100 limit, 460 GB for the
    /// CPU-node limit.
    pub memory_limit: Option<u128>,
    /// Execution strategy for the simulated-GPU engine: `Fixed` replays
    /// the historical global-mode behaviour selected by the knobs above;
    /// `Planned` lets the adaptive planner pick the cheapest mode per
    /// scheduled segment (see [`crate::planner`]). The default stays
    /// `Fixed` for bit-compatibility with existing artifacts — use
    /// [`RunOptions::planned`] for the recommended adaptive path.
    pub strategy: crate::planner::ExecStrategy,
    /// Cost-model constants the planner prices segments with; ignored
    /// under `ExecStrategy::Fixed`. Defaults to the host-reference fit;
    /// pass [`crate::planner::PlannerCosts::calibrated`] output to feed
    /// measured telemetry back into the model.
    pub planner_costs: crate::planner::PlannerCosts,
}

impl RunOptions {
    /// The recommended adaptive configuration: default knobs with the
    /// per-segment planner enabled.
    ///
    /// ```
    /// use qgear_statevec::{GpuDevice, RunOptions, RunOutput, Simulator};
    /// let mut c = qgear_ir::Circuit::new(3);
    /// c.h(0).cx(0, 1).cx(1, 2);
    /// let out: RunOutput<f64> = GpuDevice::default().run(&c, &RunOptions::planned()).unwrap();
    /// assert!(out.state.is_some());
    /// ```
    pub fn planned() -> Self {
        RunOptions { strategy: crate::planner::ExecStrategy::Planned, ..Default::default() }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shots: 0,
            seed: 0x5EED_0001,
            shot_batch: 0,
            fusion_width: qgear_ir::fusion::DEFAULT_FUSION_WIDTH,
            sweep_width: qgear_ir::schedule::DEFAULT_SWEEP_WIDTH,
            sweep_reorder: true,
            keep_state: true,
            memory_limit: None,
            strategy: crate::planner::ExecStrategy::Fixed,
            planner_costs: crate::planner::PlannerCosts::host_reference(),
        }
    }
}

/// Operation counters captured during a run. The performance model
/// converts these into projected wall-clock on the paper's hardware; the
/// `elapsed` field is the *real* wall-clock on this machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Source gates processed (pre-fusion).
    pub gates_applied: u64,
    /// Kernels launched (fused blocks, or gates for the unfused baseline).
    pub kernels_launched: u64,
    /// Cache-blocked sweeps executed (full-state passes). Zero when the
    /// engine ran kernel-at-a-time (`sweep_width == 0` or unfused).
    pub sweeps_executed: u64,
    /// State-vector bytes read + written across all sweeps.
    pub bytes_touched: u128,
    /// Complex multiply-adds performed by kernels.
    pub flops: u128,
    /// Real elapsed wall time of the unitary phase.
    pub elapsed: Duration,
    /// Real elapsed wall time of the sampling phase.
    pub sampling_elapsed: Duration,
    /// Inter-device communication bytes by link class:
    /// `[intra-node, inter-node, inter-rack]`. Zero for single-device runs.
    pub comm_bytes: [u128; 3],
    /// Inter-device messages sent.
    pub comm_messages: u64,
}

impl ExecStats {
    /// Merge counters from a sub-run (used by multi-device execution).
    pub fn merge(&mut self, other: &ExecStats) {
        self.gates_applied += other.gates_applied;
        self.kernels_launched += other.kernels_launched;
        self.sweeps_executed += other.sweeps_executed;
        self.bytes_touched += other.bytes_touched;
        self.flops += other.flops;
        self.elapsed += other.elapsed;
        self.sampling_elapsed += other.sampling_elapsed;
        for i in 0..3 {
            self.comm_bytes[i] += other.comm_bytes[i];
        }
        self.comm_messages += other.comm_messages;
    }
}

/// Measurement outcome histogram over an ordered qubit subset.
/// Keys pack `qubits[j]`'s outcome into bit `j`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counts {
    /// The measured qubits, in key-bit order.
    pub qubits: Vec<u32>,
    /// Outcome → occurrence count.
    pub map: HashMap<u64, u64>,
}

impl Counts {
    /// Total shots recorded.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Count for one outcome key.
    pub fn get(&self, key: u64) -> u64 {
        self.map.get(&key).copied().unwrap_or(0)
    }

    /// Estimated probability of an outcome.
    pub fn probability(&self, key: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(key) as f64 / total as f64
        }
    }

    /// Outcomes sorted by key — stable output for reports.
    pub fn sorted(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.map.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct RunOutput<T: Scalar> {
    /// Final state (if `keep_state` was set).
    pub state: Option<StateVector<T>>,
    /// Sampled counts (if `shots > 0` and the circuit measures qubits).
    pub counts: Option<Counts>,
    /// Operation counters and timings.
    pub stats: ExecStats,
}

/// Output of [`Simulator::run_shot_batch`]: one evolved state (when
/// requested), one `Counts` per sampling request, and the merged stats.
#[derive(Debug, Clone)]
pub struct ShotBatchOutput<T: Scalar> {
    /// Final state (if `keep_state` was set in the options).
    pub state: Option<StateVector<T>>,
    /// One histogram per request, `None` where the request drew zero
    /// shots or the circuit measures nothing.
    pub counts: Vec<Option<Counts>>,
    /// Counters for the single evolution plus all sampling passes.
    pub stats: ExecStats,
}

/// A state-vector engine: evolves `|0…0⟩` through a circuit and samples.
pub trait Simulator<T: Scalar> {
    /// Engine name, matching the paper's backend labels where applicable.
    fn name(&self) -> &'static str;

    /// Execute the circuit.
    fn run(&self, circuit: &Circuit, opts: &RunOptions) -> Result<RunOutput<T>, SimError>;

    /// Evolve the state **once** and serve several sampling requests from
    /// it — the batched shot pipeline. For `r` requests this costs one
    /// simulation plus `r` multinomial draws instead of `r` simulations,
    /// which is what makes 98 M-shot QCrank workloads (Table 2) and
    /// multi-tenant serving affordable.
    ///
    /// Each request samples from the same exact marginal with its own
    /// `(shots, seed, batch_shots)`, so any single request is
    /// bit-identical to what a standalone [`Simulator::run`] with those
    /// options would have produced.
    fn run_shot_batch(
        &self,
        circuit: &Circuit,
        opts: &RunOptions,
        requests: &[sampling::SamplingConfig],
    ) -> Result<ShotBatchOutput<T>, SimError> {
        let evolve_opts = RunOptions { shots: 0, keep_state: true, ..opts.clone() };
        let out = self.run(circuit, &evolve_opts)?;
        let state = out.state.expect("keep_state run returns the state");
        let mut stats = out.stats;
        let (_, measured) = circuit.split_measurements();
        let sample_start = std::time::Instant::now();
        let counts = if measured.is_empty() {
            requests.iter().map(|_| None).collect()
        } else {
            let probs = marginal_probs(&state, &measured);
            requests.iter().map(|cfg| sample_from_probs(&probs, &measured, cfg)).collect()
        };
        stats.sampling_elapsed += sample_start.elapsed();
        Ok(ShotBatchOutput { state: opts.keep_state.then_some(state), counts, stats })
    }
}

/// Shared pre-flight checks: width vs address space and memory limit.
pub(crate) fn check_capacity<T: Scalar>(
    num_qubits: u32,
    opts: &RunOptions,
) -> Result<(), SimError> {
    if num_qubits >= usize::BITS - 1 {
        return Err(SimError::TooManyQubits(num_qubits));
    }
    if let Some(limit) = opts.memory_limit {
        let required = (1u128 << num_qubits) * 2 * T::BYTES as u128;
        if required > limit {
            return Err(SimError::OutOfMemory { required, limit });
        }
    }
    Ok(())
}

/// The exact measurement marginal as `f64` probabilities — the **single**
/// conversion point between execution precision and sampling. Every
/// sampling path (direct runs, batched runs, the serving layer's marginal
/// cache) goes through here, so replaying a cached marginal is
/// bit-identical to re-simulating.
pub fn marginal_probs<T: Scalar>(state: &StateVector<T>, measured: &[u32]) -> Vec<f64> {
    state.marginal(measured).iter().map(|p| p.to_f64()).collect()
}

/// Draw one request's histogram from a prepared marginal. Returns `None`
/// for zero-shot requests or an empty measured set.
pub fn sample_from_probs(
    probs: &[f64],
    measured: &[u32],
    cfg: &sampling::SamplingConfig,
) -> Option<Counts> {
    if cfg.shots == 0 || measured.is_empty() {
        return None;
    }
    let draws = cfg.histogram(probs);
    qgear_telemetry::counter_add(qgear_telemetry::names::SHOTS_SAMPLED, cfg.shots as u128);
    let mut map = HashMap::new();
    for (key, count) in draws.into_iter().enumerate() {
        if count > 0 {
            map.insert(key as u64, count);
        }
    }
    Some(Counts { qubits: measured.to_vec(), map })
}

/// Shared post-run sampling: if the circuit measured qubits and shots were
/// requested, draw a multinomial sample from the exact marginal.
pub(crate) fn sample_measured<T: Scalar>(
    state: &StateVector<T>,
    measured: &[u32],
    opts: &RunOptions,
) -> Option<Counts> {
    if opts.shots == 0 || measured.is_empty() {
        return None;
    }
    let probs = marginal_probs(state, measured);
    let cfg = sampling::SamplingConfig {
        shots: opts.shots,
        seed: opts.seed,
        batch_shots: opts.shot_batch,
    };
    sample_from_probs(&probs, measured, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_check_enforces_limit() {
        let opts = RunOptions { memory_limit: Some(1024), ..Default::default() };
        // 6 qubits fp64 = 64 * 16 = 1024 B: exactly fits.
        assert!(check_capacity::<f64>(6, &opts).is_ok());
        // 7 qubits = 2048 B: rejected.
        assert_eq!(
            check_capacity::<f64>(7, &opts),
            Err(SimError::OutOfMemory { required: 2048, limit: 1024 })
        );
        // fp32 halves the footprint: 7 qubits fit.
        assert!(check_capacity::<f32>(7, &opts).is_ok());
    }

    #[test]
    fn capacity_check_paper_limits() {
        // Single A100: 40 GB. fp32 32 qubits = 34.4 GB fits; 33 does not.
        let a100 = RunOptions { memory_limit: Some(40_000_000_000), ..Default::default() };
        assert!(check_capacity::<f32>(32, &a100).is_ok());
        assert!(matches!(
            check_capacity::<f32>(33, &a100),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn counts_arithmetic() {
        let mut c = Counts { qubits: vec![0, 1], map: HashMap::new() };
        c.map.insert(0, 75);
        c.map.insert(3, 25);
        assert_eq!(c.total(), 100);
        assert_eq!(c.get(3), 25);
        assert_eq!(c.get(1), 0);
        assert!((c.probability(0) - 0.75).abs() < 1e-12);
        assert_eq!(c.sorted(), vec![(0, 75), (3, 25)]);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats { gates_applied: 5, kernels_launched: 2, bytes_touched: 100, flops: 50, ..Default::default() };
        let b = ExecStats { gates_applied: 3, kernels_launched: 1, bytes_touched: 10, flops: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.gates_applied, 8);
        assert_eq!(a.kernels_launched, 3);
        assert_eq!(a.bytes_touched, 110);
        assert_eq!(a.flops, 55);
    }
}
