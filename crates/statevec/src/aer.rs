//! The Qiskit-Aer-like CPU baseline engine.
//!
//! Reproduces the algorithmic profile of the paper's baseline (§3,
//! Fig. 4a dashed curves): **sequential** gate-by-gate dense application
//! with **no fusion** — every gate pays a full `O(2^n)` sweep over the
//! state vector plus a fixed per-gate dispatch cost. Diagonal and
//! permutation gates get the same specialized inner loops a real Aer build
//! has, so the baseline is honest rather than strawmanned; what it lacks,
//! by design, is kernel fusion and data parallelism.

use crate::backend::{check_capacity, sample_measured, ExecStats, RunOptions, RunOutput, SimError, Simulator};
use crate::state::StateVector;
use qgear_ir::{Circuit, Gate, GateKind};
use qgear_num::{Complex, Mat2, Mat4, Scalar};
use std::time::Instant;

/// The sequential, unfused CPU engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct AerCpuBackend;

impl AerCpuBackend {
    /// Apply a single gate to the state, sequentially. Exposed for tests
    /// and for the distributed engine's local-gate path.
    pub fn apply_gate<T: Scalar>(state: &mut [Complex<T>], g: &Gate) -> Result<(), SimError> {
        match g.kind {
            GateKind::Measure | GateKind::Barrier => Ok(()),
            GateKind::Ccx => {
                apply_ccx(state, g.qubits[0], g.qubits[1], g.qubits[2]);
                Ok(())
            }
            GateKind::Cx => {
                apply_cx(state, g.qubits[0], g.qubits[1]);
                Ok(())
            }
            GateKind::Rz => {
                apply_rz(state, g.qubits[0], T::from_f64(g.params[0]));
                Ok(())
            }
            GateKind::P => {
                apply_phase(state, g.qubits[0], T::from_f64(g.params[0]));
                Ok(())
            }
            _ => {
                if let Some(m) = g.matrix2::<T>() {
                    apply_mat2(state, g.qubits[0], &m);
                    Ok(())
                } else if let Some(m) = g.matrix4::<T>() {
                    apply_mat4(state, g.qubits[0], g.qubits[1], &m);
                    Ok(())
                } else {
                    Err(SimError::UnsupportedGate(g.kind.name().to_owned()))
                }
            }
        }
    }
}

/// Dense 2×2 application to qubit `q`.
pub fn apply_mat2<T: Scalar>(state: &mut [Complex<T>], q: u32, m: &Mat2<T>) {
    let stride = 1usize << q;
    let len = state.len();
    let mut base = 0usize;
    while base < len {
        for i in base..base + stride {
            let a0 = state[i];
            let a1 = state[i + stride];
            let (b0, b1) = m.apply(a0, a1);
            state[i] = b0;
            state[i + stride] = b1;
        }
        base += stride << 1;
    }
}

/// Dense 4×4 application; operand `a` on the high sub-index bit.
pub fn apply_mat4<T: Scalar>(state: &mut [Complex<T>], a: u32, b: u32, m: &Mat4<T>) {
    debug_assert_ne!(a, b);
    let ma = 1usize << a;
    let mb = 1usize << b;
    for i in 0..state.len() {
        if i & ma != 0 || i & mb != 0 {
            continue;
        }
        let v = [state[i], state[i | mb], state[i | ma], state[i | ma | mb]];
        let w = m.apply(v);
        state[i] = w[0];
        state[i | mb] = w[1];
        state[i | ma] = w[2];
        state[i | ma | mb] = w[3];
    }
}

/// CX specialization: swap amplitude pairs where the control bit is set.
/// This is the Appendix A example — "noncontiguous memory access because
/// the amplitudes to be swapped are scattered across the state vector".
pub fn apply_cx<T: Scalar>(state: &mut [Complex<T>], control: u32, target: u32) {
    let mc = 1usize << control;
    let mt = 1usize << target;
    for i in 0..state.len() {
        if i & mc != 0 && i & mt == 0 {
            state.swap(i, i | mt);
        }
    }
}

/// Toffoli specialization.
pub fn apply_ccx<T: Scalar>(state: &mut [Complex<T>], c0: u32, c1: u32, t: u32) {
    let m0 = 1usize << c0;
    let m1 = 1usize << c1;
    let mt = 1usize << t;
    for i in 0..state.len() {
        if i & m0 != 0 && i & m1 != 0 && i & mt == 0 {
            state.swap(i, i | mt);
        }
    }
}

/// Rz specialization: pure diagonal phase rotation.
pub fn apply_rz<T: Scalar>(state: &mut [Complex<T>], q: u32, theta: T) {
    let neg = Complex::cis(-(theta * T::HALF));
    let pos = Complex::cis(theta * T::HALF);
    let mask = 1usize << q;
    for (i, amp) in state.iter_mut().enumerate() {
        *amp *= if i & mask == 0 { neg } else { pos };
    }
}

/// Phase-gate specialization: `diag(1, e^{iλ})` on one qubit.
pub fn apply_phase<T: Scalar>(state: &mut [Complex<T>], q: u32, lambda: T) {
    let ph = Complex::cis(lambda);
    let mask = 1usize << q;
    for (i, amp) in state.iter_mut().enumerate() {
        if i & mask != 0 {
            *amp *= ph;
        }
    }
}

impl<T: Scalar> Simulator<T> for AerCpuBackend {
    fn name(&self) -> &'static str {
        "qiskit-aer-cpu"
    }

    fn run(&self, circuit: &Circuit, opts: &RunOptions) -> Result<RunOutput<T>, SimError> {
        check_capacity::<T>(circuit.num_qubits(), opts)?;
        let (unitary, measured) = circuit.split_measurements();
        let mut state: StateVector<T> = StateVector::zero(circuit.num_qubits());
        let amp_bytes = (2 * T::BYTES) as u128;
        let n_amps = state.len() as u128;

        let mut stats = ExecStats::default();
        let start = Instant::now();
        let sim_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SIMULATE);
        let telemetry_on = qgear_telemetry::is_enabled();
        for g in unitary.gates() {
            if g.kind == GateKind::Barrier {
                continue;
            }
            Self::apply_gate(state.amplitudes_mut(), g)?;
            stats.gates_applied += 1;
            stats.kernels_launched += 1; // unfused: one sweep per gate
            stats.bytes_touched += 2 * n_amps * amp_bytes; // read + write
            stats.flops += n_amps * (1 << g.operands().len()) as u128;
            if telemetry_on {
                // Per-kind dispatch counters; the format! only runs while
                // telemetry is recording.
                qgear_telemetry::counter_inc(&format!("aer.dispatch.{}", g.kind.name()));
            }
        }
        if telemetry_on {
            use qgear_telemetry::names;
            qgear_telemetry::counter_add(names::GATES_APPLIED, stats.gates_applied as u128);
            qgear_telemetry::counter_add(names::KERNELS_LAUNCHED, stats.kernels_launched as u128);
            qgear_telemetry::counter_add(
                names::AMPLITUDES_TOUCHED,
                2 * n_amps * stats.kernels_launched as u128,
            );
        }
        drop(sim_span);
        stats.elapsed = start.elapsed();

        let sample_start = Instant::now();
        let sample_span = qgear_telemetry::span!(qgear_telemetry::names::spans::SAMPLE);
        let counts = sample_measured(&state, &measured, opts);
        drop(sample_span);
        stats.sampling_elapsed = sample_start.elapsed();

        Ok(RunOutput { state: opts.keep_state.then_some(state), counts, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_ir::reference;
    use qgear_num::approx::max_deviation;
    use qgear_num::C64;

    fn run_f64(circ: &Circuit, opts: &RunOptions) -> RunOutput<f64> {
        AerCpuBackend.run(circ, opts).unwrap()
    }

    fn rich_circuit(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed | 1;
        let mut rnd = move |m: u64| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % m
        };
        for _ in 0..60 {
            match rnd(6) {
                0 => {
                    c.h(rnd(n as u64) as u32);
                }
                1 => {
                    c.ry(rnd(628) as f64 / 100.0, rnd(n as u64) as u32);
                }
                2 => {
                    c.rz(rnd(628) as f64 / 100.0, rnd(n as u64) as u32);
                }
                3 => {
                    c.p(rnd(628) as f64 / 100.0, rnd(n as u64) as u32);
                }
                4 => {
                    let a = rnd(n as u64) as u32;
                    let b = (a + 1 + rnd(n as u64 - 1) as u32) % n;
                    c.cx(a, b);
                }
                _ => {
                    let a = rnd(n as u64) as u32;
                    let b = (a + 1 + rnd(n as u64 - 1) as u32) % n;
                    c.cr1(rnd(628) as f64 / 100.0, a, b);
                }
            }
        }
        c
    }

    #[test]
    fn matches_reference_simulator() {
        for seed in [1u64, 2, 3] {
            let c = rich_circuit(6, seed);
            let out = run_f64(&c, &RunOptions::default());
            let got = out.state.unwrap();
            let expect = reference::run(&c);
            assert!(
                max_deviation(got.amplitudes(), &expect) < 1e-11,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn specializations_match_general_path() {
        // cx / rz / p fast paths equal their dense-matrix application.
        let n = 5u32;
        let base: Vec<C64> = reference::random_state(n, 77);
        // cx
        let mut fast = base.clone();
        apply_cx(&mut fast, 3, 1);
        let mut slow = base.clone();
        apply_mat4(&mut slow, 3, 1, &qgear_num::gates::cx());
        assert!(max_deviation(&fast, &slow) < 1e-15);
        // rz
        let mut fast = base.clone();
        apply_rz(&mut fast, 2, 0.9);
        let mut slow = base.clone();
        apply_mat2(&mut slow, 2, &qgear_num::gates::rz(0.9));
        assert!(max_deviation(&fast, &slow) < 1e-15);
        // p
        let mut fast = base.clone();
        apply_phase(&mut fast, 0, -1.3);
        let mut slow = base;
        apply_mat2(&mut slow, 0, &qgear_num::gates::p(-1.3));
        assert!(max_deviation(&fast, &slow) < 1e-15);
    }

    #[test]
    fn stats_count_sweeps_per_gate() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.5, 2).barrier().rz(0.1, 3);
        let out = run_f64(&c, &RunOptions::default());
        assert_eq!(out.stats.gates_applied, 4);
        assert_eq!(out.stats.kernels_launched, 4, "one sweep per gate, barrier free");
        // 4 gates × 2 × 16 amps × 16 B.
        assert_eq!(out.stats.bytes_touched, 4 * 2 * 16 * 16);
    }

    #[test]
    fn memory_limit_enforced() {
        let mut c = Circuit::new(20);
        c.h(0);
        let opts = RunOptions { memory_limit: Some(1 << 20), ..Default::default() };
        // 2^20 amps × 16 B = 16 MiB > 1 MiB.
        let err = AerCpuBackend.run(&c, &opts);
        assert!(matches!(err, Err::<RunOutput<f64>, _>(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn bell_state_counts_are_balanced() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        let opts = RunOptions { shots: 100_000, ..Default::default() };
        let out = run_f64(&c, &opts);
        let counts = out.counts.unwrap();
        assert_eq!(counts.total(), 100_000);
        assert_eq!(counts.get(1) + counts.get(2), 0, "odd-parity outcomes impossible");
        let p00 = counts.probability(0);
        assert!((p00 - 0.5).abs() < 0.01, "p00 = {p00}");
    }

    #[test]
    fn no_measure_no_counts() {
        let mut c = Circuit::new(2);
        c.h(0);
        let opts = RunOptions { shots: 100, ..Default::default() };
        let out = run_f64(&c, &opts);
        assert!(out.counts.is_none());
    }

    #[test]
    fn keep_state_false_drops_state() {
        let mut c = Circuit::new(2);
        c.h(0);
        let opts = RunOptions { keep_state: false, ..Default::default() };
        let out = run_f64(&c, &opts);
        assert!(out.state.is_none());
    }

    #[test]
    fn fp32_close_to_fp64() {
        let c = rich_circuit(5, 9);
        let o64: RunOutput<f64> = AerCpuBackend.run(&c, &RunOptions::default()).unwrap();
        let o32: RunOutput<f32> = AerCpuBackend.run(&c, &RunOptions::default()).unwrap();
        let s64 = o64.state.unwrap();
        let s32: StateVector<f64> = o32.state.unwrap().cast();
        assert!(s64.fidelity(&s32) > 0.999_99);
    }
}
