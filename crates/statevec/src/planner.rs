//! The adaptive execution planner: cost-model-driven mode choice per
//! scheduled segment.
//!
//! The fixed execution modes are each a *global* bet, and
//! `BENCH_hotpath.json` shows every one of them losing somewhere: dense
//! fused kernels are 3–6× slower than the unfused per-gate baseline on
//! the `random` and `qcrank` workloads (a width-5 kernel costs `2^5`
//! mul-adds per amplitude where the gates it absorbed cost a handful),
//! while the unfused baseline loses badly on QFT-shaped circuits where
//! sweeps amortize state passes. The planner replaces the global bet
//! with a per-segment decision: walk the commutation-aware sweep
//! schedule segment by segment, price **unfused** (per-gate specialized
//! loops), **fused** (one structured kernel pass per block, dispatched
//! by [`KernelStructure`]), and **sweep** (one cache-blocked tile pass)
//! against a calibrated [`PlannerCosts`] model, and execute each segment
//! in its cheapest legal mode.
//!
//! Every mode applies the same unitaries in the same schedule order, so
//! the planned state agrees with any fixed mode to floating-point
//! round-off; with [`PlannerCosts::force_mode`] pinning one mode the
//! arithmetic is *bit-identical* to the corresponding fixed path, which
//! is how the differential suite anchors the planner. Plans are
//! deterministic functions of `(circuit, options, costs)` — the mode
//! digest is folded into the checkpoint plan fingerprint so a resumed
//! [`SegmentedRun`](crate::SegmentedRun) can never silently continue
//! under a different plan.
//!
//! See `docs/PLANNER.md` for the cost model's constants and the full
//! decision procedure.
//!
//! ```
//! use qgear_ir::Circuit;
//! use qgear_statevec::planner::{plan, PlannerCosts, SegmentMode};
//!
//! // A QFT-shaped phase ladder: the planner walks the sweep schedule
//! // and picks the cheapest mode for every segment.
//! let mut c = Circuit::new(4);
//! c.h(0).cr1(0.5, 0, 1).cr1(0.25, 0, 2).h(1).cr1(0.5, 1, 2).h(2);
//! let plan = plan(&c, 5, 12, true, &PlannerCosts::default(), 16).unwrap();
//! assert!(!plan.segments.is_empty());
//! for seg in &plan.segments {
//!     // The chosen mode is never predicted slower than either rival.
//!     let p = &seg.predicted;
//!     assert!(p.of(seg.mode) <= p.unfused && p.of(seg.mode) <= p.fused);
//!     assert!(p.of(seg.mode) <= p.sweep);
//! }
//! ```

use crate::aer::AerCpuBackend;
use crate::gpu::GpuDevice;
use qgear_ir::fusion::{self, FusedBlock, FusionError, KernelStructure};
use qgear_ir::schedule::{self, Sweep, SweepOptions};
use qgear_ir::{Circuit, Gate};
use qgear_num::{Complex, Scalar};
use qgear_telemetry::names;
use std::time::Instant;

/// Which engine strategy a run uses: the historical fixed modes
/// (selected by `sweep_width`/backend choice) or the adaptive planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// One global mode for the whole circuit, exactly as selected by the
    /// `sweep_width`/`sweep_reorder` knobs. Default for bit-compatibility
    /// with existing fixed-mode artifacts (checkpoints, cached results).
    #[default]
    Fixed,
    /// Per-segment cost-model-driven mode choice (see module docs) —
    /// the recommended path for performance-sensitive execution.
    Planned,
}

/// Execution mode chosen for one schedule segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentMode {
    /// Per-gate specialized loops (the Aer-style kernels): cheap
    /// arithmetic, one state pass per gate.
    Unfused,
    /// One structured kernel pass per fused block
    /// ([`GpuDevice::apply_block_structured`]): state passes amortized
    /// over fused gates, arithmetic priced by [`KernelStructure`].
    Fused,
    /// One cache-blocked tile pass for the whole segment
    /// ([`GpuDevice::apply_sweep`]).
    Sweep,
}

impl SegmentMode {
    /// Stable lowercase label for telemetry and bench output.
    pub fn name(self) -> &'static str {
        match self {
            SegmentMode::Unfused => "unfused",
            SegmentMode::Fused => "fused",
            SegmentMode::Sweep => "sweep",
        }
    }
}

/// Calibrated throughput/overhead constants the cost model prices
/// segments with. The defaults are fitted to the repo's reference VM
/// from the measured `BENCH_hotpath.json` grid (see `docs/PLANNER.md`
/// for the derivation); [`PlannerCosts::calibrated`] refits them from
/// the predicted-vs-actual telemetry of earlier planned runs. Only the
/// *ratios* between constants matter for mode ranking, so rough
/// absolute values are fine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerCosts {
    /// Streaming bandwidth for full-state passes, bytes/second.
    pub bytes_per_sec: f64,
    /// Dense-kernel inner-loop throughput, complex mul-adds/second
    /// (gather/scatter bookkeeping amortized in).
    pub madds_per_sec: f64,
    /// Element-wise diagonal/permutation throughput, complex
    /// multiplies/second.
    pub cmuls_per_sec: f64,
    /// Per-gate specialized-loop throughput of the unfused path,
    /// amplitude·gate-weight units/second.
    pub gate_amps_per_sec: f64,
    /// Fixed overhead per kernel launch / state pass, seconds.
    pub launch_seconds: f64,
    /// Pin every segment to one mode regardless of cost. The escape
    /// hatch that embeds the fixed modes into the planner: with a forced
    /// mode the planned path is bit-identical to the corresponding fixed
    /// path (the differential suite relies on this).
    pub force_mode: Option<SegmentMode>,
}

impl Default for PlannerCosts {
    fn default() -> Self {
        PlannerCosts::host_reference()
    }
}

impl PlannerCosts {
    /// Constants fitted to the 1-core reference VM from the measured
    /// hot-path grid, **after** the SIMD/FMA kernel overhaul (native
    /// codegen plus explicit lane kernels lifted every inner loop ~7–15×,
    /// so the pre-SIMD constants would misprice all three modes): fused
    /// `random@16` (122 dense width-5 kernels, 0.38 s) pins
    /// `madds_per_sec` ≈ 7e8; unfused `random@16` (960 gates, 0.065 s)
    /// pins `gate_amps_per_sec` ≈ 1e9; the chunked diagonal-table kernels
    /// behind the qft-fused series pin `cmuls_per_sec` ≈ 2.5e9; sweep
    /// deltas across the grid pin the effective streaming bandwidth; and
    /// unfused `random@10` (600 gates, 0.6 ms total) bounds the per-gate
    /// dispatch overhead at well under a microsecond.
    pub fn host_reference() -> Self {
        PlannerCosts {
            bytes_per_sec: 1.6e10,
            madds_per_sec: 7.0e8,
            cmuls_per_sec: 2.5e9,
            gate_amps_per_sec: 1.0e9,
            launch_seconds: 5.0e-7,
            force_mode: None,
        }
    }

    /// Refit the constants from a telemetry snapshot of earlier planned
    /// runs: each per-mode `planner.cost_ratio.*` histogram records
    /// actual/predicted per executed segment, and its mean rescales the
    /// constants that dominate that mode (clamped to `[0.25, 4]` per
    /// refit so one noisy run cannot wreck the model). Returns the
    /// costs unchanged for modes with no observations.
    pub fn calibrated(&self, snap: &qgear_telemetry::TelemetrySnapshot) -> PlannerCosts {
        let mean = |name: &str| {
            snap.histograms
                .get(name)
                .filter(|h| h.count > 0)
                .map(|h| (h.sum / h.count as f64).clamp(0.25, 4.0))
        };
        let mut c = *self;
        if let Some(r) = mean(names::PLANNER_RATIO_UNFUSED) {
            c.gate_amps_per_sec /= r;
        }
        if let Some(r) = mean(names::PLANNER_RATIO_FUSED) {
            c.madds_per_sec /= r;
            c.cmuls_per_sec /= r;
        }
        if let Some(r) = mean(names::PLANNER_RATIO_SWEEP) {
            c.bytes_per_sec /= r;
        }
        c
    }

    /// Seconds for one full-state pass (read + write) of `n_amps`
    /// amplitudes at `amp_bytes` each, excluding arithmetic.
    fn pass_seconds(&self, n_amps: f64, amp_bytes: f64) -> f64 {
        2.0 * n_amps * amp_bytes / self.bytes_per_sec
    }

    /// Per-kernel arithmetic seconds under structured dispatch.
    fn kernel_flop_seconds(&self, structure: &KernelStructure, k: usize, n_amps: f64) -> f64 {
        match structure {
            KernelStructure::Diagonal => n_amps / self.cmuls_per_sec,
            // A permutation pays the same single multiply plus the
            // gather/scatter shuffle.
            KernelStructure::Permutation(_) => 1.5 * n_amps / self.cmuls_per_sec,
            KernelStructure::Controlled { .. } | KernelStructure::Dense => {
                let mu = structure.mixed_count(k);
                n_amps * (1u64 << mu) as f64 / self.madds_per_sec
            }
        }
    }

    /// Per-gate seconds of the unfused specialized loops. Two-qubit
    /// gates walk the masked full-index loop (≈2× the strided
    /// single-qubit cost); the launch term models per-gate dispatch.
    fn unfused_gate_seconds(&self, gate: &Gate, n_amps: f64) -> f64 {
        let weight = if gate.operands().len() >= 2 { 2.0 } else { 1.0 };
        self.launch_seconds + weight * n_amps / self.gate_amps_per_sec
    }

    /// Estimated seconds to *build* the fused program: each absorbed
    /// gate multiplies into an accumulated dense block, ≈`4 · 4^w`
    /// mul-adds at full fusion width. This cost is paid once by every
    /// kernel-based mode but never by per-gate execution, so on small
    /// states it can exceed the entire unfused run — the planner skips
    /// fusion outright when it does (see [`plan`]).
    fn fusion_build_seconds(&self, gates: usize, fusion_width: usize) -> f64 {
        gates as f64 * 4.0 * (1u64 << (2 * fusion_width)) as f64 / self.madds_per_sec
    }
}

/// The three predicted per-segment costs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCosts {
    /// Predicted seconds for per-gate unfused execution.
    pub unfused: f64,
    /// Predicted seconds for structured kernel-at-a-time execution.
    pub fused: f64,
    /// Predicted seconds for one cache-blocked sweep pass.
    pub sweep: f64,
}

impl ModeCosts {
    /// The predicted cost of a given mode.
    pub fn of(&self, mode: SegmentMode) -> f64 {
        match mode {
            SegmentMode::Unfused => self.unfused,
            SegmentMode::Fused => self.fused,
            SegmentMode::Sweep => self.sweep,
        }
    }

    /// The cheapest mode, ties resolved in `Unfused → Fused → Sweep`
    /// declaration order (deterministic: the costs are pure f64
    /// arithmetic over the same inputs on every host).
    fn cheapest(&self) -> SegmentMode {
        let mut best = SegmentMode::Unfused;
        for mode in [SegmentMode::Fused, SegmentMode::Sweep] {
            if self.of(mode) < self.of(best) {
                best = mode;
            }
        }
        best
    }
}

/// One scheduled segment with its chosen execution mode.
#[derive(Debug, Clone)]
pub struct PlannedSegment {
    /// The scheduled sweep this segment executes (kernel indices into
    /// [`ExecutionPlan::blocks`], union support, diagonal flag).
    pub sweep: Sweep,
    /// The mode the cost model picked.
    pub mode: SegmentMode,
    /// The segment's source gates in schedule order — materialized only
    /// for [`SegmentMode::Unfused`] segments (empty otherwise).
    pub gates: Vec<Gate>,
    /// The three predicted costs the decision was made from.
    pub predicted: ModeCosts,
}

/// A fully-resolved execution plan: the fused kernels, their structure
/// classes, and one mode-annotated segment per scheduled sweep.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Register width.
    pub num_qubits: u32,
    /// Fused kernels, indexed by the segments' `sweep.kernels`.
    pub blocks: Vec<FusedBlock>,
    /// Structure class of each kernel, parallel to `blocks`.
    pub structures: Vec<KernelStructure>,
    /// Mode-annotated segments in execution order.
    pub segments: Vec<PlannedSegment>,
    /// Source gates absorbed by the plan (pre-fusion count).
    pub source_gates: u64,
    /// Order-preserving flag forwarded to sweep execution
    /// (`!sweep_reorder`, same as the fixed sweep path).
    pub exact: bool,
    /// Digest of the per-segment mode choices; folded into the
    /// checkpoint plan fingerprint so resume rejects a plan whose
    /// decisions differ (e.g. different calibrated costs).
    pub digest: u64,
}

impl ExecutionPlan {
    /// Segment count (checkpointable schedule steps).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the plan has no segments (empty circuit).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// How many segments chose each mode, in
    /// `(unfused, fused, sweep)` order.
    pub fn mode_histogram(&self) -> (usize, usize, usize) {
        let count = |m: SegmentMode| self.segments.iter().filter(|s| s.mode == m).count();
        (
            count(SegmentMode::Unfused),
            count(SegmentMode::Fused),
            count(SegmentMode::Sweep),
        )
    }
}

/// splitmix64 step, the same mixer `checkpoint::plan_fingerprint` uses.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the adaptive execution plan for a circuit.
///
/// Fuses at `fusion_width` (clamped like the engines do), schedules
/// sweeps at `sweep_width` (`0` falls back to the scheduler default —
/// the planner always works on the scheduled segmentation), classifies
/// every kernel's structure, prices each segment under the three modes
/// and picks the cheapest. Measurements are split off; errors surface
/// exactly as fusion reports them.
///
/// `amp_bytes` is the bytes-per-amplitude of the execution precision
/// (8 for fp32, 16 for fp64) — it only scales the bandwidth term.
pub fn plan(
    circuit: &Circuit,
    fusion_width: usize,
    sweep_width: usize,
    sweep_reorder: bool,
    costs: &PlannerCosts,
    amp_bytes: usize,
) -> Result<ExecutionPlan, FusionError> {
    let (unitary, _) = circuit.split_measurements();
    let width = fusion_width.clamp(1, fusion::MAX_FUSION_WIDTH);

    // Whole-circuit shortcut: building fused kernels costs real time
    // (dense matrix products per absorbed gate) that per-gate execution
    // never pays. On small states that build alone can exceed the entire
    // unfused run, so when the model predicts it would, skip fusion and
    // emit a single all-unfused segment in source order. Forced modes
    // always take the full path (fused/sweep need the kernels to exist).
    let n_amps_f = (1u128 << unitary.num_qubits()) as f64;
    let unfused_total: f64 = unitary
        .gates()
        .iter()
        .filter(|g| g.is_unitary_op())
        .map(|g| costs.unfused_gate_seconds(g, n_amps_f))
        .sum();
    let gate_count = unitary.gates().iter().filter(|g| g.is_unitary_op()).count();
    if costs.force_mode.is_none()
        && gate_count > 0
        && unfused_total < costs.fusion_build_seconds(gate_count, width)
    {
        let gates: Vec<Gate> =
            unitary.gates().iter().filter(|g| g.is_unitary_op()).copied().collect();
        let predicted = ModeCosts {
            unfused: unfused_total,
            fused: f64::INFINITY,
            sweep: f64::INFINITY,
        };
        // Distinct digest arm: a shortcut plan has no kernel schedule, so
        // it must never fingerprint-collide with a scheduled plan.
        let mut digest = mix(0x51D3_C0DE, u64::MAX);
        digest = mix(digest, gates.len() as u64);
        if qgear_telemetry::is_enabled() {
            qgear_telemetry::counter_inc(names::PLANNER_SEGMENTS);
            qgear_telemetry::counter_inc(names::PLANNER_MODE_UNFUSED);
            qgear_telemetry::histogram_record(names::PLANNER_PREDICTED_US, unfused_total * 1e6);
        }
        return Ok(ExecutionPlan {
            num_qubits: unitary.num_qubits(),
            blocks: Vec::new(),
            structures: Vec::new(),
            segments: vec![PlannedSegment {
                sweep: Sweep { kernels: Vec::new(), qubits: Vec::new(), diagonal: false },
                mode: SegmentMode::Unfused,
                gates,
                predicted,
            }],
            source_gates: gate_count as u64,
            exact: !sweep_reorder,
            digest,
        });
    }

    let program = fusion::try_fuse(&unitary, width)?;
    let width = if sweep_width == 0 { schedule::DEFAULT_SWEEP_WIDTH } else { sweep_width };
    let sched = schedule::sweeps(&program, &SweepOptions { max_width: width, reorder: sweep_reorder });

    // Partition the unitary gate stream by block: fusion absorbs
    // contiguous runs, so block `i` owns the next `source_gates` gates.
    let unitary_gates: Vec<&Gate> = unitary.gates().iter().filter(|g| g.is_unitary_op()).collect();
    let mut block_gates: Vec<&[&Gate]> = Vec::with_capacity(program.blocks.len());
    let mut off = 0usize;
    for b in &program.blocks {
        block_gates.push(&unitary_gates[off..off + b.source_gates]);
        off += b.source_gates;
    }
    debug_assert_eq!(off, unitary_gates.len(), "fusion partitions the gate stream");

    let structures: Vec<KernelStructure> =
        program.blocks.iter().map(|b| b.structure()).collect();

    let n_amps = (1u128 << unitary.num_qubits()) as f64;
    let ab = amp_bytes as f64;
    let mut segments = Vec::with_capacity(sched.sweeps.len());
    let mut digest = mix(0x51D3_C0DE, sched.sweeps.len() as u64);
    for sweep in sched.sweeps {
        let pass = costs.pass_seconds(n_amps, ab);
        let mut unfused_cost = 0.0f64;
        let mut fused_cost = 0.0f64;
        let mut sweep_flops = 0.0f64;
        for &ki in &sweep.kernels {
            let k = program.blocks[ki].qubits.len();
            let flops = costs.kernel_flop_seconds(&structures[ki], k, n_amps);
            fused_cost += costs.launch_seconds + pass + flops;
            sweep_flops += flops;
            for g in block_gates[ki] {
                unfused_cost += costs.unfused_gate_seconds(g, n_amps);
            }
        }
        let sweep_cost = if let [only] = sweep.kernels.as_slice() {
            // Singleton sweeps delegate to the full-state kernel, which
            // has no factored path: price diagonal or dense, not
            // structured.
            let k = program.blocks[*only].qubits.len();
            let flops = match &structures[*only] {
                KernelStructure::Diagonal => n_amps / costs.cmuls_per_sec,
                _ => n_amps * (1u64 << k) as f64 / costs.madds_per_sec,
            };
            costs.launch_seconds + pass + flops
        } else {
            // One tiled pass; gather/scatter index math inflates the
            // bandwidth term unless the sweep is all-diagonal
            // (element-wise, no data movement).
            let tile_factor = if sweep.diagonal { 1.0 } else { 1.5 };
            costs.launch_seconds + tile_factor * pass + sweep_flops
        };

        let predicted = ModeCosts { unfused: unfused_cost, fused: fused_cost, sweep: sweep_cost };
        let mode = costs.force_mode.unwrap_or_else(|| predicted.cheapest());
        let gates: Vec<Gate> = if mode == SegmentMode::Unfused {
            sweep.kernels.iter().flat_map(|&ki| block_gates[ki].iter().map(|&&g| g)).collect()
        } else {
            Vec::new()
        };
        digest = mix(digest, mode as u64);
        digest = mix(digest, sweep.kernels.len() as u64);
        segments.push(PlannedSegment { sweep, mode, gates, predicted });
    }

    if qgear_telemetry::is_enabled() {
        qgear_telemetry::counter_add(names::PLANNER_SEGMENTS, segments.len() as u128);
        for seg in &segments {
            let counter = match seg.mode {
                SegmentMode::Unfused => names::PLANNER_MODE_UNFUSED,
                SegmentMode::Fused => names::PLANNER_MODE_FUSED,
                SegmentMode::Sweep => names::PLANNER_MODE_SWEEP,
            };
            qgear_telemetry::counter_inc(counter);
            qgear_telemetry::histogram_record(
                names::PLANNER_PREDICTED_US,
                seg.predicted.of(seg.mode) * 1e6,
            );
        }
    }

    Ok(ExecutionPlan {
        num_qubits: unitary.num_qubits(),
        blocks: program.blocks,
        structures,
        segments,
        source_gates: unitary_gates.len() as u64,
        exact: !sweep_reorder,
        digest,
    })
}

/// Deterministic counters one executed segment contributes, merged into
/// [`ExecStats`](crate::ExecStats)/checkpoint counters by the callers.
/// The accounting conventions match the fixed paths exactly: bytes per
/// state pass, flops at the dense `2^k`-per-kernel rate (the audited
/// "kernel grid" figure, even when structured dispatch does less work —
/// same convention as the factored sweep path).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SegmentStats {
    pub kernels_launched: u64,
    pub sweeps_executed: u64,
    pub bytes_touched: u128,
    pub flops: u128,
}

/// Execute one planned segment over the state, returning its counter
/// deltas. Used by both the straight-through planned run and
/// [`SegmentedRun`](crate::SegmentedRun) steps, so checkpointed planned
/// execution is the same arithmetic as uninterrupted planned execution.
pub(crate) fn execute_segment<T: Scalar>(
    state: &mut [Complex<T>],
    plan: &ExecutionPlan,
    idx: usize,
) -> SegmentStats {
    let seg = &plan.segments[idx];
    let telemetry_on = qgear_telemetry::is_enabled();
    let start = telemetry_on.then(Instant::now);
    let n_amps = state.len() as u128;
    let amp_bytes = (2 * T::BYTES) as u128;
    let mut st = SegmentStats::default();
    match seg.mode {
        SegmentMode::Unfused => {
            for g in &seg.gates {
                AerCpuBackend::apply_gate(state, g)
                    .expect("fused gates are executable by the per-gate path");
                st.kernels_launched += 1;
                st.bytes_touched += 2 * n_amps * amp_bytes;
                st.flops += n_amps * (1u128 << g.operands().len());
            }
        }
        SegmentMode::Fused => {
            for &ki in &seg.sweep.kernels {
                GpuDevice::apply_block_structured(state, &plan.blocks[ki], &plan.structures[ki]);
                if telemetry_on {
                    qgear_telemetry::counter_inc(&names::planner_kernel(
                        plan.structures[ki].name(),
                    ));
                }
                st.kernels_launched += 1;
                st.bytes_touched += 2 * n_amps * amp_bytes;
                st.flops += n_amps * (1u128 << plan.blocks[ki].qubits.len());
            }
        }
        SegmentMode::Sweep => {
            GpuDevice::apply_sweep(state, &plan.blocks, &seg.sweep, plan.exact);
            st.sweeps_executed = 1;
            st.kernels_launched = seg.sweep.kernels.len() as u64;
            st.bytes_touched = 2 * n_amps * amp_bytes;
            for &ki in &seg.sweep.kernels {
                st.flops += n_amps * (1u128 << plan.blocks[ki].qubits.len());
            }
        }
    }
    if let Some(start) = start {
        let actual = start.elapsed().as_secs_f64();
        qgear_telemetry::histogram_record(names::PLANNER_ACTUAL_US, actual * 1e6);
        let predicted = seg.predicted.of(seg.mode);
        if predicted > 0.0 {
            let ratio_name = match seg.mode {
                SegmentMode::Unfused => names::PLANNER_RATIO_UNFUSED,
                SegmentMode::Fused => names::PLANNER_RATIO_FUSED,
                SegmentMode::Sweep => names::PLANNER_RATIO_SWEEP,
            };
            qgear_telemetry::histogram_record(ratio_name, actual / predicted);
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qft_like(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        for i in (0..n).rev() {
            c.h(i);
            for j in (0..i).rev() {
                c.cr1(std::f64::consts::TAU / f64::powi(2.0, (i - j + 1) as i32), j, i);
            }
        }
        c
    }

    fn random_like(n: u32, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed | 1;
        let mut rnd = move |m: u64| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % m
        };
        for _ in 0..120 {
            let a = rnd(n as u64) as u32;
            let b = (a + 1 + rnd(n as u64 - 1) as u32) % n;
            c.ry(rnd(628) as f64 / 100.0, a);
            c.ry(rnd(628) as f64 / 100.0, b);
            c.cx(a, b);
        }
        c
    }

    #[test]
    fn plan_partitions_every_kernel_and_gate() {
        let c = qft_like(8);
        let p = plan(&c, 5, 12, true, &PlannerCosts::default(), 16).unwrap();
        let scheduled: usize = p.segments.iter().map(|s| s.sweep.kernels.len()).sum();
        assert_eq!(scheduled, p.blocks.len(), "segments partition the kernels");
        assert_eq!(p.source_gates as usize, c.unitary_count());
        assert_eq!(p.structures.len(), p.blocks.len());
    }

    #[test]
    fn dense_random_blocks_plan_to_unfused() {
        // The measured regression case: fully-mixed random blocks are
        // cheaper per gate than any dense kernel path.
        let p = plan(&random_like(12, 7), 5, 12, true, &PlannerCosts::default(), 16).unwrap();
        let (unfused, _, _) = p.mode_histogram();
        assert!(
            unfused * 2 > p.segments.len(),
            "random workload should mostly plan unfused, got {:?}",
            p.mode_histogram()
        );
    }

    #[test]
    fn qft_ladders_plan_to_sweeps() {
        // Multi-kernel μ=1 segments amortize passes: sweeps must win.
        let p = plan(&qft_like(12), 5, 12, true, &PlannerCosts::default(), 16).unwrap();
        let (_, _, sweep) = p.mode_histogram();
        assert!(
            sweep > 0,
            "QFT should use sweep segments, got {:?}",
            p.mode_histogram()
        );
        // And never a dense-fused regression segment: fused is only
        // chosen where it is predicted at least as cheap as unfused.
        for seg in &p.segments {
            assert!(seg.predicted.of(seg.mode) <= seg.predicted.unfused + 1e-12);
        }
    }

    #[test]
    fn force_mode_overrides_the_cost_model() {
        for mode in [SegmentMode::Unfused, SegmentMode::Fused, SegmentMode::Sweep] {
            let costs = PlannerCosts { force_mode: Some(mode), ..PlannerCosts::default() };
            let p = plan(&qft_like(6), 5, 12, true, &costs, 16).unwrap();
            assert!(p.segments.iter().all(|s| s.mode == mode));
        }
    }

    #[test]
    fn digest_tracks_mode_decisions() {
        let base = plan(&qft_like(8), 5, 12, true, &PlannerCosts::default(), 16).unwrap();
        let same = plan(&qft_like(8), 5, 12, true, &PlannerCosts::default(), 16).unwrap();
        assert_eq!(base.digest, same.digest, "planning is deterministic");
        let forced = PlannerCosts {
            force_mode: Some(SegmentMode::Unfused),
            ..PlannerCosts::default()
        };
        let other = plan(&qft_like(8), 5, 12, true, &forced, 16).unwrap();
        assert_ne!(base.digest, other.digest, "different decisions, different digest");
    }

    #[test]
    fn sweep_width_zero_still_schedules() {
        let p = plan(&qft_like(8), 5, 0, true, &PlannerCosts::default(), 16).unwrap();
        assert!(!p.is_empty());
        let scheduled: usize = p.segments.iter().map(|s| s.sweep.kernels.len()).sum();
        assert_eq!(scheduled, p.blocks.len());
    }

    #[test]
    fn calibration_rescales_toward_observed_ratios() {
        qgear_telemetry::reset();
        qgear_telemetry::enable();
        // Model twice too optimistic for fused segments.
        qgear_telemetry::histogram_record(names::PLANNER_RATIO_FUSED, 2.0);
        qgear_telemetry::histogram_record(names::PLANNER_RATIO_FUSED, 2.0);
        let snap = qgear_telemetry::snapshot();
        qgear_telemetry::disable();
        qgear_telemetry::reset();
        let base = PlannerCosts::default();
        let cal = base.calibrated(&snap);
        assert!((cal.madds_per_sec - base.madds_per_sec / 2.0).abs() < 1.0);
        assert!((cal.cmuls_per_sec - base.cmuls_per_sec / 2.0).abs() < 1.0);
        // Unobserved modes untouched.
        assert_eq!(cal.gate_amps_per_sec, base.gate_amps_per_sec);
        assert_eq!(cal.bytes_per_sec, base.bytes_per_sec);
    }
}
