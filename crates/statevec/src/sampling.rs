//! Born-rule shot sampling.
//!
//! The QCrank experiments draw up to 98 M shots (Table 2), so per-shot
//! inverse-CDF sampling is far too slow. We sample the full multinomial
//! with the *conditional binomial* method: walk the outcome bins once,
//! drawing `Binomial(remaining_shots, p_i / remaining_mass)` for each —
//! O(bins) regardless of the shot count. Binomials use exact inversion for
//! small n and a normal approximation for large n (error far below shot
//! noise at these magnitudes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a multinomial sample: `out[i]` counts of outcome `i`, summing to
/// `shots`. Probabilities are normalized defensively; slightly negative
/// inputs (fp round-off) are clamped to zero.
pub fn multinomial(probs: &[f64], shots: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u64; probs.len()];
    let total_mass: f64 = probs.iter().map(|&p| p.max(0.0)).sum();
    if total_mass <= 0.0 || shots == 0 {
        return out;
    }
    let mut remaining_mass = total_mass;
    let mut remaining = shots;
    for (i, &p_raw) in probs.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let p = p_raw.max(0.0);
        if p <= 0.0 {
            continue;
        }
        if p >= remaining_mass {
            // Numerical tail: everything left lands here.
            out[i] = remaining;
            remaining = 0;
            break;
        }
        let cond = (p / remaining_mass).clamp(0.0, 1.0);
        let draw = binomial(&mut rng, remaining, cond);
        out[i] = draw;
        remaining -= draw;
        remaining_mass -= p;
    }
    // Distribute any numerical residue onto the most probable bin.
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN smuggled in by an
    // upstream overflow must not panic the sampler mid-service (NaN orders
    // above every finite value in IEEE total order, and a NaN-argmax bin
    // is as good a residue sink as any).
    if remaining > 0 {
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out[argmax] += remaining;
    }
    out
}

/// A deterministic shot-sampling request: how many shots, from which
/// seed, and (optionally) how to split them into batches.
///
/// Batching is **histogram-invariant by construction**: the full
/// multinomial is always drawn in one pass from the master seed
/// ([`SamplingConfig::histogram`]), and [`SamplingConfig::batched_histograms`]
/// *partitions* that draw deterministically instead of re-sampling per
/// batch. Same `(shots, seed)` ⇒ bit-identical total histogram whether
/// `batch_shots` is 0, 1, or anything else — the invariant the
/// seed-determinism regression suite pins down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Total shots to draw.
    pub shots: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// Shots per batch; `0` means a single batch of `shots`.
    pub batch_shots: u64,
}

impl SamplingConfig {
    /// A single-batch request.
    pub fn single(shots: u64, seed: u64) -> Self {
        SamplingConfig { shots, seed, batch_shots: 0 }
    }

    /// The batch sizes this config splits `shots` into (last batch may
    /// be short). A single `[shots]` batch when `batch_shots == 0`.
    pub fn batch_sizes(&self) -> Vec<u64> {
        if self.batch_shots == 0 || self.batch_shots >= self.shots {
            return vec![self.shots];
        }
        let full = self.shots / self.batch_shots;
        let rem = self.shots % self.batch_shots;
        let mut sizes = vec![self.batch_shots; full as usize];
        if rem > 0 {
            sizes.push(rem);
        }
        sizes
    }

    /// The total outcome histogram — one conditional-binomial multinomial
    /// draw from the master seed, independent of `batch_shots`.
    pub fn histogram(&self, probs: &[f64]) -> Vec<u64> {
        multinomial(probs, self.shots, self.seed)
    }

    /// The per-batch histograms: a deterministic partition of
    /// [`SamplingConfig::histogram`] whose per-batch totals equal
    /// [`SamplingConfig::batch_sizes`] exactly and whose element-wise sum
    /// is the total histogram exactly.
    ///
    /// The partition deals the total draw out in bin order — conceptually
    /// the `shots` outcomes are laid out sorted by bin and cut into
    /// consecutive `batch_shots`-sized runs. Batches are therefore *not*
    /// statistically exchangeable mini-experiments; they are a bandwidth
    /// amortization of one experiment, which is what the batched shot
    /// pipeline needs.
    pub fn batched_histograms(&self, probs: &[f64]) -> Vec<Vec<u64>> {
        let total = self.histogram(probs);
        let sizes = self.batch_sizes();
        let mut out: Vec<Vec<u64>> = sizes.iter().map(|_| vec![0u64; total.len()]).collect();
        let mut batch = 0usize;
        // Remaining capacity of the current batch.
        let mut room = sizes.first().copied().unwrap_or(0);
        for (bin, &count) in total.iter().enumerate() {
            let mut left = count;
            while left > 0 {
                if room == 0 {
                    batch += 1;
                    room = sizes[batch];
                    continue;
                }
                let take = left.min(room);
                out[batch][bin] += take;
                left -= take;
                room -= take;
            }
        }
        out
    }
}

/// Sample `Binomial(n, p)`.
///
/// Strategy: exact Bernoulli summation for tiny `n`; exact geometric-skip
/// inversion when the expected count is small; otherwise a
/// normal(np, np(1-p)) approximation rounded and clamped — standard for
/// the `np(1-p) > ~1000` regime where the approximation error is orders of
/// magnitude below shot noise.
pub fn binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Exploit symmetry to keep p <= 0.5 for the exact paths.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let np = n as f64 * p;
    let var = np * (1.0 - p);
    if var > 1000.0 {
        // Normal approximation with continuity correction.
        let z = standard_normal(rng);
        let x = (np + z * var.sqrt()).round();
        return x.clamp(0.0, n as f64) as u64;
    }
    if n <= 64 {
        // Direct Bernoulli summation.
        let mut k = 0u64;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        return k;
    }
    // Geometric-skip (BG) algorithm: draw the gap to the next success as a
    // Geometric(p) variable; expected iterations = np + 1.
    let log_q = (1.0 - p).ln();
    if log_q == 0.0 {
        // p below ~2^-53: `1 - p` rounded to 1. Success probability over n
        // trials is np < n·2^-53 — negligible next to shot noise.
        return 0;
    }
    let mut k = 0u64;
    let mut trials = 0.0f64;
    loop {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        // Trials consumed until (and including) the next success.
        let gap = (u.ln() / log_q).floor() + 1.0;
        trials += gap;
        if trials > n as f64 {
            return k;
        }
        k += 1;
        if k == n {
            return k;
        }
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinomial_total_is_exact() {
        let probs = vec![0.1, 0.2, 0.3, 0.4];
        for shots in [0u64, 1, 100, 10_000, 1_000_000] {
            let draw = multinomial(&probs, shots, 42);
            assert_eq!(draw.iter().sum::<u64>(), shots, "shots={shots}");
        }
    }

    #[test]
    fn multinomial_tracks_probabilities() {
        let probs = vec![0.5, 0.25, 0.125, 0.125];
        let shots = 1_000_000u64;
        let draw = multinomial(&probs, shots, 7);
        for (i, &p) in probs.iter().enumerate() {
            let observed = draw[i] as f64 / shots as f64;
            // 5-sigma binomial tolerance.
            let sigma = (p * (1.0 - p) / shots as f64).sqrt();
            assert!(
                (observed - p).abs() < 5.0 * sigma + 1e-9,
                "bin {i}: observed {observed}, expected {p}"
            );
        }
    }

    #[test]
    fn multinomial_zero_probability_bins_stay_empty() {
        let probs = vec![0.0, 1.0, 0.0];
        let draw = multinomial(&probs, 5000, 1);
        assert_eq!(draw, vec![0, 5000, 0]);
    }

    #[test]
    fn multinomial_handles_unnormalized_and_negative_noise() {
        // Simulates fp round-off: tiny negative values and sum != 1.
        let probs = vec![0.5000001, -1e-18, 0.4999999, 0.0];
        let draw = multinomial(&probs, 10_000, 3);
        assert_eq!(draw.iter().sum::<u64>(), 10_000);
        assert_eq!(draw[1], 0);
    }

    #[test]
    fn multinomial_deterministic_per_seed() {
        let probs = vec![0.3, 0.7];
        assert_eq!(multinomial(&probs, 1000, 5), multinomial(&probs, 1000, 5));
        assert_ne!(multinomial(&probs, 100_000, 5), multinomial(&probs, 100_000, 6));
    }

    #[test]
    fn multinomial_survives_nan_probability() {
        // Regression for the NaN-unsafe `partial_cmp(..).unwrap()` in the
        // residue-argmax: a NaN bin must not panic, and the draw still
        // accounts for every shot.
        let probs = vec![0.5, f64::NAN, 0.5];
        let draw = multinomial(&probs, 1000, 11);
        assert_eq!(draw.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn sampling_config_batches_partition_the_master_draw() {
        let probs = vec![0.4, 0.1, 0.25, 0.25];
        for batch_shots in [0u64, 1, 7, 100, 999, 1000, 5000] {
            let cfg = SamplingConfig { shots: 1000, seed: 77, batch_shots };
            let total = cfg.histogram(&probs);
            assert_eq!(total, SamplingConfig::single(1000, 77).histogram(&probs),
                "histogram must not depend on batching (batch_shots={batch_shots})");
            let batches = cfg.batched_histograms(&probs);
            let sizes = cfg.batch_sizes();
            assert_eq!(batches.len(), sizes.len());
            let mut summed = vec![0u64; probs.len()];
            for (hist, &size) in batches.iter().zip(&sizes) {
                assert_eq!(hist.iter().sum::<u64>(), size, "batch total == batch size");
                for (s, &h) in summed.iter_mut().zip(hist) {
                    *s += h;
                }
            }
            assert_eq!(summed, total, "batches partition the total exactly");
        }
    }

    #[test]
    fn sampling_config_batch_sizes() {
        assert_eq!(SamplingConfig::single(10, 0).batch_sizes(), vec![10]);
        assert_eq!(
            SamplingConfig { shots: 10, seed: 0, batch_shots: 4 }.batch_sizes(),
            vec![4, 4, 2]
        );
        assert_eq!(
            SamplingConfig { shots: 8, seed: 0, batch_shots: 4 }.batch_sizes(),
            vec![4, 4]
        );
        assert_eq!(SamplingConfig { shots: 3, seed: 0, batch_shots: 9 }.batch_sizes(), vec![3]);
        assert_eq!(SamplingConfig::single(0, 1).batch_sizes(), vec![0]);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn binomial_mean_small_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let (n, p) = (40u64, 0.3);
        let mean: f64 =
            (0..trials).map(|_| binomial(&mut rng, n, p) as f64).sum::<f64>() / trials as f64;
        assert!((mean - n as f64 * p).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_mean_large_n_normal_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, p) = (10_000_000u64, 0.25);
        let trials = 200;
        let mean: f64 =
            (0..trials).map(|_| binomial(&mut rng, n, p) as f64).sum::<f64>() / trials as f64;
        let expect = n as f64 * p;
        let sigma = (n as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (mean - expect).abs() < 5.0 * sigma / (trials as f64).sqrt(),
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn binomial_subnormal_p_returns_zero() {
        // Regression: p so small that `1 - p` rounds to 1.0 used to send
        // the geometric-skip loop to n (ln(1-p) underflowed to 0).
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(binomial(&mut rng, 192_000, 5e-35), 0);
        assert_eq!(binomial(&mut rng, u64::MAX / 2, 1e-300), 0);
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2000 {
            let k = binomial(&mut rng, 100, 0.47);
            assert!(k <= 100);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
