//! Stochastic Pauli-trajectory noise.
//!
//! Instead of doubling memory with a density matrix, noisy execution is
//! approximated by averaging *trajectories*: each trajectory runs the
//! ideal circuit with Pauli errors inserted after each gate on its
//! operand qubits, drawn from the channel's Pauli probabilities. The mean
//! over trajectories converges to the Pauli-twirled channel — exact for
//! bit-flip, phase-flip and depolarizing noise, and the standard
//! Pauli-twirl approximation (PTA) for amplitude damping.
//!
//! Everything is deterministic by construction:
//!
//! * the requested shots are dealt across trajectories with the same
//!   batch-invariant [`sampling::multinomial`] the engines sample with;
//! * each trajectory derives its error-draw and sampling seeds from the
//!   master seed via SplitMix64, so trajectory `k` is the same circuit
//!   no matter how many threads execute the fan;
//! * histograms merge by commutative addition, so thread scheduling
//!   cannot change the result.
//!
//! [`TrajectoryBackend`] wraps **any** inner [`Simulator`] — dense
//! engines for general circuits, the stabilizer engine for Clifford
//! circuits (Pauli insertions are Clifford, so a Clifford circuit stays
//! stabilizer-simulable under this noise model).

use crate::backend::{Counts, ExecStats, RunOptions, RunOutput, ShotBatchOutput, SimError, Simulator};
use crate::sampling::{self, SamplingConfig};
use qgear_ir::{Circuit, Gate, GateKind};
use qgear_num::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One single-qubit noise channel, applied after each gate on each of the
/// gate's operand qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseChannel {
    /// X error with probability `p`.
    BitFlip {
        /// Error probability per gate-operand.
        p: f64,
    },
    /// Z error with probability `p`.
    PhaseFlip {
        /// Error probability per gate-operand.
        p: f64,
    },
    /// X, Y or Z each with probability `p/3`.
    Depolarizing {
        /// Total error probability per gate-operand.
        p: f64,
    },
    /// Amplitude damping of strength `gamma`, Pauli-twirl approximated:
    /// `p_x = p_y = γ/4`, `p_z = 1/2 − γ/4 − √(1−γ)/2`.
    AmplitudeDamping {
        /// Damping strength γ ∈ [0, 1].
        gamma: f64,
    },
}

impl NoiseChannel {
    /// The channel's `(p_x, p_y, p_z)` Pauli error probabilities.
    pub fn pauli_probs(&self) -> (f64, f64, f64) {
        match *self {
            NoiseChannel::BitFlip { p } => (p, 0.0, 0.0),
            NoiseChannel::PhaseFlip { p } => (0.0, 0.0, p),
            NoiseChannel::Depolarizing { p } => (p / 3.0, p / 3.0, p / 3.0),
            NoiseChannel::AmplitudeDamping { gamma } => {
                let px = gamma / 4.0;
                let pz = 0.5 - gamma / 4.0 - (1.0 - gamma).sqrt() / 2.0;
                (px, px, pz.max(0.0))
            }
        }
    }

    /// Total error probability (complement of the identity weight).
    pub fn error_probability(&self) -> f64 {
        let (px, py, pz) = self.pauli_probs();
        px + py + pz
    }
}

/// A noise model: channels applied in order after every gate, once per
/// operand qubit. Barriers and measurements are noiseless.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseModel {
    /// The channels, applied in order.
    pub channels: Vec<NoiseChannel>,
}

impl NoiseModel {
    /// A model with a single channel.
    pub fn single(channel: NoiseChannel) -> Self {
        NoiseModel { channels: vec![channel] }
    }

    /// True when no channel can ever insert an error.
    pub fn is_trivial(&self) -> bool {
        self.channels.iter().all(|c| c.error_probability() <= 0.0)
    }

    /// Draw the Pauli errors for one gate application: for each operand
    /// qubit and channel, at most one Pauli insertion.
    fn sample_errors(&self, gate: &Gate, rng: &mut StdRng, out: &mut Vec<Gate>) {
        if !gate.is_unitary_op() {
            return;
        }
        for &q in gate.operands() {
            for channel in &self.channels {
                let (px, py, pz) = channel.pauli_probs();
                let u: f64 = rng.gen();
                if u < px {
                    out.push(Gate::q1(GateKind::X, q));
                } else if u < px + py {
                    out.push(Gate::q1(GateKind::Y, q));
                } else if u < px + py + pz {
                    out.push(Gate::q1(GateKind::Z, q));
                }
            }
        }
    }

    /// Build trajectory `k`'s noisy circuit: the ideal gates with Pauli
    /// errors inserted after each, drawn from `error_seed`.
    pub fn noisy_circuit(&self, circuit: &Circuit, error_seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(error_seed);
        let mut out =
            Circuit::with_capacity(circuit.num_qubits(), circuit.name.clone(), circuit.gates().len());
        let mut errors = Vec::new();
        for g in circuit.gates() {
            out.push(*g).expect("source gate is valid");
            errors.clear();
            self.sample_errors(g, &mut rng, &mut errors);
            for e in &errors {
                out.push(*e).expect("noise gate targets a valid qubit");
            }
        }
        out
    }
}

/// SplitMix64 seed derivation (same scheme as the stabilizer engine's
/// per-shot seeds): deterministic, index-decorrelated.
fn derive_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separators so error draws, sampling seeds and the shot deal
/// never reuse RNG streams.
const DEAL_DOMAIN: u64 = 0xDEA1;
const ERROR_DOMAIN: u64 = 0xE440;
const SAMPLE_DOMAIN: u64 = 0x5A4D;

/// Noise-trajectory wrapper: fans `trajectories` noisy variants of the
/// circuit over an inner engine and merges their histograms.
#[derive(Debug, Clone)]
pub struct TrajectoryBackend<S> {
    /// The engine each trajectory runs on.
    pub inner: S,
    /// The noise model.
    pub model: NoiseModel,
    /// Number of trajectories to fan.
    pub trajectories: u32,
    /// Worker threads for the fan (1 = sequential). The result is
    /// identical for any value — the fan is deterministic per trajectory
    /// and merged commutatively.
    pub threads: usize,
}

impl<S> TrajectoryBackend<S> {
    /// Wrap `inner` with `model` over `trajectories` trajectories.
    pub fn new(inner: S, model: NoiseModel, trajectories: u32) -> Self {
        TrajectoryBackend { inner, model, trajectories, threads: 4 }
    }
}

/// One trajectory's merged outcome: its histogram plus engine counters.
type TrajectoryResult = Result<(Option<Counts>, ExecStats), SimError>;

/// Merge `src` into `dst` (commutative histogram addition).
fn merge_counts(dst: &mut Option<Counts>, src: Counts) {
    match dst {
        None => *dst = Some(src),
        Some(d) => {
            debug_assert_eq!(d.qubits, src.qubits);
            for (k, c) in src.map {
                *d.map.entry(k).or_insert(0) += c;
            }
        }
    }
}

impl<S> TrajectoryBackend<S> {
    /// Run the trajectory fan for one `(shots, seed)` request and return
    /// the merged histogram plus merged stats.
    fn run_fan<T: Scalar>(
        &self,
        circuit: &Circuit,
        opts: &RunOptions,
        cfg: &SamplingConfig,
    ) -> Result<(Option<Counts>, ExecStats), SimError>
    where
        S: Simulator<T> + Sync,
    {
        let k = self.trajectories.max(1) as usize;
        // Deal the shots across trajectories with the batch-invariant
        // multinomial — same machinery, same determinism contract.
        let uniform = vec![1.0 / k as f64; k];
        let deal = sampling::multinomial(&uniform, cfg.shots, derive_seed(cfg.seed, DEAL_DOMAIN));
        if qgear_telemetry::is_enabled() {
            qgear_telemetry::counter_add(
                qgear_telemetry::names::TRAJECTORIES_REQUESTED,
                k as u128,
            );
        }
        let jobs: Vec<(usize, u64)> = deal
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, shots)| shots > 0)
            .collect();
        let run_one = |&(idx, shots): &(usize, u64)| -> TrajectoryResult {
            let error_seed = derive_seed(cfg.seed ^ ERROR_DOMAIN, idx as u64);
            let sample_seed = derive_seed(cfg.seed ^ SAMPLE_DOMAIN, idx as u64);
            let noisy = self.model.noisy_circuit(circuit, error_seed);
            let traj_opts = RunOptions {
                shots,
                seed: sample_seed,
                shot_batch: 0,
                keep_state: false,
                ..opts.clone()
            };
            let out = self.inner.run(&noisy, &traj_opts)?;
            Ok((out.counts, out.stats))
        };
        let threads = self.threads.max(1).min(jobs.len().max(1));
        let results: Vec<TrajectoryResult> = if threads <= 1 {
            jobs.iter().map(run_one).collect()
        } else {
            // Deterministic fan: chunk the job list round-robin-free —
            // contiguous slices per thread, results stitched back in
            // index order so the merge below is reproducible regardless
            // of scheduling. (The merge is commutative anyway; ordering
            // just keeps error reporting stable.)
            let chunk = jobs.len().div_ceil(threads);
            let mut results: Vec<Option<TrajectoryResult>> =
                (0..jobs.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (slot, job_chunk) in results.chunks_mut(chunk).zip(jobs.chunks(chunk)) {
                    scope.spawn(move || {
                        for (s, j) in slot.iter_mut().zip(job_chunk) {
                            *s = Some(run_one(j));
                        }
                    });
                }
            });
            results.into_iter().map(|r| r.expect("every slot filled")).collect()
        };
        let mut merged: Option<Counts> = None;
        let mut stats = ExecStats::default();
        let mut executed = 0u128;
        for r in results {
            let (counts, s) = r?;
            stats.merge(&s);
            executed += 1;
            if let Some(c) = counts {
                merge_counts(&mut merged, c);
            }
        }
        if qgear_telemetry::is_enabled() {
            qgear_telemetry::counter_add(qgear_telemetry::names::TRAJECTORIES_RUN, executed);
        }
        Ok((merged, stats))
    }
}

impl<T: Scalar, S: Simulator<T> + Sync> Simulator<T> for TrajectoryBackend<S> {
    fn name(&self) -> &'static str {
        "trajectory"
    }

    /// Run the noisy circuit: trajectories fanned, histograms merged.
    /// The output never carries a state — a noisy run is a mixture, and
    /// no single state vector represents it.
    fn run(&self, circuit: &Circuit, opts: &RunOptions) -> Result<RunOutput<T>, SimError> {
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::TRAJECTORY_BATCH);
        let start = Instant::now();
        let cfg = SamplingConfig {
            shots: opts.shots,
            seed: opts.seed,
            batch_shots: opts.shot_batch,
        };
        let (counts, mut stats) = self.run_fan(circuit, opts, &cfg)?;
        stats.elapsed = start.elapsed();
        Ok(RunOutput { state: None, counts, stats })
    }

    /// Serve several sampling requests. Trajectory noise cannot share one
    /// evolution across requests (each request re-deals its shots), so
    /// this is a loop over [`Simulator::run`] — each request remains
    /// bit-identical to its standalone run.
    fn run_shot_batch(
        &self,
        circuit: &Circuit,
        opts: &RunOptions,
        requests: &[SamplingConfig],
    ) -> Result<ShotBatchOutput<T>, SimError> {
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::TRAJECTORY_BATCH);
        let start = Instant::now();
        let mut stats = ExecStats::default();
        let mut counts = Vec::with_capacity(requests.len());
        for cfg in requests {
            if cfg.shots == 0 {
                counts.push(None);
                continue;
            }
            let (c, s) = self.run_fan(circuit, opts, cfg)?;
            stats.merge(&s);
            counts.push(c);
        }
        stats.elapsed = start.elapsed();
        Ok(ShotBatchOutput { state: None, counts, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aer::AerCpuBackend;

    fn flip_circuit() -> Circuit {
        let mut c = Circuit::new(1);
        c.x(0).measure(0);
        c
    }

    #[test]
    fn noiseless_model_reproduces_ideal() {
        let model = NoiseModel::single(NoiseChannel::BitFlip { p: 0.0 });
        let backend = TrajectoryBackend::new(AerCpuBackend, model, 8);
        let opts = RunOptions { shots: 1000, seed: 5, ..Default::default() };
        let out: RunOutput<f64> = backend.run(&flip_circuit(), &opts).unwrap();
        let counts = out.counts.unwrap();
        assert_eq!(counts.total(), 1000);
        assert_eq!(counts.get(1), 1000, "x|0> must always read 1 without noise");
        assert!(out.state.is_none());
    }

    #[test]
    fn bit_flip_statistics_match_channel() {
        let p = 0.25;
        let model = NoiseModel::single(NoiseChannel::BitFlip { p });
        let backend = TrajectoryBackend::new(AerCpuBackend, model, 4000);
        let opts = RunOptions { shots: 4000, seed: 9, ..Default::default() };
        let out: RunOutput<f64> = backend.run(&flip_circuit(), &opts).unwrap();
        let counts = out.counts.unwrap();
        let observed = counts.probability(0);
        assert!(
            (observed - p).abs() < 0.02,
            "bit-flip rate {observed} vs channel {p}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_thread_count() {
        let model = NoiseModel::single(NoiseChannel::Depolarizing { p: 0.1 });
        let opts = RunOptions { shots: 2000, seed: 77, ..Default::default() };
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let mut backend = TrajectoryBackend::new(AerCpuBackend, model.clone(), 64);
            backend.threads = threads;
            let out: RunOutput<f64> = backend.run(&flip_circuit(), &opts).unwrap();
            let map = out.counts.unwrap().map;
            match &reference {
                None => reference = Some(map),
                Some(r) => assert_eq!(&map, r, "threads={threads} changed the histogram"),
            }
        }
    }

    #[test]
    fn amplitude_damping_pta_probabilities() {
        let gamma = 0.2;
        let (px, py, pz) = NoiseChannel::AmplitudeDamping { gamma }.pauli_probs();
        assert!((px - 0.05).abs() < 1e-12);
        assert!((py - 0.05).abs() < 1e-12);
        let expect_z = 0.5 - 0.05 - (0.8f64).sqrt() / 2.0;
        assert!((pz - expect_z).abs() < 1e-12);
    }

    #[test]
    fn noisy_circuit_is_deterministic_per_seed() {
        let model = NoiseModel::single(NoiseChannel::Depolarizing { p: 0.5 });
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure_all();
        let a = model.noisy_circuit(&c, 123);
        let b = model.noisy_circuit(&c, 123);
        assert_eq!(a.gates(), b.gates());
        let other = model.noisy_circuit(&c, 124);
        assert_ne!(a.gates(), other.gates(), "different seeds draw different errors");
        // Noise never lands after measurements.
        let idx_measure = a.gates().iter().position(|g| g.kind == GateKind::Measure).unwrap();
        assert!(a.gates()[idx_measure..].iter().all(|g| g.kind == GateKind::Measure));
    }

    #[test]
    fn zero_shot_requests_short_circuit() {
        let model = NoiseModel::single(NoiseChannel::BitFlip { p: 0.1 });
        let backend = TrajectoryBackend::new(AerCpuBackend, model, 16);
        let reqs = [SamplingConfig::single(0, 1), SamplingConfig::single(100, 2)];
        let out: ShotBatchOutput<f64> = backend
            .run_shot_batch(&flip_circuit(), &RunOptions::default(), &reqs)
            .unwrap();
        assert!(out.counts[0].is_none());
        assert_eq!(out.counts[1].as_ref().unwrap().total(), 100);
    }
}
