//! CHP-style stabilizer tableau (Aaronson & Gottesman, `quant-ph/0406196`).
//!
//! The state of an `n`-qubit stabilizer circuit is tracked as `2n + 1`
//! Pauli rows: `n` destabilizers, `n` stabilizers, and one scratch row
//! used by the deterministic-measurement path. Each row stores its X and
//! Z bit-vectors packed 64 qubits per word plus a sign bit, so a gate
//! update touches `O(n/64)` words per row and a full column update is
//! `O(n²/64)` — the representation that makes 100+ qubit Clifford
//! circuits a few kilobytes instead of `2^100` amplitudes.
//!
//! Phase bookkeeping in the row-product step (`rowsum`) uses the
//! word-parallel form
//! of the `g(x₁,z₁,x₂,z₂)` exponent table: the `+1` and `−1` patterns are
//! matched with bitwise masks and popcounts instead of a per-qubit loop.

/// Outcome of one single-qubit measurement on the tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// The measured bit.
    pub value: bool,
    /// True when the outcome was forced by the stabilizer group (the
    /// qubit was in a Z eigenstate); false when it was a fair coin.
    pub deterministic: bool,
}

/// Bit-packed stabilizer tableau over `n` qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// Words per row: `ceil(n / 64)`.
    words: usize,
    /// X bits, row-major: row `i` occupies `x[i*words .. (i+1)*words]`.
    x: Vec<u64>,
    /// Z bits, same layout.
    z: Vec<u64>,
    /// Sign bits, one per row (`true` = −1).
    r: Vec<bool>,
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizer `i` is `Xᵢ`, stabilizer `i` is
    /// `Zᵢ`, all signs `+1`.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            words,
            x: vec![0; rows * words],
            z: vec![0; rows * words],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i * words + i / 64] |= 1u64 << (i % 64);
            t.z[(n + i) * words + i / 64] |= 1u64 << (i % 64);
        }
        t
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Bytes this tableau occupies (the feasibility-gate currency).
    pub fn memory_bytes(n: u32) -> u128 {
        let words = (n as u128).div_ceil(64).max(1);
        let rows = 2 * (n as u128) + 1;
        // x + z words at 8 bytes each, plus one sign byte per row.
        rows * words * 16 + rows
    }

    #[inline]
    fn xw(&self, row: usize, word: usize) -> u64 {
        self.x[row * self.words + word]
    }

    #[inline]
    fn zw(&self, row: usize, word: usize) -> u64 {
        self.z[row * self.words + word]
    }

    #[inline]
    fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x[row * self.words + q / 64] >> (q % 64) & 1 == 1
    }

    /// Hadamard on `q`: swap X↔Z on the column, flip sign where both set.
    pub fn h(&mut self, q: u32) {
        let (w, m) = (q as usize / 64, 1u64 << (q as usize % 64));
        for row in 0..self.r.len() {
            let xi = self.x[row * self.words + w] & m;
            let zi = self.z[row * self.words + w] & m;
            self.r[row] ^= xi != 0 && zi != 0;
            self.x[row * self.words + w] ^= xi ^ zi;
            self.z[row * self.words + w] ^= xi ^ zi;
        }
    }

    /// Phase gate S on `q`: `Z ^= X` on the column, flip sign where both.
    pub fn s(&mut self, q: u32) {
        let (w, m) = (q as usize / 64, 1u64 << (q as usize % 64));
        for row in 0..self.r.len() {
            let xi = self.x[row * self.words + w] & m;
            let zi = self.z[row * self.words + w] & m;
            self.r[row] ^= xi != 0 && zi != 0;
            self.z[row * self.words + w] ^= xi;
        }
    }

    /// S† on `q` — `S³`, folded into one pass: sign flips where `x ∧ ¬z`.
    pub fn sdg(&mut self, q: u32) {
        let (w, m) = (q as usize / 64, 1u64 << (q as usize % 64));
        for row in 0..self.r.len() {
            let xi = self.x[row * self.words + w] & m;
            let zi = self.z[row * self.words + w] & m;
            self.r[row] ^= xi != 0 && zi == 0;
            self.z[row * self.words + w] ^= xi;
        }
    }

    /// Pauli-X on `q`: flips the sign of rows carrying Z on `q`.
    pub fn x_gate(&mut self, q: u32) {
        let (w, m) = (q as usize / 64, 1u64 << (q as usize % 64));
        for row in 0..self.r.len() {
            self.r[row] ^= self.z[row * self.words + w] & m != 0;
        }
    }

    /// Pauli-Z on `q`: flips the sign of rows carrying X on `q`.
    pub fn z_gate(&mut self, q: u32) {
        let (w, m) = (q as usize / 64, 1u64 << (q as usize % 64));
        for row in 0..self.r.len() {
            self.r[row] ^= self.x[row * self.words + w] & m != 0;
        }
    }

    /// Pauli-Y on `q`: flips the sign of rows anticommuting with Y there
    /// (X-only or Z-only on `q`).
    pub fn y_gate(&mut self, q: u32) {
        let (w, m) = (q as usize / 64, 1u64 << (q as usize % 64));
        for row in 0..self.r.len() {
            let xi = self.x[row * self.words + w] & m != 0;
            let zi = self.z[row * self.words + w] & m != 0;
            self.r[row] ^= xi ^ zi;
        }
    }

    /// CNOT with control `a`, target `b`.
    pub fn cx(&mut self, a: u32, b: u32) {
        assert_ne!(a, b, "cx needs distinct qubits");
        let (wa, ma) = (a as usize / 64, 1u64 << (a as usize % 64));
        let (wb, mb) = (b as usize / 64, 1u64 << (b as usize % 64));
        for row in 0..self.r.len() {
            let xa = self.x[row * self.words + wa] & ma != 0;
            let za = self.z[row * self.words + wa] & ma != 0;
            let xb = self.x[row * self.words + wb] & mb != 0;
            let zb = self.z[row * self.words + wb] & mb != 0;
            self.r[row] ^= xa && zb && (xb == za);
            if xa {
                self.x[row * self.words + wb] ^= mb;
            }
            if zb {
                self.z[row * self.words + wa] ^= ma;
            }
        }
    }

    /// Controlled-Z between `a` and `b` (`H(b)·CX(a,b)·H(b)`).
    pub fn cz(&mut self, a: u32, b: u32) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Swap `a` and `b` (three CNOTs).
    pub fn swap(&mut self, a: u32, b: u32) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Multiply row `h` by row `i` (`Pₕ ← Pᵢ·Pₕ`), tracking the sign via
    /// the word-parallel `g` exponent sum. Stabilizer and scratch rows
    /// only ever receive products of *commuting* Paulis, so their
    /// accumulated exponent is 0 or 2 (mod 4) — asserted in debug
    /// builds. A destabilizer target may absorb an anticommuting factor
    /// (destabilizer `p−n` times stabilizer `p` in the measurement
    /// collapse), picking up a ±i phase; that is fine because
    /// destabilizer signs are never read — only their X/Z bits feed the
    /// anticommutation bookkeeping.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut plus = 0u32;
        let mut minus = 0u32;
        for w in 0..self.words {
            let x1 = self.xw(i, w);
            let z1 = self.zw(i, w);
            let x2 = self.xw(h, w);
            let z2 = self.zw(h, w);
            // g = +1: Y·Z-pattern, X·XZ-pattern, Z·X-pattern.
            let p = (x1 & z1 & z2 & !x2) | (x1 & !z1 & z2 & x2) | (!x1 & z1 & x2 & !z2);
            // g = −1: mirrored patterns.
            let m = (x1 & z1 & x2 & !z2) | (x1 & !z1 & z2 & !x2) | (!x1 & z1 & x2 & z2);
            plus += p.count_ones();
            minus += m.count_ones();
        }
        let mut e = (plus as i64 - minus as i64) % 4;
        e += 2 * (self.r[h] as i64) + 2 * (self.r[i] as i64);
        e = e.rem_euclid(4);
        debug_assert!(
            h < self.n || e == 0 || e == 2,
            "rowsum onto sign-bearing row {h} produced a non-Hermitian phase {e}"
        );
        self.r[h] = e == 2;
        for w in 0..self.words {
            self.x[h * self.words + w] ^= self.xw(i, w);
            self.z[h * self.words + w] ^= self.zw(i, w);
        }
    }

    /// Measure qubit `q` in the computational basis. When the outcome is
    /// random (some stabilizer anticommutes with `Z_q`), `choose` is
    /// called once to pick the bit — pass a fair-coin closure for
    /// sampling or a constant for marginal enumeration. The tableau
    /// collapses onto the chosen outcome either way.
    pub fn measure(&mut self, q: u32, choose: impl FnOnce() -> bool) -> Measurement {
        let n = self.n;
        let q = q as usize;
        assert!(q < n, "measured qubit {q} out of range {n}");
        // A stabilizer row with X on q anticommutes with Z_q → random.
        let p = (n..2 * n).find(|&row| self.x_bit(row, q));
        if let Some(p) = p {
            let value = choose();
            // Every other row carrying X on q gets multiplied by row p so
            // the group stays consistent after the collapse.
            for row in 0..2 * n {
                if row != p && self.x_bit(row, q) {
                    self.rowsum(row, p);
                }
            }
            // Row p's old content becomes destabilizer p−n; row p itself
            // becomes ±Z_q with the sign carrying the outcome.
            let (dst, src) = (p - n, p);
            for w in 0..self.words {
                self.x[dst * self.words + w] = self.xw(src, w);
                self.z[dst * self.words + w] = self.zw(src, w);
                self.x[src * self.words + w] = 0;
                self.z[src * self.words + w] = 0;
            }
            self.r[dst] = self.r[src];
            self.z[src * self.words + q / 64] |= 1u64 << (q % 64);
            self.r[src] = value;
            Measurement { value, deterministic: false }
        } else {
            // Deterministic: accumulate ±Z_q in the scratch row from the
            // stabilizers flagged by destabilizers carrying X on q.
            let scratch = 2 * n;
            for w in 0..self.words {
                self.x[scratch * self.words + w] = 0;
                self.z[scratch * self.words + w] = 0;
            }
            self.r[scratch] = false;
            for i in 0..n {
                if self.x_bit(i, q) {
                    self.rowsum(scratch, i + n);
                }
            }
            Measurement { value: self.r[scratch], deterministic: true }
        }
    }

    /// True when the measurement of `q` would be deterministic (no
    /// stabilizer anticommutes with `Z_q`). Non-destructive.
    pub fn is_deterministic(&self, q: u32) -> bool {
        let q = q as usize;
        !(self.n..2 * self.n).any(|row| self.x_bit(row, q))
    }

    /// Symplectic product parity of rows `a` and `b`: `false` = commute.
    fn anticommutes(&self, a: usize, b: usize) -> bool {
        let mut acc = 0u32;
        for w in 0..self.words {
            acc ^= (self.xw(a, w) & self.zw(b, w)).count_ones() & 1;
            acc ^= (self.zw(a, w) & self.xw(b, w)).count_ones() & 1;
        }
        acc & 1 == 1
    }

    /// Structural invariant of a valid tableau, for property tests:
    /// destabilizer `i` anticommutes with stabilizer `i` and commutes
    /// with every other row; stabilizers commute pairwise. Returns a
    /// description of the first violation, `None` when valid.
    pub fn check_invariants(&self) -> Option<String> {
        let n = self.n;
        for i in 0..n {
            if !self.anticommutes(i, n + i) {
                return Some(format!("destabilizer {i} commutes with stabilizer {i}"));
            }
            for j in 0..n {
                if j != i && self.anticommutes(i, n + j) {
                    return Some(format!("destabilizer {i} anticommutes with stabilizer {j}"));
                }
                if j > i {
                    if self.anticommutes(i, j) {
                        return Some(format!("destabilizers {i},{j} anticommute"));
                    }
                    if self.anticommutes(n + i, n + j) {
                        return Some(format!("stabilizers {i},{j} anticommute"));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin_false() -> bool {
        false
    }

    #[test]
    fn fresh_tableau_is_all_zeros_state() {
        let mut t = Tableau::new(3);
        assert_eq!(t.check_invariants(), None);
        for q in 0..3 {
            let m = t.measure(q, coin_false);
            assert!(m.deterministic);
            assert!(!m.value);
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(2);
        t.x_gate(0);
        let m0 = t.measure(0, coin_false);
        assert!(m0.deterministic && m0.value);
        let m1 = t.measure(1, coin_false);
        assert!(m1.deterministic && !m1.value);
    }

    #[test]
    fn hadamard_makes_random_then_collapses() {
        for forced in [false, true] {
            let mut t = Tableau::new(1);
            t.h(0);
            assert!(!t.is_deterministic(0));
            let m = t.measure(0, || forced);
            assert!(!m.deterministic);
            assert_eq!(m.value, forced);
            // Post-collapse the outcome repeats deterministically.
            let again = t.measure(0, coin_false);
            assert!(again.deterministic);
            assert_eq!(again.value, forced);
        }
    }

    #[test]
    fn ghz_correlations() {
        for forced in [false, true] {
            let mut t = Tableau::new(3);
            t.h(0);
            t.cx(0, 1);
            t.cx(1, 2);
            assert_eq!(t.check_invariants(), None);
            let first = t.measure(0, || forced);
            assert!(!first.deterministic);
            for q in 1..3 {
                let m = t.measure(q, coin_false);
                assert!(m.deterministic, "GHZ partner must collapse");
                assert_eq!(m.value, forced, "GHZ outcomes correlate");
            }
        }
    }

    #[test]
    fn bell_phase_via_y() {
        // S·H|0⟩ measured in X-ish bases exercises sign tracking: check
        // H S S H |0⟩ = H Z H |0⟩ = X|0⟩ = |1⟩.
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        let m = t.measure(0, coin_false);
        assert!(m.deterministic && m.value);
    }

    #[test]
    fn sdg_is_s_inverse() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        let before = t.clone();
        t.s(1);
        t.sdg(1);
        assert_eq!(t, before);
        t.sdg(0);
        t.s(0);
        assert_eq!(t, before);
    }

    #[test]
    fn cz_symmetric_and_self_inverse() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.h(1);
        let before = t.clone();
        t.cz(0, 1);
        t.cz(1, 0);
        assert_eq!(t, before, "cz is symmetric and self-inverse");
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(2);
        t.x_gate(0);
        t.swap(0, 1);
        assert!(!t.measure(0, coin_false).value);
        assert!(t.measure(1, coin_false).value);
    }

    #[test]
    fn y_equals_ixz_signwise() {
        // Y and X·Z differ only by global phase, invisible to the tableau.
        let mut a = Tableau::new(2);
        a.h(0);
        a.cx(0, 1);
        let mut b = a.clone();
        a.y_gate(1);
        b.x_gate(1);
        b.z_gate(1);
        assert_eq!(a, b);
    }

    #[test]
    fn memory_bytes_scales_quadratically() {
        let small = Tableau::memory_bytes(16);
        let big = Tableau::memory_bytes(128);
        assert!(big > small);
        // 128 qubits: 257 rows × 2 words × 16 B ≈ 8 KB — nothing like 2^128.
        assert!(big < 32 * 1024);
    }
}
