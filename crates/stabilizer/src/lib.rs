//! CHP-style stabilizer simulation for Q-GEAR.
//!
//! Dense state-vector engines cap out near 30 qubits on this VM
//! (Fig. 4a's memory wall); the Gottesman–Knill theorem says Clifford
//! circuits never needed the amplitudes in the first place. This crate
//! provides:
//!
//! * [`Tableau`] — the bit-packed destabilizer/stabilizer tableau with
//!   `H`/`S`/`CNOT`/`CZ`/Pauli/measure updates and the structural
//!   invariant checker the property-test suite leans on;
//! * [`StabilizerBackend`] — that tableau behind the exact same
//!   [`Simulator`](qgear_statevec::Simulator) contract every dense engine
//!   implements, so `qgear-serve` can route Clifford jobs here at
//!   admission time (see `docs/BACKENDS.md`) and 100+ qubit GHZ jobs
//!   complete in microseconds instead of being rejected as infeasible.
//!
//! ```
//! use qgear_ir::Circuit;
//! use qgear_stabilizer::StabilizerBackend;
//! use qgear_statevec::{RunOptions, RunOutput, Simulator};
//!
//! let mut ghz = Circuit::new(100);
//! ghz.h(0);
//! for q in 1..100 {
//!     ghz.cx(q - 1, q);
//! }
//! for q in 0..8 {
//!     ghz.measure(q);
//! }
//! let opts = RunOptions { shots: 1000, ..Default::default() };
//! let out: RunOutput<f64> = StabilizerBackend::default().run(&ghz, &opts).unwrap();
//! let counts = out.counts.unwrap();
//! assert_eq!(counts.total(), 1000);
//! // GHZ: only all-zeros and all-ones survive.
//! assert!(counts.sorted().iter().all(|&(k, _)| k == 0 || k == 0xFF));
//! ```

pub mod engine;
pub mod tableau;

pub use engine::{derive_seed, StabilizerBackend, MAX_MEASURED_QUBITS};
pub use tableau::{Measurement, Tableau};
