//! The stabilizer engine behind the shared [`Simulator`] contract.
//!
//! Clifford circuits are lowered gate-by-gate onto tableau updates:
//! fixed Clifford kinds map directly, rotation gates at multiples of π/2
//! map to powers of S conjugated into the right axis (`rx = H·rz·H`,
//! `ry ≅ S·H·rz·H·S†` up to global phase, which tableaus ignore), and the
//! controlled phase at multiples of π maps to powers of CZ. Anything
//! non-Clifford is rejected with [`SimError::UnsupportedGate`] — the
//! admission layer in `qgear-serve` is expected to have classified the
//! circuit first via `qgear_ir::clifford`.
//!
//! Sampling keeps the workspace's bit-exact contracts:
//! * narrow measured sets (≤ [`StabilizerBackend::exact_marginal_cap`])
//!   enumerate the exact marginal by branching the tableau on each random
//!   measurement (2^r leaves for r random bits, pruned to the reachable
//!   outcomes) and then draw through the **shared**
//!   [`qgear_statevec::sample_from_probs`] path, so histograms are
//!   batch-invariant and seed-deterministic exactly like dense engines;
//! * wide measured sets (up to 64 qubits) fall back to per-shot
//!   collapse with a per-shot RNG seeded by SplitMix64 from the request
//!   seed — deterministic, batch-order-independent, but a different
//!   sampling law than the marginal path (documented in
//!   `docs/BACKENDS.md`).

use crate::tableau::Tableau;
use qgear_ir::clifford::ANGLE_EPS;
use qgear_ir::{Circuit, Gate, GateKind};
use qgear_num::Scalar;
use qgear_statevec::sampling::SamplingConfig;
use qgear_statevec::{
    sample_from_probs, Counts, ExecStats, RunOptions, RunOutput, ShotBatchOutput, SimError,
    Simulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// `Counts` packs one measured qubit per key bit.
pub const MAX_MEASURED_QUBITS: usize = 64;

/// SplitMix64 — the per-shot / per-trajectory seed derivation used across
/// the workspace's deterministic fan-outs.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// CHP stabilizer tableau engine.
#[derive(Debug, Clone)]
pub struct StabilizerBackend {
    /// Hard register-width cap; tableaus are quadratic in width, so this
    /// guards runaway allocations rather than address space.
    pub max_qubits: u32,
    /// Widest measured set that still goes through exact-marginal
    /// enumeration + the shared multinomial sampler. Above this the
    /// engine samples per shot.
    pub exact_marginal_cap: usize,
}

impl Default for StabilizerBackend {
    fn default() -> Self {
        StabilizerBackend { max_qubits: 1 << 14, exact_marginal_cap: 12 }
    }
}

impl StabilizerBackend {
    /// Rotation-angle quarter turns, or `None` for non-Clifford angles.
    fn quarter_turns(theta: f64) -> Option<u32> {
        let k = (theta / std::f64::consts::FRAC_PI_2).round();
        if (theta - k * std::f64::consts::FRAC_PI_2).abs() < ANGLE_EPS {
            Some((k as i64).rem_euclid(4) as u32)
        } else {
            None
        }
    }

    /// Half-turn count for controlled-phase angles (multiples of π).
    fn half_turns(lambda: f64) -> Option<u32> {
        let k = (lambda / std::f64::consts::PI).round();
        if (lambda - k * std::f64::consts::PI).abs() < ANGLE_EPS {
            Some((k as i64).rem_euclid(2) as u32)
        } else {
            None
        }
    }

    /// Apply `rz(k·π/2)` ≅ `S^k` (up to global phase).
    fn apply_z_power(t: &mut Tableau, q: u32, k: u32) -> u64 {
        match k {
            0 => 0,
            1 => {
                t.s(q);
                1
            }
            2 => {
                t.z_gate(q);
                1
            }
            3 => {
                t.sdg(q);
                1
            }
            _ => unreachable!("quarter turns are mod 4"),
        }
    }

    /// Lower one gate onto the tableau; returns tableau updates applied.
    fn apply_gate(t: &mut Tableau, g: &Gate) -> Result<u64, SimError> {
        let unsupported = || SimError::UnsupportedGate(format!("{g} is not Clifford"));
        let q = g.qubits[0];
        Ok(match g.kind {
            GateKind::H => {
                t.h(q);
                1
            }
            GateKind::X => {
                t.x_gate(q);
                1
            }
            GateKind::Y => {
                t.y_gate(q);
                1
            }
            GateKind::Z => {
                t.z_gate(q);
                1
            }
            GateKind::S => {
                t.s(q);
                1
            }
            GateKind::Sdg => {
                t.sdg(q);
                1
            }
            GateKind::Cx => {
                t.cx(q, g.qubits[1]);
                1
            }
            GateKind::Cz => {
                t.cz(q, g.qubits[1]);
                1
            }
            GateKind::Swap => {
                t.swap(q, g.qubits[1]);
                1
            }
            GateKind::Rz | GateKind::P => {
                let k = Self::quarter_turns(g.params[0]).ok_or_else(unsupported)?;
                Self::apply_z_power(t, q, k)
            }
            GateKind::Rx => {
                // rx(θ) = H · rz(θ) · H.
                let k = Self::quarter_turns(g.params[0]).ok_or_else(unsupported)?;
                if k == 0 {
                    0
                } else {
                    t.h(q);
                    let ops = Self::apply_z_power(t, q, k);
                    t.h(q);
                    ops + 2
                }
            }
            GateKind::Ry => {
                // ry(θ) ≅ S · H · rz(θ) · H · S† up to global phase.
                let k = Self::quarter_turns(g.params[0]).ok_or_else(unsupported)?;
                if k == 0 {
                    0
                } else {
                    t.sdg(q);
                    t.h(q);
                    let ops = Self::apply_z_power(t, q, k);
                    t.h(q);
                    t.s(q);
                    ops + 4
                }
            }
            GateKind::U => {
                // u(θ, φ, λ) ≅ rz(φ) · ry(θ) · rz(λ) up to global phase.
                let kl = Self::quarter_turns(g.params[2]).ok_or_else(unsupported)?;
                let kt = Self::quarter_turns(g.params[0]).ok_or_else(unsupported)?;
                let kp = Self::quarter_turns(g.params[1]).ok_or_else(unsupported)?;
                let mut ops = Self::apply_z_power(t, q, kl);
                if kt != 0 {
                    t.sdg(q);
                    t.h(q);
                    ops += Self::apply_z_power(t, q, kt) + 4;
                    t.h(q);
                    t.s(q);
                }
                ops + Self::apply_z_power(t, q, kp)
            }
            GateKind::Cr1 => {
                let k = Self::half_turns(g.params[0]).ok_or_else(unsupported)?;
                if k == 1 {
                    t.cz(q, g.qubits[1]);
                    1
                } else {
                    0
                }
            }
            GateKind::Cry => {
                // Only full turns are Clifford; cry(2π·odd) acts as Z on
                // the control.
                let theta = g.params[0];
                let k = (theta / (2.0 * std::f64::consts::PI)).round();
                if (theta - k * 2.0 * std::f64::consts::PI).abs() >= ANGLE_EPS {
                    return Err(unsupported());
                }
                if (k as i64).rem_euclid(2) == 1 {
                    t.z_gate(q);
                    1
                } else {
                    0
                }
            }
            GateKind::Barrier => 0,
            GateKind::Measure => {
                // Terminal measurements are split off before evolution;
                // mid-circuit ones are not supported by this engine's
                // sampling contract.
                return Err(SimError::UnsupportedGate(
                    "stabilizer engine expects terminal measurements".into(),
                ));
            }
            GateKind::T | GateKind::Tdg | GateKind::Ccx => return Err(unsupported()),
        })
    }

    /// Evolve `|0…0⟩` through the unitary part of `circuit`.
    fn evolve(&self, circuit: &Circuit, stats: &mut ExecStats) -> Result<Tableau, SimError> {
        let n = circuit.num_qubits();
        let mut t = Tableau::new(n as usize);
        let row_bytes = (2 * n as u128 + 1) * 16;
        for g in circuit.gates() {
            let ops = Self::apply_gate(&mut t, g)?;
            stats.gates_applied += 1;
            stats.kernels_launched += ops;
            stats.bytes_touched += ops as u128 * row_bytes;
        }
        if qgear_telemetry::is_enabled() {
            qgear_telemetry::counter_add(
                qgear_telemetry::names::GATES_APPLIED,
                circuit.gates().len() as u128,
            );
        }
        Ok(t)
    }

    /// Exact marginal over `measured` (≤ `exact_marginal_cap` qubits),
    /// bit-packed exactly like `StateVector::marginal`: the outcome of
    /// `measured[j]` lands in key bit `j`. Branches the tableau on every
    /// random measurement; stabilizer outcomes are uniform over the
    /// reachable affine subspace, so every leaf weighs `2^-r`.
    fn exact_marginal(&self, t: &Tableau, measured: &[u32]) -> Vec<f64> {
        let m = measured.len();
        let mut probs = vec![0.0f64; 1usize << m];
        // Depth-first over (tableau, next-qubit-index, key, weight).
        let mut stack: Vec<(Tableau, usize, u64, f64)> = vec![(t.clone(), 0, 0, 1.0)];
        while let Some((mut tab, j, key, w)) = stack.pop() {
            if j == m {
                probs[key as usize] += w;
                continue;
            }
            let q = measured[j];
            if tab.is_deterministic(q) {
                let out = tab.measure(q, || unreachable!("deterministic"));
                let key = key | (out.value as u64) << j;
                stack.push((tab, j + 1, key, w));
            } else {
                let mut one = tab.clone();
                tab.measure(q, || false);
                one.measure(q, || true);
                stack.push((tab, j + 1, key, w * 0.5));
                stack.push((one, j + 1, key | 1 << j, w * 0.5));
            }
        }
        probs
    }

    /// Per-shot sampling for wide measured sets: one tableau collapse per
    /// shot, RNG seeded per shot so the histogram is independent of
    /// batching and merge order.
    fn sample_per_shot(
        &self,
        t: &Tableau,
        measured: &[u32],
        cfg: &SamplingConfig,
    ) -> Option<Counts> {
        if cfg.shots == 0 || measured.is_empty() {
            return None;
        }
        let mut map: HashMap<u64, u64> = HashMap::new();
        for shot in 0..cfg.shots {
            let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, shot));
            let mut tab = t.clone();
            let mut key = 0u64;
            for (j, &q) in measured.iter().enumerate() {
                let m = tab.measure(q, || rng.gen_bool(0.5));
                key |= (m.value as u64) << j;
            }
            *map.entry(key).or_insert(0) += 1;
        }
        if qgear_telemetry::is_enabled() {
            qgear_telemetry::counter_add(qgear_telemetry::names::SHOTS_SAMPLED, cfg.shots as u128);
        }
        Some(Counts { qubits: measured.to_vec(), map })
    }

    fn sample(
        &self,
        t: &Tableau,
        measured: &[u32],
        cfg: &SamplingConfig,
    ) -> Result<Option<Counts>, SimError> {
        if measured.len() > MAX_MEASURED_QUBITS {
            return Err(SimError::UnsupportedGate(format!(
                "{} measured qubits exceed the 64-bit outcome key",
                measured.len()
            )));
        }
        if measured.len() <= self.exact_marginal_cap {
            let probs = self.exact_marginal(t, measured);
            Ok(sample_from_probs(&probs, measured, cfg))
        } else {
            Ok(self.sample_per_shot(t, measured, cfg))
        }
    }

    fn check_feasible(&self, n: u32, opts: &RunOptions) -> Result<(), SimError> {
        if n > self.max_qubits {
            return Err(SimError::TooManyQubits(n));
        }
        if let Some(limit) = opts.memory_limit {
            let required = Tableau::memory_bytes(n);
            if required > limit {
                return Err(SimError::OutOfMemory { required, limit });
            }
        }
        Ok(())
    }
}

impl<T: Scalar> Simulator<T> for StabilizerBackend {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    /// Run a Clifford circuit. `keep_state` is ignored: the engine never
    /// materializes amplitudes, so `state` is always `None` — callers
    /// needing a dense state must use a state-vector engine.
    fn run(&self, circuit: &Circuit, opts: &RunOptions) -> Result<RunOutput<T>, SimError> {
        self.check_feasible(circuit.num_qubits(), opts)?;
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::SIMULATE);
        let (unitary, measured) = circuit.split_measurements();
        let mut stats = ExecStats::default();
        let start = Instant::now();
        let t = self.evolve(&unitary, &mut stats)?;
        stats.elapsed = start.elapsed();
        let sample_start = Instant::now();
        let cfg = SamplingConfig {
            shots: opts.shots,
            seed: opts.seed,
            batch_shots: opts.shot_batch,
        };
        let counts = self.sample(&t, &measured, &cfg)?;
        stats.sampling_elapsed = sample_start.elapsed();
        Ok(RunOutput { state: None, counts, stats })
    }

    /// One tableau evolution serving several sampling requests. Overrides
    /// the default (which requires a dense state) but keeps its contract:
    /// each request's histogram is bit-identical to a standalone
    /// [`Simulator::run`] with that request's `(shots, seed, batch)`.
    fn run_shot_batch(
        &self,
        circuit: &Circuit,
        opts: &RunOptions,
        requests: &[SamplingConfig],
    ) -> Result<ShotBatchOutput<T>, SimError> {
        self.check_feasible(circuit.num_qubits(), opts)?;
        let (unitary, measured) = circuit.split_measurements();
        let mut stats = ExecStats::default();
        let start = Instant::now();
        let t = self.evolve(&unitary, &mut stats)?;
        stats.elapsed = start.elapsed();
        let sample_start = Instant::now();
        let counts = if measured.is_empty() {
            requests.iter().map(|_| None).collect()
        } else {
            requests
                .iter()
                .map(|cfg| self.sample(&t, &measured, cfg))
                .collect::<Result<Vec<_>, _>>()?
        };
        stats.sampling_elapsed = sample_start.elapsed();
        Ok(ShotBatchOutput { state: None, counts, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_counts(c: &Circuit, shots: u64, seed: u64) -> Counts {
        let opts = RunOptions { shots, seed, ..Default::default() };
        let out: RunOutput<f64> =
            StabilizerBackend::default().run(c, &opts).expect("clifford run");
        out.counts.expect("counts")
    }

    #[test]
    fn ghz_samples_only_extremes() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
        let counts = run_counts(&c, 10_000, 7);
        assert_eq!(counts.total(), 10_000);
        for (key, _) in counts.sorted() {
            assert!(key == 0 || key == 0b1111, "non-GHZ outcome {key:#b}");
        }
        // Both branches present at these shot counts.
        assert!(counts.get(0) > 4000 && counts.get(0b1111) > 4000);
    }

    #[test]
    fn deterministic_per_seed_and_batch_invariant() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).s(1).h(2).measure_all();
        let a = run_counts(&c, 5000, 42);
        let b = run_counts(&c, 5000, 42);
        assert_eq!(a.map, b.map);
        let opts = RunOptions { shots: 5000, seed: 42, shot_batch: 13, ..Default::default() };
        let batched: RunOutput<f64> =
            StabilizerBackend::default().run(&c, &opts).unwrap();
        assert_eq!(batched.counts.unwrap().map, a.map);
    }

    #[test]
    fn wide_register_per_shot_path() {
        let n = 80u32;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        // Measure a 20-qubit subset: wide enough for the per-shot path.
        for q in 0..20 {
            c.measure(q);
        }
        let counts = run_counts(&c, 500, 3);
        assert_eq!(counts.total(), 500);
        let all_ones = (1u64 << 20) - 1;
        for (key, _) in counts.sorted() {
            assert!(key == 0 || key == all_ones);
        }
        // Determinism of the per-shot path.
        assert_eq!(run_counts(&c, 500, 3).map, counts.map);
    }

    #[test]
    fn non_clifford_gates_rejected() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).measure_all();
        let out: Result<RunOutput<f64>, _> =
            StabilizerBackend::default().run(&c, &RunOptions::default());
        assert!(matches!(out, Err(SimError::UnsupportedGate(_))));
        let mut r = Circuit::new(1);
        r.ry(0.3, 0);
        let out: Result<RunOutput<f64>, _> =
            StabilizerBackend::default().run(&r, &RunOptions::default());
        assert!(matches!(out, Err(SimError::UnsupportedGate(_))));
    }

    #[test]
    fn clifford_angle_rotations_accepted() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let mut c = Circuit::new(2);
        c.rx(PI, 0).ry(FRAC_PI_2, 1).rz(-FRAC_PI_2, 0).p(PI, 1).cr1(PI, 0, 1).measure_all();
        let counts = run_counts(&c, 100, 1);
        assert_eq!(counts.total(), 100);
    }

    #[test]
    fn memory_gate_uses_tableau_bytes() {
        let opts = RunOptions { memory_limit: Some(1024), ..Default::default() };
        let mut tiny = Circuit::new(8);
        tiny.h(0);
        let ok: Result<RunOutput<f64>, _> = StabilizerBackend::default().run(&tiny, &opts);
        assert!(ok.is_ok(), "8-qubit tableau fits in 1 KB");
        let mut wide = Circuit::new(512);
        wide.h(0);
        let err: Result<RunOutput<f64>, _> = StabilizerBackend::default().run(&wide, &opts);
        assert!(matches!(err, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn hundred_qubit_ghz_runs() {
        let n = 100u32;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        for q in 0..64 {
            c.measure(q);
        }
        let counts = run_counts(&c, 256, 11);
        assert_eq!(counts.total(), 256);
        for (key, _) in counts.sorted() {
            assert!(key == 0 || key == u64::MAX, "GHZ prefix outcome {key:#x}");
        }
    }

    #[test]
    fn too_many_measured_qubits_rejected() {
        let mut c = Circuit::new(70);
        c.h(0);
        for q in 0..70 {
            c.measure(q);
        }
        let opts = RunOptions { shots: 10, ..Default::default() };
        let out: Result<RunOutput<f64>, _> = StabilizerBackend::default().run(&c, &opts);
        assert!(matches!(out, Err(SimError::UnsupportedGate(_))));
    }

    #[test]
    fn shot_batch_requests_match_standalone_runs() {
        let mut c = Circuit::new(5);
        c.h(0).cx(0, 1).cx(1, 2).s(3).h(4).cx(3, 4).measure_all();
        let reqs = [
            SamplingConfig::single(1000, 5),
            SamplingConfig { shots: 777, seed: 9, batch_shots: 64 },
        ];
        let opts = RunOptions::default();
        let batch: ShotBatchOutput<f64> = StabilizerBackend::default()
            .run_shot_batch(&c, &opts, &reqs)
            .unwrap();
        for (req, got) in reqs.iter().zip(&batch.counts) {
            let solo = run_counts(&c, req.shots, req.seed);
            assert_eq!(got.as_ref().unwrap().map, solo.map);
        }
    }
}
