//! Hardware constants from §2.3 of the paper, plus tuned effective factors.
//!
//! Peak numbers come straight from the paper's hardware description; the
//! `efficiency` fields are the fraction of peak a state-vector sweep
//! actually achieves, chosen in [`crate::calibration`] to reproduce the
//! paper's headline ratios (≈400× GPU-vs-CPU on random unitaries,
//! two-orders speedup on QCrank, minute-scale 34-qubit runs on 4 GPUs).

use serde::{Deserialize, Serialize};

/// A GPU device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Display name.
    pub name: String,
    /// Device memory in bytes.
    pub memory_bytes: u128,
    /// Peak memory bandwidth in B/s (A100 80 GB: 2039 GB/s per §2.3).
    pub mem_bandwidth: f64,
    /// Fraction of peak bandwidth a fused state-vector sweep sustains.
    pub efficiency: f64,
    /// Fixed cost per kernel launch, seconds.
    pub kernel_launch: f64,
    /// Occupancy knee in bytes: sweeps over local states much smaller than
    /// this underutilize the memory system (short kernels are latency-
    /// bound), modeled as `eff(L) = efficiency · L / (L + knee)`.
    pub occupancy_knee: f64,
}

impl GpuSpec {
    /// Perlmutter A100 with 40 GB HBM2e.
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100-40GB".into(),
            memory_bytes: 40_000_000_000,
            mem_bandwidth: 1555e9, // 40 GB SXM variant
            efficiency: 0.75,
            kernel_launch: 4e-6,
            occupancy_knee: 64.0 * 1024.0 * 1024.0,
        }
    }

    /// Perlmutter A100 with 80 GB HBM2e (2039 GB/s, §2.3).
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100-80GB".into(),
            memory_bytes: 80_000_000_000,
            mem_bandwidth: 2039e9,
            efficiency: 0.75,
            kernel_launch: 4e-6,
            occupancy_knee: 64.0 * 1024.0 * 1024.0,
        }
    }

    /// Effective bandwidth for a sweep over `local_bytes` of state.
    pub fn effective_bandwidth(&self, local_bytes: f64) -> f64 {
        self.mem_bandwidth * self.efficiency * local_bytes / (local_bytes + self.occupancy_knee)
    }
}

/// A CPU node model (the Qiskit-Aer baseline host).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuNodeSpec {
    /// Display name.
    pub name: String,
    /// Cores (2 × 64 on the Perlmutter CPU node).
    pub cores: u32,
    /// Usable memory in bytes (512 GB DDR4 minus OS ≈ 460 GB, matching
    /// Appendix E.3's "460 GB RAM").
    pub memory_bytes: u128,
    /// Peak node memory bandwidth in B/s (2 × 204.8 GB/s per §2.3).
    pub mem_bandwidth: f64,
    /// Fraction of peak an unfused Aer gate sweep sustains. Aer's
    /// gate-by-gate dispatch through Python keeps this low; calibrated so
    /// the GPU speedup lands at the paper's ≈400×.
    pub efficiency: f64,
    /// Fixed dispatch cost per gate, seconds (Python/Aer overhead).
    pub gate_dispatch: f64,
}

impl CpuNodeSpec {
    /// The Perlmutter CPU node: 2 × AMD EPYC 7763, 512 GB DDR4.
    pub fn perlmutter_cpu_node() -> Self {
        CpuNodeSpec {
            name: "2x AMD EPYC 7763 (Perlmutter CPU node)".into(),
            cores: 128,
            memory_bytes: 460_000_000_000,
            mem_bandwidth: 409.6e9,
            efficiency: 0.11,
            gate_dispatch: 40e-6,
        }
    }

    /// Effective sweep bandwidth.
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.efficiency
    }
}

/// One interconnect class between simulated devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth per device pair, B/s.
    pub pair_bandwidth: f64,
    /// Per-message latency, seconds (includes software stack).
    pub latency: f64,
}

/// The three link classes, index-aligned with
/// `qgear_cluster::LinkClass`: intra-node NVLink, inter-node Slingshot,
/// inter-rack Slingshot through the global dragonfly links.
pub fn perlmutter_links() -> [LinkSpec; 3] {
    [
        // NVLink-3: 4 links × 25 GB/s per direction (§2.3); a pairwise
        // exchange drives the full aggregate of the direct links.
        LinkSpec { pair_bandwidth: 100e9, latency: 5e-6 },
        // Slingshot-11: one 25 GB/s NIC per GPU; MPI overheads leave
        // ~22 GB/s for a pairwise exchange.
        LinkSpec { pair_bandwidth: 22e9, latency: 12e-6 },
        // Crossing dragonfly groups: traffic shares the global links;
        // base per-pair rate before the rack-span contention factor the
        // cost model applies (the paper blames this class for the
        // 1024-GPU throughput reversal).
        LinkSpec { pair_bandwidth: 15e9, latency: 40e-6 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_present() {
        let g80 = GpuSpec::a100_80gb();
        assert_eq!(g80.mem_bandwidth, 2039e9);
        assert_eq!(g80.memory_bytes, 80_000_000_000);
        let cpu = CpuNodeSpec::perlmutter_cpu_node();
        assert_eq!(cpu.cores, 128);
        assert_eq!(cpu.mem_bandwidth, 409.6e9);
    }

    #[test]
    fn occupancy_knee_penalizes_small_sweeps() {
        let g = GpuSpec::a100_40gb();
        let big = g.effective_bandwidth(32e9);
        let small = g.effective_bandwidth(1e6);
        assert!(big > 0.9 * g.mem_bandwidth * g.efficiency);
        assert!(small < 0.05 * g.mem_bandwidth * g.efficiency);
    }

    #[test]
    fn link_classes_ordered_by_cost() {
        let links = perlmutter_links();
        assert!(links[0].pair_bandwidth > links[1].pair_bandwidth);
        assert!(links[1].pair_bandwidth > links[2].pair_bandwidth);
        assert!(links[0].latency < links[2].latency);
    }
}
