//! End-to-end projection: circuit → fused kernels → dry-run traffic plan →
//! projected time on the paper's testbed.
//!
//! This is the "modeled mode" every figure harness uses for paper-scale
//! points. Operation counts are **exact** — the real fuser and the real
//! remap planner run on the real gate list; only the final
//! counts→seconds conversion is analytic.

use crate::cost::{CostModel, TimeBreakdown};
use crate::memory::amp_bytes;
use qgear_cluster::TrafficPlanner;
use qgear_ir::fusion::{self, FusedProgram, FusionError};
use qgear_ir::Circuit;
use qgear_num::scalar::Precision;

/// Execution target for a projection, mirroring the Q-Gear target strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelTarget {
    /// Qiskit Aer on the Perlmutter CPU node (dashed baselines in Fig. 4a
    /// and Fig. 5). Aer runs fp64 internally.
    QiskitCpu,
    /// Q-Gear on `devices` pooled A100s (`nvidia` / `nvidia-mgpu`).
    QGearGpu {
        /// GPU count (power of two).
        devices: usize,
    },
    /// Pennylane lightning.gpu on `devices` A100s (Fig. 4c baseline).
    PennylaneGpu {
        /// GPU count (power of two).
        devices: usize,
    },
}

/// Inputs that don't live on the circuit itself.
#[derive(Debug, Clone, Copy)]
pub struct ProjectOptions {
    /// Numeric precision of the run.
    pub precision: Precision,
    /// Shots sampled after the unitary phase.
    pub shots: u64,
    /// Fusion window (paper default 5); ignored for unfused targets.
    pub fusion_width: usize,
}

impl Default for ProjectOptions {
    fn default() -> Self {
        ProjectOptions { precision: Precision::Fp32, shots: 0, fusion_width: fusion::DEFAULT_FUSION_WIDTH }
    }
}

/// Fuse `circ` and plan the exchange traffic for `devices`, then convert
/// to a time breakdown. The circuit must already be on the native set
/// (transpile first); measurements are split off and drive the sampling
/// term.
///
/// # Errors
///
/// Returns [`FusionError`] when the circuit cannot be fused (e.g. it
/// still contains arity-3 gates) — a cost model must reject such input,
/// not abort the process.
pub fn project_circuit(
    model: &CostModel,
    circ: &Circuit,
    target: ModelTarget,
    opts: &ProjectOptions,
) -> Result<TimeBreakdown, FusionError> {
    let (unitary, measured) = circ.split_measurements();
    let gates = unitary.unitary_count() as u64;
    let n = circ.num_qubits();
    let shots = if measured.is_empty() { 0 } else { opts.shots };

    Ok(match target {
        ModelTarget::QiskitCpu => {
            // Aer simulates in fp64 regardless of the GPU run's precision.
            let mut t = model.cpu_unitary(n, 16, gates);
            t.pipeline = model.qiskit_pipeline(gates);
            t.sampling = model.cpu_sampling(shots);
            t
        }
        ModelTarget::QGearGpu { devices } => {
            // Mirror the engine: the fusion window cannot exceed the
            // per-device local width, and a register narrower than
            // log2(devices)+2 cannot be split that far (each device must
            // hold at least a 2-qubit-local slice for CX kernels).
            let devices = effective_devices(devices, n);
            let width = effective_width(opts.fusion_width, n, devices);
            let program = fusion::try_fuse(&unitary, width)?;
            let traffic = plan_traffic(&program, n, devices, opts.precision, model);
            let mut t = model.gpu_unitary(
                n,
                amp_bytes(opts.precision),
                devices,
                program.blocks.len() as u64,
                &traffic,
            );
            t.pipeline = model.qgear_pipeline(gates);
            t.sampling = model.gpu_sampling(shots);
            t
        }
        ModelTarget::PennylaneGpu { devices } => {
            // No fusion: every gate is its own kernel; same distribution
            // scheme for global qubits.
            let devices = effective_devices(devices, n);
            let program = fusion::try_fuse(&unitary, 1)?;
            let traffic = plan_traffic(&program, n, devices, opts.precision, model);
            let mut t = model.pennylane_unitary(
                n,
                amp_bytes(opts.precision),
                devices,
                program.blocks.len() as u64,
                &traffic,
            );
            t.sampling = model.gpu_sampling(shots);
            t
        }
    })
}

/// Clamp a requested device count to what an `n`-qubit register can be
/// split across (2-qubit local slices at minimum).
fn effective_devices(requested: usize, n: u32) -> usize {
    let max = 1usize << n.saturating_sub(2).min(20);
    requested.clamp(1, max)
}

/// Clamp the fusion window to the per-device local width (>= 1).
fn effective_width(requested: usize, n: u32, devices: usize) -> usize {
    let p = devices.max(1).trailing_zeros();
    requested
        .clamp(1, fusion::MAX_FUSION_WIDTH)
        .min((n.saturating_sub(p)).max(1) as usize)
}

fn plan_traffic(
    program: &FusedProgram,
    n: u32,
    devices: usize,
    precision: Precision,
    model: &CostModel,
) -> qgear_cluster::TrafficStats {
    if devices <= 1 {
        return qgear_cluster::TrafficStats::default();
    }
    let mut planner = TrafficPlanner::new(n, devices, model.topology, amp_bytes(precision));
    planner.run_program(program);
    *planner.traffic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_ir::Circuit;

    /// A stand-in for the paper's random CX-block circuits (the real
    /// generator lives in `qgear-workloads`; this keeps the dependency
    /// graph acyclic).
    pub(super) fn cx_blocks_public(n: u32, blocks: usize, seed: u64) -> Circuit {
        cx_blocks(n, blocks, seed)
    }

    fn cx_blocks(n: u32, blocks: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut s = seed | 1;
        let mut rnd = move |m: u64| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % m
        };
        for _ in 0..blocks {
            let a = rnd(n as u64) as u32;
            let b = (a + 1 + rnd(n as u64 - 1) as u32) % n;
            c.ry(rnd(628) as f64 / 100.0, a);
            c.rz(rnd(628) as f64 / 100.0, b);
            c.cx(a, b);
        }
        c
    }

    #[test]
    fn fig4a_shape_gpu_beats_cpu_by_two_orders() {
        let m = CostModel::paper_testbed();
        let c = cx_blocks(30, 100, 1);
        let opts = ProjectOptions { shots: 3000, ..Default::default() };
        let cpu = project_circuit(&m, &c, ModelTarget::QiskitCpu, &opts).unwrap().total();
        let gpu = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 1 }, &opts).unwrap().total();
        let speedup = cpu / gpu;
        assert!(
            (100.0..2000.0).contains(&speedup),
            "speedup {speedup:.0}x (cpu {cpu:.1}s, gpu {gpu:.2}s)"
        );
    }

    #[test]
    fn exponential_scaling_in_qubits() {
        let m = CostModel::paper_testbed();
        let opts = ProjectOptions::default();
        let t: Vec<f64> = (28..=32)
            .map(|n| {
                let c = cx_blocks(n, 100, 7);
                project_circuit(&m, &c, ModelTarget::QiskitCpu, &opts).unwrap().total()
            })
            .collect();
        for w in t.windows(2) {
            let ratio = w[1] / w[0];
            assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn long_unitaries_cost_100x_short() {
        // Fig. 4a: "the Qiskit simulation takes 100 times longer" for 10k
        // blocks vs 100 blocks.
        let m = CostModel::paper_testbed();
        let opts = ProjectOptions::default();
        let short = project_circuit(&m, &cx_blocks(30, 100, 3), ModelTarget::QiskitCpu, &opts).unwrap();
        let long = project_circuit(&m, &cx_blocks(30, 10_000, 3), ModelTarget::QiskitCpu, &opts).unwrap();
        let ratio = long.total() / short.total();
        assert!((80.0..120.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn four_gpus_faster_than_one_when_memory_allows() {
        let m = CostModel::paper_testbed();
        let c = cx_blocks(32, 1000, 5);
        let opts = ProjectOptions::default();
        let one = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 1 }, &opts).unwrap().total();
        let four = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 4 }, &opts).unwrap().total();
        // Communication eats some of the 4x, but it must still win.
        assert!(four < one, "4 GPUs {four:.1}s vs 1 GPU {one:.1}s");
    }

    #[test]
    fn pennylane_loses_to_qgear_on_qft_sized_circuits() {
        let m = CostModel::paper_testbed();
        let c = cx_blocks(28, 200, 11);
        let opts = ProjectOptions { shots: 100, ..Default::default() };
        let qgear = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 4 }, &opts).unwrap().total();
        let penny = project_circuit(&m, &c, ModelTarget::PennylaneGpu { devices: 4 }, &opts).unwrap().total();
        assert!(penny > 1.5 * qgear, "pennylane {penny:.2}s vs qgear {qgear:.2}s");
    }

    #[test]
    fn reversal_1024_slower_than_256_at_40_qubits() {
        // Fig. 4b highlighted region: at 40 qubits a 1024-GPU cluster has
        // lower throughput than a 256-GPU cluster.
        let m = CostModel::paper_testbed();
        let c = cx_blocks(40, 3000, 13);
        let opts = ProjectOptions::default();
        let t256 = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 256 }, &opts).unwrap().total();
        let t1024 = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 1024 }, &opts).unwrap().total();
        assert!(
            t1024 > t256,
            "expected reversal: 1024 GPUs {t1024:.1}s vs 256 GPUs {t256:.1}s"
        );
    }

    #[test]
    fn ten_minutes_feasibility_at_42_qubits() {
        // §3: large circuits handled "within a reasonable time of
        // approximately 10 min, provided a sufficient number of GPUs".
        let m = CostModel::paper_testbed();
        let c = cx_blocks(42, 3000, 17);
        let opts = ProjectOptions { shots: 10_000, ..Default::default() };
        let t = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: 1024 }, &opts).unwrap().total();
        // The paper reports ~10 min; our comm model is deliberately
        // pessimistic (no compute/comm overlap, per-bit pairwise
        // exchanges), so accept up to ~2 h — still "feasible given
        // sufficient GPUs", and EXPERIMENTS.md discusses the gap.
        assert!(
            (60.0..7200.0).contains(&t),
            "42-qubit run should land in the minutes-to-hours band, got {t:.0}s"
        );
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    #[ignore]
    fn print_fig4b_grid() {
        let m = CostModel::paper_testbed();
        let opts = ProjectOptions::default();
        for &n in &[36u32, 38, 39, 40, 41, 42] {
            let c = super::tests::cx_blocks_public(n, 3000, 13);
            for &p in &[64usize, 256, 1024] {
                if n < p.trailing_zeros() + 2 { continue; }
                let local = (1u128 << n) * 8 / p as u128;
                if local > m.gpu.memory_bytes { print!("n={n} P={p}: OOM; "); continue; }
                let t = project_circuit(&m, &c, ModelTarget::QGearGpu { devices: p }, &opts).unwrap();
                println!("n={n} P={p}: {t}");
            }
        }
    }
}
