//! Timing formulas.
//!
//! Every formula converts *measured operation counts* (kernel launches,
//! bytes swept, exchange traffic by link class, shots) into projected
//! seconds on the paper's testbed. State-vector sweeps are modeled as
//! memory-bandwidth-bound — the standard regime for dense simulators —
//! with fixed per-kernel launch costs; exchanges are modeled per link
//! class with latency and (for the inter-rack class) a dragonfly
//! contention factor. See `crate::calibration` for how each constant was
//! chosen and which paper anchor it reproduces.

use crate::hardware::{perlmutter_links, CpuNodeSpec, GpuSpec, LinkSpec};
use qgear_cluster::{ClusterTopology, LinkClass, TrafficStats};
use serde::{Deserialize, Serialize};

/// Projected wall-clock, split by phase. All values in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Front-end pipeline cost: circuit construction / transpilation /
    /// (for Q-Gear) tensor encode+decode.
    pub pipeline: f64,
    /// State-vector sweep time.
    pub compute: f64,
    /// Kernel-launch / per-gate dispatch overhead.
    pub launch: f64,
    /// Inter-device exchange time.
    pub comm: f64,
    /// Shot-sampling time.
    pub sampling: f64,
    /// Job/device initialization.
    pub init: f64,
}

impl TimeBreakdown {
    /// Total projected seconds.
    pub fn total(&self) -> f64 {
        self.pipeline + self.compute + self.launch + self.comm + self.sampling + self.init
    }
}

impl std::fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3}s (pipeline {:.3} + compute {:.3} + launch {:.3} + comm {:.3} + sampling {:.3} + init {:.3})",
            self.total(),
            self.pipeline,
            self.compute,
            self.launch,
            self.comm,
            self.sampling,
            self.init
        )
    }
}

/// The full calibrated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU device description.
    pub gpu: GpuSpec,
    /// CPU-node description (baseline host).
    pub cpu: CpuNodeSpec,
    /// Link classes, index-aligned with [`LinkClass`].
    pub links: [LinkSpec; 3],
    /// Cluster topology (for rack-span contention).
    pub topology: ClusterTopology,
    /// Straggler coefficient: kernel barriers cost
    /// `(1 + straggler_coeff · log2 P)` of the ideal time (the paper's
    /// "GPUs … not warmed up" effect).
    pub straggler_coeff: f64,
    /// Dragonfly contention: inter-rack pair bandwidth scales by
    /// `min(1, (contention_base_racks / racks_spanned)^contention_exponent)`.
    /// The exponent must exceed 1 for contention to outweigh pair
    /// parallelism (a bisection moves the same total volume at any P);
    /// adaptive-routing studies of dragonfly fabrics under adversarial
    /// bisection traffic show exactly this superlinear degradation.
    pub contention_base_racks: f64,
    /// See [`CostModel::contention_base_racks`].
    pub contention_exponent: f64,
    /// Per-GPU job initialization (container start, CUDA context).
    pub init_per_gpu: f64,
    /// Qiskit/Python front-end cost per gate (circuit build + transpile) —
    /// what Q-Gear's tensor pipeline bypasses.
    pub qiskit_per_gate: f64,
    /// Q-Gear encode/decode cost per gate (Appendix C: encoding is cheap
    /// and constant per slot).
    pub qgear_per_gate: f64,
    /// Pennylane per-gate high-level→kernel transpile cost, incurred *at
    /// execution time* (§4: "it must first transpile high-level Python
    /// representations into low-level CUDA kernels").
    pub pennylane_per_gate: f64,
    /// CPU sampling cost per shot, divided across all cores (the paper:
    /// "sampling was performed in parallel on all 128 CPU cores").
    pub cpu_sample_per_shot: f64,
    /// GPU sampling cost per shot ("serial sampling" on one GPU, §3).
    pub gpu_sample_per_shot: f64,
}

impl CostModel {
    /// The calibrated Perlmutter model used by every figure harness.
    pub fn paper_testbed() -> Self {
        CostModel {
            gpu: GpuSpec::a100_40gb(),
            cpu: CpuNodeSpec::perlmutter_cpu_node(),
            links: perlmutter_links(),
            topology: ClusterTopology::default(),
            straggler_coeff: 0.01,
            contention_base_racks: 2.0,
            contention_exponent: 1.5,
            init_per_gpu: 1e-3,
            qiskit_per_gate: 8e-3,
            qgear_per_gate: 10e-6,
            pennylane_per_gate: 5e-3,
            cpu_sample_per_shot: 8e-6,
            gpu_sample_per_shot: 2e-7,
        }
    }

    /// Straggler multiplier for a `devices`-wide kernel barrier.
    fn straggler(&self, devices: usize) -> f64 {
        1.0 + self.straggler_coeff * (devices.max(1) as f64).log2()
    }

    /// GPU unitary phase: `kernels` fused sweeps over a `2^n` state at
    /// `amp_bytes`/amplitude, split over `devices`, with the given
    /// exchange traffic (from the dry-run planner or a real run).
    pub fn gpu_unitary(
        &self,
        num_qubits: u32,
        amp_bytes: u64,
        devices: usize,
        kernels: u64,
        traffic: &TrafficStats,
    ) -> TimeBreakdown {
        let state_bytes = 2f64.powi(num_qubits as i32) * amp_bytes as f64;
        let local_bytes = state_bytes / devices as f64;
        let eff_bw = self.gpu.effective_bandwidth(local_bytes);
        // Read + write the local state once per fused kernel.
        let per_kernel = 2.0 * local_bytes / eff_bw;
        let strag = self.straggler(devices);
        let compute = kernels as f64 * per_kernel * strag;
        let launch = kernels as f64 * self.gpu.kernel_launch * strag;

        // Exchanges: all pairs of a swap proceed in parallel on disjoint
        // links (full duplex), so wall time per class is per-device bytes
        // over pair bandwidth plus per-message latency.
        let racks = self.topology.nodes_for(devices) as f64 / self.topology.nodes_per_rack as f64;
        let mut comm = 0.0;
        for class in LinkClass::ALL {
            let bytes = traffic.bytes[class as usize] as f64;
            let msgs = traffic.messages[class as usize] as f64;
            if bytes == 0.0 && msgs == 0.0 {
                continue;
            }
            let mut bw = self.links[class as usize].pair_bandwidth;
            if class == LinkClass::InterRack && racks > self.contention_base_racks {
                bw *= (self.contention_base_racks / racks).powf(self.contention_exponent);
            }
            comm += bytes / devices as f64 / bw
                + msgs / devices as f64 * self.links[class as usize].latency;
        }

        TimeBreakdown {
            compute,
            launch,
            comm,
            init: self.init_per_gpu * devices as f64,
            ..Default::default()
        }
    }

    /// GPU unitary phase for a *batched* pass: `batch` shape-congruent
    /// circuits evolved in lockstep (`qgear_statevec::run_batched`), the
    /// amplitudes laid batch-major so each kernel launch sweeps every
    /// member's lane.
    ///
    /// The returned breakdown is the **whole-batch** wall time; divide by
    /// `batch` for the per-member amortized cost. Two effects make that
    /// amortized cost beat a solo dispatch of the same circuit:
    ///
    /// * **Launch amortization** — one launch per fused kernel covers all
    ///   `batch` members, so per-member launch overhead shrinks by
    ///   `1/batch`. This dominates for the small states serving
    ///   workloads are made of, which are launch-bound solo
    ///   (`occupancy_makes_tiny_states_launch_bound`).
    /// * **Occupancy recovery** — the joint sweep touches `batch`× the
    ///   bytes per kernel, pushing tiny states up the device's
    ///   bandwidth-efficiency knee that a solo sweep sits far below.
    ///
    /// Compute bytes scale linearly with `batch` (every member's lane is
    /// read and written each kernel), as does exchange traffic and
    /// device init — batching amortizes dispatch, never the physics.
    pub fn gpu_unitary_batched(
        &self,
        num_qubits: u32,
        amp_bytes: u64,
        devices: usize,
        kernels: u64,
        batch: usize,
        traffic: &TrafficStats,
    ) -> TimeBreakdown {
        let b = batch.max(1);
        let solo = self.gpu_unitary(num_qubits, amp_bytes, devices, kernels, traffic);

        // Joint sweep: b lanes per kernel, priced at the efficiency the
        // *combined* working set reaches.
        let state_bytes = 2f64.powi(num_qubits as i32) * amp_bytes as f64;
        let local_bytes = state_bytes * b as f64 / devices as f64;
        let eff_bw = self.gpu.effective_bandwidth(local_bytes);
        let per_kernel = 2.0 * local_bytes / eff_bw;
        let compute = kernels as f64 * per_kernel * self.straggler(devices);

        TimeBreakdown {
            compute,
            // One launch per kernel regardless of occupancy — the whole
            // point of the batched pass.
            launch: solo.launch,
            comm: solo.comm * b as f64,
            init: solo.init,
            ..Default::default()
        }
    }

    /// Per-member amortized speedup of a `batch`-wide joint pass over a
    /// solo dispatch: `batch · T_solo / T_batched`, single device.
    pub fn batch_speedup(
        &self,
        num_qubits: u32,
        amp_bytes: u64,
        kernels: u64,
        batch: usize,
    ) -> f64 {
        let empty = TrafficStats::default();
        let solo = self.gpu_unitary(num_qubits, amp_bytes, 1, kernels, &empty).total();
        let joint = self
            .gpu_unitary_batched(num_qubits, amp_bytes, 1, kernels, batch, &empty)
            .total();
        batch.max(1) as f64 * solo / joint
    }

    /// CPU (Qiskit-Aer) unitary phase: unfused, one sweep per gate, plus
    /// per-gate dispatch. `amp_bytes` is 16 for the fp64 Aer default.
    pub fn cpu_unitary(&self, num_qubits: u32, amp_bytes: u64, gates: u64) -> TimeBreakdown {
        let state_bytes = 2f64.powi(num_qubits as i32) * amp_bytes as f64;
        let per_gate = 2.0 * state_bytes / self.cpu.effective_bandwidth();
        TimeBreakdown {
            compute: gates as f64 * per_gate,
            launch: gates as f64 * self.cpu.gate_dispatch,
            ..Default::default()
        }
    }

    /// Pennylane-lightning.gpu unitary phase: same device, but no fusion
    /// (one sweep per gate) and a per-gate transpile cost at execution.
    pub fn pennylane_unitary(
        &self,
        num_qubits: u32,
        amp_bytes: u64,
        devices: usize,
        gates: u64,
        traffic: &TrafficStats,
    ) -> TimeBreakdown {
        let mut t = self.gpu_unitary(num_qubits, amp_bytes, devices, gates, traffic);
        t.pipeline += gates as f64 * self.pennylane_per_gate;
        t
    }

    /// Front-end cost of the plain Qiskit pipeline for `gates` gates.
    pub fn qiskit_pipeline(&self, gates: u64) -> f64 {
        gates as f64 * self.qiskit_per_gate
    }

    /// Front-end cost of the Q-Gear pipeline (encode → store → decode).
    pub fn qgear_pipeline(&self, gates: u64) -> f64 {
        gates as f64 * self.qgear_per_gate
    }

    /// Sampling time on the CPU node (parallel across cores).
    pub fn cpu_sampling(&self, shots: u64) -> f64 {
        shots as f64 * self.cpu_sample_per_shot / self.cpu.cores as f64
    }

    /// Sampling time on one GPU (serial, §3).
    pub fn gpu_sampling(&self, shots: u64) -> f64 {
        shots as f64 * self.gpu_sample_per_shot
    }

    /// Planner cost constants for the *modeled* target device — what the
    /// adaptive planner (`qgear_statevec::planner`) would decide on the
    /// paper's hardware rather than on this host (whose fit is
    /// `PlannerCosts::host_reference`). In the bandwidth-bound regime
    /// every throughput derives from sustained bandwidth over the bytes
    /// each operation class moves per amplitude: a state pass reads and
    /// writes 16 B, so element-wise classes and the per-gate loops run at
    /// `bw/32` amplitudes per second, while dense mul-adds amortize
    /// operand reuse inside the gathered tile to ~4 B of traffic each
    /// (`bw/4`). Launch overhead maps across directly. Only the ratios
    /// matter for mode ranking (`docs/PLANNER.md`); the derived model
    /// favors pass-merging modes more strongly than the host fit because
    /// real HBM bandwidth dwarfs the launch cost.
    pub fn planner_costs(&self) -> qgear_statevec::PlannerCosts {
        let bw = self.gpu.mem_bandwidth * self.gpu.efficiency;
        qgear_statevec::PlannerCosts {
            bytes_per_sec: bw,
            madds_per_sec: bw / 4.0,
            cmuls_per_sec: bw / 32.0,
            gate_amps_per_sec: bw / 32.0,
            launch_seconds: self.gpu.kernel_launch,
            force_mode: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::paper_testbed()
    }

    #[test]
    fn breakdown_total_sums_phases() {
        let t = TimeBreakdown { pipeline: 1.0, compute: 2.0, launch: 0.5, comm: 3.0, sampling: 0.25, init: 0.25 };
        assert!((t.total() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_time_scales_exponentially_with_qubits() {
        let m = model();
        let empty = TrafficStats::default();
        let t30 = m.gpu_unitary(30, 8, 1, 100, &empty).total();
        let t32 = m.gpu_unitary(32, 8, 1, 100, &empty).total();
        // 4x more amplitudes -> ~4x more time in the bandwidth regime.
        let ratio = t32 / t30;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cpu_vs_gpu_speedup_near_400x() {
        // Fig. 4a headline: short random unitary at 32 qubits, 300 gates,
        // ~46 fused kernels, one GPU vs the CPU node.
        let m = model();
        let empty = TrafficStats::default();
        let mut gpu = m.gpu_unitary(32, 8, 1, 46, &empty);
        gpu.pipeline = m.qgear_pipeline(300);
        let mut cpu = m.cpu_unitary(32, 16, 300);
        cpu.pipeline = m.qiskit_pipeline(300);
        let speedup = cpu.total() / gpu.total();
        assert!(
            (200.0..800.0).contains(&speedup),
            "expected ~400x, got {speedup:.0}x (cpu {:.1}s gpu {:.3}s)",
            cpu.total(),
            gpu.total()
        );
    }

    #[test]
    fn more_devices_reduce_compute() {
        let m = model();
        let empty = TrafficStats::default();
        let t1 = m.gpu_unitary(34, 8, 1, 1000, &empty);
        let t4 = m.gpu_unitary(34, 8, 4, 1000, &empty);
        assert!(t4.compute < t1.compute / 3.0);
    }

    #[test]
    fn occupancy_makes_tiny_states_launch_bound() {
        let m = model();
        let empty = TrafficStats::default();
        let t = m.gpu_unitary(16, 8, 1, 1000, &empty);
        // 2^16 amps = 512 KiB: far below the knee; sweeps cost microseconds
        // and the total stays tiny.
        assert!(t.total() < 0.5, "total {}", t.total());
    }

    #[test]
    fn interrack_contention_kicks_in_beyond_base_racks() {
        let m = model();
        // 1024 GPUs span 8 racks (4 GPUs/node, 32 nodes/rack); 256 span 2.
        let racks_1024 = m.topology.nodes_for(1024) as f64 / m.topology.nodes_per_rack as f64;
        let racks_256 = m.topology.nodes_for(256) as f64 / m.topology.nodes_per_rack as f64;
        assert_eq!(racks_1024, 8.0);
        assert_eq!(racks_256, 2.0);
        // An inter-rack exchange moving the same total volume (a bisection
        // moves ~half the state regardless of P) costs the 1024-GPU job
        // strictly more wall time per byte: the contention factor
        // (8/2)^1.5 = 8x outweighs the 4x higher pair parallelism.
        let total_bytes = 1u128 << 40;
        let mut traffic = TrafficStats::default();
        traffic.record(LinkClass::InterRack, total_bytes);
        let t_1024 = m.gpu_unitary(40, 8, 1024, 0, &traffic).comm;
        let t_256 = m.gpu_unitary(40, 8, 256, 0, &traffic).comm;
        assert!(
            t_1024 > 1.9 * t_256,
            "contention should dominate: {t_1024} vs {t_256}"
        );
    }

    #[test]
    fn sampling_crossover_cpu_parallel_vs_gpu_serial() {
        // §3: "for a large number of shots, a CPU node with many cores may
        // have an advantage over one GPU."
        let m = model();
        let shots = 98_000_000u64; // the largest Table 2 row
        assert!(m.cpu_sampling(shots) < m.gpu_sampling(shots));
        // But the per-shot GPU cost is lower 1-vs-1 (no 128-way parallelism).
        assert!(m.gpu_sample_per_shot < m.cpu_sample_per_shot);
    }

    #[test]
    fn pennylane_slower_than_qgear_same_device() {
        let m = model();
        let empty = TrafficStats::default();
        // 500-gate QFT-ish circuit, fused to ~100 kernels by Q-Gear.
        let qgear = m.gpu_unitary(28, 8, 4, 100, &empty);
        let penny = m.pennylane_unitary(28, 8, 4, 500, &empty);
        assert!(penny.total() > 2.0 * qgear.total());
    }

    #[test]
    fn batch_of_one_prices_identically_to_solo() {
        let m = model();
        let empty = TrafficStats::default();
        let solo = m.gpu_unitary(20, 8, 1, 200, &empty);
        let batched = m.gpu_unitary_batched(20, 8, 1, 200, 1, &empty);
        assert_eq!(solo, batched);
    }

    #[test]
    fn batching_amortizes_launch_overhead_on_small_states() {
        // Serving-sized states (16-20 qubits) are launch-bound solo; a
        // 16-wide batch pays each launch once, so the per-member cost
        // collapses well past the paper-bench 5x throughput target.
        let m = model();
        for qubits in [16u32, 18, 20] {
            let speedup = m.batch_speedup(qubits, 8, 500, 16);
            assert!(
                speedup > 5.0,
                "{qubits} qubits: batch speedup {speedup:.1}x below target"
            );
        }
        // Large states are bandwidth-bound: compute scales with the
        // batch, so amortization fades toward (but never below) parity.
        let big = m.batch_speedup(30, 8, 500, 16);
        assert!((0.99..4.0).contains(&big), "30 qubits: {big:.2}x");
        // And speedup grows with occupancy on the launch-bound side.
        assert!(m.batch_speedup(16, 8, 500, 16) > m.batch_speedup(16, 8, 500, 4));
    }

    #[test]
    fn derived_planner_costs_prefer_pass_merging_on_phase_ladders() {
        // On the modeled A100, launch overhead dominates tiny states and
        // bandwidth dominates large ones — either way, one sweep pass per
        // segment beats one pass per kernel on QFT-shaped ladders.
        let costs = model().planner_costs();
        let mut c = qgear_ir::Circuit::new(6);
        for q in 0..5u32 {
            c.h(q);
            for t in (q + 1)..6 {
                c.cr1(0.5, q, t);
            }
        }
        let plan = qgear_statevec::plan(&c, 1, 12, true, &costs, 16).expect("plan");
        assert!(!plan.is_empty());
        let (_, _, sweeps) = plan.mode_histogram();
        assert!(sweeps >= 1, "bandwidth-rich device model should sweep the ladders");
        for seg in &plan.segments {
            let p = &seg.predicted;
            let chosen = p.of(seg.mode);
            assert!(chosen <= p.unfused && chosen <= p.fused && chosen <= p.sweep);
        }
    }
}
