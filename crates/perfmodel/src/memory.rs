//! Memory-capacity model.
//!
//! Fig. 4a's hard edges are memory walls, not performance cliffs:
//! the CPU node runs out of RAM at 34 qubits, a single 40 GB A100 tops
//! out at 32 qubits (fp32), and pooling 4 GPUs buys exactly two more
//! qubits ("adding only two additional qubits requires four times more
//! memory", §3). This module reproduces those limits from first
//! principles.

use crate::hardware::{CpuNodeSpec, GpuSpec};
use qgear_num::scalar::Precision;

/// Bytes per complex amplitude at a given precision.
pub const fn amp_bytes(precision: Precision) -> u64 {
    precision.bytes_per_amplitude() as u64
}

/// Bytes an `n`-qubit state vector occupies at the given precision.
///
/// This is the quantity the serving layer's admission control compares
/// against device memory to reject infeasible jobs *before* they queue
/// (the `RejectedInfeasible` arm of `qgear-serve`'s backpressure
/// contract).
pub const fn state_bytes(n: u32, precision: Precision) -> u128 {
    (1u128 << n) * amp_bytes(precision) as u128
}

/// Bytes an `n`-qubit stabilizer tableau occupies: `2n + 1` Pauli rows of
/// `2·⌈n/64⌉` packed 64-bit words plus one sign byte each — quadratic in
/// width instead of exponential, which is why the admission layer prices
/// Clifford jobs against this instead of [`state_bytes`]. Kept in sync
/// with `qgear_stabilizer::Tableau::memory_bytes` by a differential test
/// in `tests/backends.rs`.
pub const fn tableau_bytes(n: u32) -> u128 {
    let words = (n as u128).div_ceil(64);
    let words = if words == 0 { 1 } else { words };
    let rows = 2 * (n as u128) + 1;
    rows * words * 16 + rows
}

/// Aer needs scratch alongside the state (measurement buffers, OpenMP
/// working sets); 2.2× is a conservative envelope that reproduces the
/// observed 34-qubit ceiling on the 460 GB node.
pub const CPU_OVERHEAD_FACTOR: f64 = 2.2;

/// Largest register width the CPU node can simulate (Aer runs fp64).
pub fn max_qubits_cpu(cpu: &CpuNodeSpec) -> u32 {
    let mut n = 0u32;
    loop {
        let need = (1u128 << (n + 1)) as f64 * 16.0 * CPU_OVERHEAD_FACTOR;
        if need > cpu.memory_bytes as f64 {
            return n;
        }
        n += 1;
    }
}

/// Largest register width one GPU can hold at the given precision.
pub fn max_qubits_gpu(gpu: &GpuSpec, precision: Precision) -> u32 {
    let bytes = amp_bytes(precision) as u128;
    let mut n = 0u32;
    while (1u128 << (n + 1)) * bytes <= gpu.memory_bytes {
        n += 1;
    }
    n
}

/// Largest register width a pooled cluster of `devices = 2^p` GPUs can
/// hold: each extra device-index bit buys one qubit.
pub fn max_qubits_cluster(gpu: &GpuSpec, precision: Precision, devices: usize) -> u32 {
    assert!(devices.is_power_of_two());
    max_qubits_gpu(gpu, precision) + devices.trailing_zeros()
}

/// True if the target can hold an `n`-qubit state.
pub fn cluster_feasible(gpu: &GpuSpec, precision: Precision, devices: usize, n: u32) -> bool {
    n <= max_qubits_cluster(gpu, precision, devices)
}

/// Smallest power-of-two shard count (≥ 2) that partitions an `n`-qubit
/// state across identical workers of `worker_bytes` device memory each,
/// or `None` when no admissible count exists.
///
/// This is the serving layer's admission plan for jobs *beyond* the
/// single-worker memory wall: each shard holds a `2^(n-p)`-amplitude
/// slice (`p = log2(shards)`), so every doubling of the group buys one
/// qubit. Two constraints bound the search:
///
/// * the local slice must fit one worker (`state_bytes(n) / shards ≤
///   worker_bytes`), and
/// * the local width `n - p` must stay at least `min_local_width` —
///   fused kernels up to that many mixing operands must be remappable
///   onto local bit positions (see `qgear-cluster`'s layout planner).
///
/// Registers of 100+ qubits are unconditionally infeasible (the shift in
/// [`state_bytes`] would overflow, and no modelled farm approaches that
/// scale), mirroring the dense admission guard.
pub fn plan_shard_count(
    n: u32,
    precision: Precision,
    worker_bytes: u128,
    min_local_width: u32,
    max_shards: u32,
) -> Option<u32> {
    if n >= 100 {
        return None;
    }
    let total = state_bytes(n, precision);
    let mut shards: u32 = 2;
    while shards <= max_shards {
        let p = shards.trailing_zeros();
        if n < min_local_width.max(1) + p {
            // Wider groups only shrink the local slice further.
            return None;
        }
        if total / u128::from(shards) <= worker_bytes {
            return Some(shards);
        }
        shards = shards.checked_mul(2)?;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_node_caps_at_34_qubits() {
        // Fig. 4a: "all available CPU RAM is exhausted at 34 qubits".
        let cpu = CpuNodeSpec::perlmutter_cpu_node();
        assert_eq!(max_qubits_cpu(&cpu), 33);
        // 34 is the first width that *fails*: the paper plots the OOM point
        // at 34 — the attempt that exhausted RAM.
        let need_34 = (1u128 << 34) as f64 * 16.0 * CPU_OVERHEAD_FACTOR;
        assert!(need_34 > cpu.memory_bytes as f64);
    }

    #[test]
    fn single_a100_caps_at_32_qubits_fp32() {
        // §3: "a single A100 GPU with a RAM of 40 GB restricts the
        // simulable unitary to a maximum of 32 qubits".
        let gpu = GpuSpec::a100_40gb();
        assert_eq!(max_qubits_gpu(&gpu, Precision::Fp32), 32);
        assert_eq!(max_qubits_gpu(&gpu, Precision::Fp64), 31);
    }

    #[test]
    fn four_gpus_reach_34_qubits() {
        // §3: "this configuration enables the simulation of up to a
        // 34-qubit circuit".
        let gpu = GpuSpec::a100_40gb();
        assert_eq!(max_qubits_cluster(&gpu, Precision::Fp32, 4), 34);
        assert!(cluster_feasible(&gpu, Precision::Fp32, 4, 34));
        assert!(!cluster_feasible(&gpu, Precision::Fp32, 4, 35));
    }

    #[test]
    fn cluster_of_1024_reaches_42_qubits() {
        // Abstract: "simulations of up to 42 qubits on a cluster of 1024
        // GPUs with a single circuit spread over all the GPUs".
        let gpu = GpuSpec::a100_40gb();
        assert_eq!(max_qubits_cluster(&gpu, Precision::Fp32, 1024), 42);
    }

    #[test]
    fn tableau_bytes_polynomial_vs_state_exponential() {
        // 100 qubits: dense is astronomically infeasible, the tableau is
        // a few kilobytes.
        assert!(state_bytes(100, Precision::Fp32) > 1u128 << 100);
        assert!(tableau_bytes(100) < 10_000);
        // Monotone in width, quadratic-ish growth.
        assert!(tableau_bytes(128) > tableau_bytes(64));
        assert_eq!(tableau_bytes(0), 17);
    }

    #[test]
    fn shard_plan_picks_the_smallest_sufficient_group() {
        // 4-qubit fp64 state = 256 B. Workers offering 192 B each: two
        // shards of 128 B suffice; the planner must not over-provision.
        assert_eq!(plan_shard_count(4, Precision::Fp64, 192, 2, 64), Some(2));
        // 64-byte workers need four shards.
        assert_eq!(plan_shard_count(4, Precision::Fp64, 64, 2, 64), Some(4));
        // …but four shards leave a 2-qubit local slice, so a 3-wide
        // kernel floor rules the job out entirely.
        assert_eq!(plan_shard_count(4, Precision::Fp64, 64, 3, 64), None);
    }

    #[test]
    fn shard_plan_respects_the_group_cap_and_scale_guards() {
        // The group cap bounds the search even when memory would demand
        // more shards.
        assert_eq!(plan_shard_count(10, Precision::Fp64, 1024, 2, 2), None);
        assert_eq!(plan_shard_count(10, Precision::Fp64, 1024, 2, 64), Some(16));
        // 100+ qubits never shard (dense admission's overflow guard).
        assert_eq!(plan_shard_count(100, Precision::Fp32, u128::MAX, 2, 64), None);
        // A job that fits one worker still plans a (≥ 2)-shard group when
        // asked — the caller gates on dense infeasibility, not this fn.
        assert_eq!(plan_shard_count(3, Precision::Fp64, 1 << 20, 2, 64), Some(2));
    }

    #[test]
    fn amp_bytes_by_precision() {
        assert_eq!(amp_bytes(Precision::Fp32), 8);
        assert_eq!(amp_bytes(Precision::Fp64), 16);
    }

    #[test]
    fn state_bytes_matches_capacity_model() {
        // 32 qubits fp32 = 34.4 GB: fits a 40 GB A100; 33 does not.
        assert_eq!(state_bytes(32, Precision::Fp32), 8 << 32);
        let gpu = GpuSpec::a100_40gb();
        assert!(state_bytes(32, Precision::Fp32) <= gpu.memory_bytes);
        assert!(state_bytes(33, Precision::Fp32) > gpu.memory_bytes);
    }
}
