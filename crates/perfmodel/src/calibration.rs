//! Calibration rationale and fit helpers.
//!
//! # Constant provenance
//!
//! | Constant | Value | Anchor |
//! |---|---|---|
//! | A100 bandwidth | 1555 / 2039 GB/s | §2.3 (40 GB / 80 GB HBM2e) |
//! | GPU sweep efficiency | 0.75 | typical fused state-vector sweeps |
//! | occupancy knee | 64 MiB | short sweeps are launch/latency-bound |
//! | CPU node bandwidth | 409.6 GB/s | §2.3 (2 × 204.8 GB/s) |
//! | CPU sweep efficiency | 0.11 | tuned: GPU-vs-CPU speedup ≈ 400× at 32 q (Fig. 4a) |
//! | qiskit_per_gate | 8 ms | tuned: Python circuit handling dominates small-state runs (Fig. 5 small images ≈ 100×) |
//! | pennylane_per_gate | 5 ms | §4: per-gate high-level→kernel transpile latency |
//! | NVLink pair bw | 80 GB/s | §2.3: 4 × 25 GB/s/direction links |
//! | Slingshot pair bw | 21 GB/s | §2.3: 25 GB/s NIC minus MPI overhead |
//! | inter-rack pair bw | 6 GB/s, contention (2/racks)² | tuned: Fig. 4b reversal at 1024 GPUs / 40 qubits |
//! | cpu_sample_per_shot | 8 µs ÷ 128 cores | §3: CPU sampling parallel across all cores |
//! | gpu_sample_per_shot | 0.2 µs serial | §3: single-GPU serial sampling; makes the Fig. 5 speedup shrink with image size |
//!
//! # Shape checks
//!
//! [`fit_exponential`] fits `t(n) = a · 2^(b·n)` to a measured or modeled
//! series; the paper's baseline scaling claim is `b ≈ 1` (Fig. 4a: "both
//! cases follow a similar exponential scaling of execution time ~2^n").

/// Least-squares fit of `t = a · 2^(b n)` on `(n, t)` points with `t > 0`.
/// Returns `(a, b)`. Needs at least two distinct `n` values.
pub fn fit_exponential(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    // Linear regression of log2(t) on n.
    let k = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1.log2()).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1.log2()).sum();
    let denom = k * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "need at least two distinct n values");
    let b = (k * sxy - sx * sy) / denom;
    let log_a = (sy - b * sx) / k;
    (log_a.exp2(), b)
}

/// Coefficient of determination (R²) of the exponential fit — how well a
/// series matches `a · 2^(b n)`.
pub fn fit_r_squared(points: &[(f64, f64)]) -> f64 {
    let (a, b) = fit_exponential(points);
    let mean: f64 = points.iter().map(|p| p.1.log2()).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points.iter().map(|p| (p.1.log2() - mean).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1.log2() - (a.log2() + b * p.0)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Relative speedup of series `base` over series `other` at matching
/// indices, geometric-mean aggregated — the "by roughly what factor"
/// statistic EXPERIMENTS.md reports.
pub fn geometric_mean_speedup(base: &[f64], other: &[f64]) -> f64 {
    assert_eq!(base.len(), other.len());
    assert!(!base.is_empty());
    let log_sum: f64 = base
        .iter()
        .zip(other)
        .map(|(&b, &o)| (b / o).ln())
        .sum();
    (log_sum / base.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_fit_recovers_parameters() {
        // t = 3 · 2^(0.9 n)
        let points: Vec<(f64, f64)> =
            (10..20).map(|n| (n as f64, 3.0 * (0.9 * n as f64).exp2())).collect();
        let (a, b) = fit_exponential(&points);
        assert!((a - 3.0).abs() < 1e-9, "a = {a}");
        assert!((b - 0.9).abs() < 1e-12, "b = {b}");
        assert!(fit_r_squared(&points) > 0.999_999);
    }

    #[test]
    fn fit_on_noisy_data_still_close() {
        let points: Vec<(f64, f64)> = (20..30)
            .map(|n| {
                let noise = 1.0 + 0.05 * ((n * 2654435761u64 % 100) as f64 / 100.0 - 0.5);
                (n as f64, 2.0f64.powf(n as f64) * noise)
            })
            .collect();
        let (_, b) = fit_exponential(&points);
        assert!((b - 1.0).abs() < 0.02, "b = {b}");
    }

    #[test]
    #[should_panic(expected = "two distinct")]
    fn degenerate_fit_panics() {
        fit_exponential(&[(5.0, 1.0), (5.0, 2.0)]);
    }

    #[test]
    fn geometric_mean_speedup_basics() {
        let cpu = [400.0, 800.0, 1600.0];
        let gpu = [1.0, 2.0, 4.0];
        assert!((geometric_mean_speedup(&cpu, &gpu) - 400.0).abs() < 1e-9);
    }
}
