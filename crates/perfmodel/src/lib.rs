//! Calibrated analytic performance model of the paper's testbed.
//!
//! The reproduction runs on a 1-core VM; the paper ran on Perlmutter
//! (AMD EPYC-7763 CPU nodes, NVIDIA A100 GPU nodes, NVLink-3, HPE
//! Slingshot-11 — §2.3). This crate converts the *exact operation counts*
//! produced by the real engines (`qgear-statevec` kernel/byte counters,
//! `qgear-cluster` dry-run traffic plans) into projected wall-clock on
//! that hardware:
//!
//! * [`hardware`] — device and link constants taken from §2.3, with the
//!   documented effective-efficiency factors;
//! * [`cost`] — the timing formulas (bandwidth-bound kernel sweeps, launch
//!   overheads, per-class exchange costs, straggler and occupancy effects,
//!   sampling);
//! * [`project`] — end-to-end projection: circuit → fuse → dry-run plan →
//!   time breakdown per execution target;
//! * [`memory`] — feasibility limits, reproducing the paper's capacity
//!   edges (CPU node 34 q, one A100 32 q, 4×A100 34 q, 1024×A100 42 q);
//! * [`calibration`] — exponential-fit helpers and the rationale for every
//!   tuned constant.
//!
//! The model is a *shape* instrument: who wins, by what factor, where the
//! memory walls and crossovers sit — not a cycle-accurate twin.

pub mod calibration;
pub mod cost;
pub mod hardware;
pub mod memory;
pub mod project;

pub use cost::{CostModel, TimeBreakdown};
pub use hardware::{CpuNodeSpec, GpuSpec, LinkSpec};
pub use project::{project_circuit, ModelTarget};
