//! Error type for the container.

use std::fmt;

/// Errors raised by tree navigation, typed access, and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H5Error {
    /// No node at the given path.
    NotFound(String),
    /// Expected a group but found a dataset (or vice versa).
    WrongNodeKind(String),
    /// A path component was empty ("a//b") or the path itself was empty.
    BadPath(String),
    /// Typed accessor called on a dataset of a different dtype.
    DtypeMismatch {
        /// Dtype stored in the dataset.
        stored: &'static str,
        /// Dtype the accessor expected.
        requested: &'static str,
    },
    /// Shape product does not match the element count.
    ShapeMismatch {
        /// Number of elements provided.
        elements: usize,
        /// Product of the requested shape.
        shape_product: usize,
    },
    /// Attribute not present on the node.
    AttrNotFound(String),
    /// Byte stream failed structural validation.
    Malformed(String),
    /// Unsupported on-disk format version.
    UnsupportedVersion(u16),
    /// Underlying filesystem error (stringified to keep the type `Clone`).
    Io(String),
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::NotFound(p) => write!(f, "no node at '{p}'"),
            H5Error::WrongNodeKind(p) => write!(f, "wrong node kind at '{p}'"),
            H5Error::BadPath(p) => write!(f, "bad path '{p}'"),
            H5Error::DtypeMismatch { stored, requested } => {
                write!(f, "dtype mismatch: stored {stored}, requested {requested}")
            }
            H5Error::ShapeMismatch { elements, shape_product } => {
                write!(f, "shape product {shape_product} != element count {elements}")
            }
            H5Error::AttrNotFound(n) => write!(f, "attribute '{n}' not found"),
            H5Error::Malformed(m) => write!(f, "malformed container: {m}"),
            H5Error::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            H5Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for H5Error {}
