//! Typed datasets and attributes.

use crate::error::H5Error;

/// Element type of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Dtype {
    /// Unsigned 8-bit (gate-kind tags, raw image pixels).
    U8 = 0,
    /// Signed 32-bit (control/target indices, `-1` sentinel included).
    I32 = 1,
    /// Signed 64-bit (shot counts).
    I64 = 2,
    /// Unsigned 32-bit (gate counts, qubit counts).
    U32 = 3,
    /// 32-bit float.
    F32 = 4,
    /// 64-bit float (gate parameters, angles).
    F64 = 5,
}

impl Dtype {
    /// Bytes per element.
    pub const fn size(self) -> usize {
        match self {
            Dtype::U8 => 1,
            Dtype::I32 | Dtype::U32 | Dtype::F32 => 4,
            Dtype::I64 | Dtype::F64 => 8,
        }
    }

    /// Stable tag for serialization.
    pub const fn tag(self) -> u8 {
        self as u8
    }

    /// Decode a stable tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Dtype::U8,
            1 => Dtype::I32,
            2 => Dtype::I64,
            3 => Dtype::U32,
            4 => Dtype::F32,
            5 => Dtype::F64,
            _ => return None,
        })
    }

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            Dtype::U8 => "u8",
            Dtype::I32 => "i32",
            Dtype::I64 => "i64",
            Dtype::U32 => "u32",
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }
}

/// A typed n-dimensional array stored as little-endian bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Element type.
    pub dtype: Dtype,
    /// Dimensions; the element count is the product.
    pub shape: Vec<u64>,
    /// Raw little-endian element bytes.
    pub data: Vec<u8>,
    /// Attributes attached to this dataset.
    pub attrs: std::collections::BTreeMap<String, Attr>,
}

macro_rules! dataset_typed {
    ($from:ident, $as:ident, $t:ty, $dtype:expr) => {
        /// Build a dataset of this element type; panics if `shape` does not
        /// multiply out to the element count.
        pub fn $from(values: &[$t], shape: &[u64]) -> Dataset {
            let product: u64 = shape.iter().product();
            assert_eq!(
                product as usize,
                values.len(),
                "shape {:?} does not match {} elements",
                shape,
                values.len()
            );
            let mut data = Vec::with_capacity(values.len() * std::mem::size_of::<$t>());
            for v in values {
                data.extend_from_slice(&v.to_le_bytes());
            }
            Dataset {
                dtype: $dtype,
                shape: shape.to_vec(),
                data,
                attrs: Default::default(),
            }
        }

        /// Decode the dataset as this element type.
        pub fn $as(&self) -> Result<Vec<$t>, H5Error> {
            if self.dtype != $dtype {
                return Err(H5Error::DtypeMismatch {
                    stored: self.dtype.name(),
                    requested: $dtype.name(),
                });
            }
            const W: usize = std::mem::size_of::<$t>();
            Ok(self
                .data
                .chunks_exact(W)
                .map(|c| <$t>::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
    };
}

impl Dataset {
    dataset_typed!(from_u8, as_u8, u8, Dtype::U8);
    dataset_typed!(from_i32, as_i32, i32, Dtype::I32);
    dataset_typed!(from_i64, as_i64, i64, Dtype::I64);
    dataset_typed!(from_u32, as_u32, u32, Dtype::U32);
    dataset_typed!(from_f32, as_f32, f32, Dtype::F32);
    dataset_typed!(from_f64, as_f64, f64, Dtype::F64);

    /// Element count (shape product).
    pub fn len(&self) -> usize {
        self.shape.iter().product::<u64>() as usize
    }

    /// True if the dataset has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Validate that shape, dtype, and byte length agree (used after
    /// deserialization).
    pub fn validate(&self) -> Result<(), H5Error> {
        let expect = self.len() * self.dtype.size();
        if expect != self.data.len() {
            return Err(H5Error::ShapeMismatch {
                elements: self.data.len() / self.dtype.size().max(1),
                shape_product: self.len(),
            });
        }
        Ok(())
    }
}

/// A scalar or string metadata attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Signed integer.
    Int(i64),
    /// Double float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Integer list (e.g. image dimensions).
    IntVec(Vec<i64>),
}

impl Attr {
    /// Integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float value, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attr::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Integer list, if this is an `IntVec`.
    pub fn as_int_vec(&self) -> Option<&[i64]> {
        match self {
            Attr::IntVec(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrips() {
        let d = Dataset::from_f64(&[1.5, -2.25, 0.0], &[3]);
        assert_eq!(d.as_f64().unwrap(), vec![1.5, -2.25, 0.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.byte_len(), 24);

        let d = Dataset::from_i32(&[-1, 7], &[2]);
        assert_eq!(d.as_i32().unwrap(), vec![-1, 7]);

        let d = Dataset::from_u8(&[0, 255, 128], &[3]);
        assert_eq!(d.as_u8().unwrap(), vec![0, 255, 128]);
    }

    #[test]
    fn multidimensional_shapes() {
        let vals: Vec<u32> = (0..24).collect();
        let d = Dataset::from_u32(&vals, &[2, 3, 4]);
        assert_eq!(d.len(), 24);
        assert_eq!(d.shape, vec![2, 3, 4]);
        assert_eq!(d.as_u32().unwrap(), vals);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        Dataset::from_u8(&[1, 2, 3], &[2]);
    }

    #[test]
    fn dtype_mismatch_on_access() {
        let d = Dataset::from_f32(&[1.0], &[1]);
        assert_eq!(
            d.as_f64().unwrap_err(),
            H5Error::DtypeMismatch { stored: "f32", requested: "f64" }
        );
    }

    #[test]
    fn dtype_tags_roundtrip() {
        for dt in [Dtype::U8, Dtype::I32, Dtype::I64, Dtype::U32, Dtype::F32, Dtype::F64] {
            assert_eq!(Dtype::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(Dtype::from_tag(99), None);
    }

    #[test]
    fn validate_catches_corrupt_length() {
        let mut d = Dataset::from_f64(&[1.0, 2.0], &[2]);
        assert!(d.validate().is_ok());
        d.data.pop();
        assert!(d.validate().is_err());
    }

    #[test]
    fn attr_accessors() {
        assert_eq!(Attr::Int(5).as_int(), Some(5));
        assert_eq!(Attr::Int(5).as_float(), None);
        assert_eq!(Attr::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Attr::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attr::IntVec(vec![1, 2]).as_int_vec(), Some(&[1i64, 2][..]));
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_f64(&[], &[0]);
        assert!(d.is_empty());
        assert!(d.validate().is_ok());
    }
}
