//! `qgear-hdf5lite`: a pure-Rust hierarchical data container.
//!
//! The paper stores tensor-encoded circuits in HDF5 (§2.1, Appendix C),
//! relying on three properties: **hierarchical storage** (groups, datasets,
//! metadata attributes), **scalability** (chunked I/O), and **compression**
//! (lossless, ~50 % on their datasets). The real HDF5 C library is not a
//! reasonable dependency here, so this crate implements a compatible-in-
//! spirit container with exactly those three properties:
//!
//! * [`H5File`] — an in-memory tree of groups, datasets, and attributes,
//!   addressed by `/`-separated paths;
//! * [`Dataset`] — typed n-dimensional arrays (`u8`/`i32`/`i64`/`u32`/
//!   `f32`/`f64`) stored as little-endian bytes;
//! * [`codec`] — a byte-shuffle filter (HDF5's *shuffle*) followed by
//!   run-length coding, applied per 64 KiB chunk; this reproduces the
//!   Appendix C compression behaviour on float-heavy tensors;
//! * a self-describing binary [`mod@format`] with a magic header, format
//!   version, per-chunk sizes, and a trailing CRC-32.

pub mod codec;
pub mod dataset;
pub mod error;
pub mod format;
pub mod tree;

pub use codec::Compression;
pub use dataset::{Attr, Dataset, Dtype};
pub use error::H5Error;
pub use tree::{Group, Node};

use std::path::Path;

/// A hierarchical container file: the root [`Group`] plus save/load glue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct H5File {
    /// Root group ("/").
    pub root: Group,
}

impl H5File {
    /// Create an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a group at `path`, creating intermediate groups as needed.
    /// Idempotent for existing groups; errors if a dataset blocks the path.
    pub fn create_group(&mut self, path: &str) -> Result<(), H5Error> {
        self.root.create_group(path)
    }

    /// Write (or overwrite) a dataset at `path`; intermediate groups are
    /// created automatically.
    pub fn write_dataset(&mut self, path: &str, ds: Dataset) -> Result<(), H5Error> {
        self.root.write_dataset(path, ds)
    }

    /// Fetch a dataset by path.
    pub fn dataset(&self, path: &str) -> Result<&Dataset, H5Error> {
        self.root.dataset(path)
    }

    /// Set an attribute on the group or dataset at `path`.
    pub fn set_attr(&mut self, path: &str, name: &str, attr: Attr) -> Result<(), H5Error> {
        self.root.set_attr(path, name, attr)
    }

    /// Read an attribute from the group or dataset at `path`.
    pub fn attr(&self, path: &str, name: &str) -> Result<&Attr, H5Error> {
        self.root.attr(path, name)
    }

    /// Child names of the group at `path` (sorted; datasets and groups).
    pub fn list(&self, path: &str) -> Result<Vec<String>, H5Error> {
        self.root.list(path)
    }

    /// True if a node (group or dataset) exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.root.node(path).is_ok()
    }

    /// Serialize to bytes with the given chunk compression.
    pub fn to_bytes(&self, compression: Compression) -> Vec<u8> {
        format::write(self, compression)
    }

    /// Deserialize from bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, H5Error> {
        format::read(data)
    }

    /// Save to a file on disk.
    pub fn save(&self, path: impl AsRef<Path>, compression: Compression) -> Result<(), H5Error> {
        std::fs::write(path, self.to_bytes(compression)).map_err(|e| H5Error::Io(e.to_string()))
    }

    /// Load from a file on disk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, H5Error> {
        let data = std::fs::read(path).map_err(|e| H5Error::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }

    /// Sum of raw (uncompressed) dataset payload bytes — the denominator of
    /// the Appendix C compression ratio.
    pub fn payload_bytes(&self) -> usize {
        self.root.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_roundtrip_through_disk() {
        let mut f = H5File::new();
        f.create_group("exp/run1").unwrap();
        f.write_dataset("exp/run1/angles", Dataset::from_f64(&[0.1, 0.2, 0.3], &[3]))
            .unwrap();
        f.set_attr("exp/run1", "qubits", Attr::Int(30)).unwrap();
        f.set_attr("exp/run1/angles", "unit", Attr::Str("rad".into())).unwrap();

        let dir = std::env::temp_dir().join("qgear_h5lite_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.h5l");
        f.save(&path, Compression::ShuffleRle).unwrap();
        let g = H5File::open(&path).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.attr("exp/run1", "qubits").unwrap(), &Attr::Int(30));
        assert_eq!(g.dataset("exp/run1/angles").unwrap().as_f64().unwrap(), vec![0.1, 0.2, 0.3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exists_and_list() {
        let mut f = H5File::new();
        f.write_dataset("a/b/c", Dataset::from_u8(&[1, 2], &[2])).unwrap();
        assert!(f.exists("a"));
        assert!(f.exists("a/b/c"));
        assert!(!f.exists("a/x"));
        assert_eq!(f.list("a").unwrap(), vec!["b".to_string()]);
    }
}
