//! Binary on-disk format.
//!
//! Self-describing layout (all little-endian):
//!
//! ```text
//! magic    [4] = "H5L1"
//! version  u16 = 1
//! codec    u8  — Compression tag used for every dataset
//! root group, recursively:
//!   node tag u8: 0 = group, 1 = dataset
//!   group:   attrs, child count u32, (name, node)*
//!   dataset: attrs, dtype u8, ndim u8, dims u64*ndim,
//!            chunk count u32, (chunk len u32, chunk bytes)*
//! crc32    u32 over everything before it
//! ```

use crate::codec::{self, Compression};
use crate::dataset::{Attr, Dataset, Dtype};
use crate::error::H5Error;
use crate::tree::{Group, Node};
use crate::H5File;
use bytes::{Buf, BufMut, BytesMut};
use std::collections::BTreeMap;

/// File magic.
pub const MAGIC: &[u8; 4] = b"H5L1";
/// Format version.
pub const VERSION: u16 = 1;

/// Serialize a container.
pub fn write(file: &H5File, compression: Compression) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(file.payload_bytes() / 2 + 1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(compression.tag());
    write_group(&mut buf, &file.root, compression);
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

fn write_str(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    buf.put_u16_le(bytes.len().min(u16::MAX as usize) as u16);
    buf.put_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

fn write_attrs(buf: &mut BytesMut, attrs: &BTreeMap<String, Attr>) {
    buf.put_u16_le(attrs.len() as u16);
    for (name, attr) in attrs {
        write_str(buf, name);
        match attr {
            Attr::Int(v) => {
                buf.put_u8(0);
                buf.put_i64_le(*v);
            }
            Attr::Float(v) => {
                buf.put_u8(1);
                buf.put_f64_le(*v);
            }
            Attr::Str(v) => {
                buf.put_u8(2);
                write_str(buf, v);
            }
            Attr::IntVec(v) => {
                buf.put_u8(3);
                buf.put_u32_le(v.len() as u32);
                for x in v {
                    buf.put_i64_le(*x);
                }
            }
        }
    }
}

fn write_group(buf: &mut BytesMut, group: &Group, compression: Compression) {
    buf.put_u8(0);
    write_attrs(buf, &group.attrs);
    buf.put_u32_le(group.children.len() as u32);
    for (name, node) in &group.children {
        write_str(buf, name);
        match node {
            Node::Group(g) => write_group(buf, g, compression),
            Node::Dataset(d) => write_dataset(buf, d, compression),
        }
    }
}

fn write_dataset(buf: &mut BytesMut, ds: &Dataset, compression: Compression) {
    buf.put_u8(1);
    write_attrs(buf, &ds.attrs);
    buf.put_u8(ds.dtype.tag());
    buf.put_u8(ds.shape.len() as u8);
    for &d in &ds.shape {
        buf.put_u64_le(d);
    }
    let chunks = codec::compress_payload(&ds.data, compression, ds.dtype.size());
    buf.put_u32_le(chunks.len() as u32);
    for c in &chunks {
        buf.put_u32_le(c.len() as u32);
        buf.put_slice(c);
    }
}

/// Deserialize a container.
pub fn read(data: &[u8]) -> Result<H5File, H5Error> {
    if data.len() < 15 {
        return Err(H5Error::Malformed("shorter than minimal header".into()));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(H5Error::Malformed("CRC mismatch".into()));
    }
    let mut cur = body;
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(H5Error::Malformed("bad magic".into()));
    }
    let version = cur.get_u16_le();
    if version != VERSION {
        return Err(H5Error::UnsupportedVersion(version));
    }
    let _codec_tag = cur.get_u8(); // informational; chunks are self-tagged
    let root = match read_node(&mut cur)? {
        Node::Group(g) => g,
        Node::Dataset(_) => return Err(H5Error::Malformed("root is a dataset".into())),
    };
    if cur.has_remaining() {
        return Err(H5Error::Malformed(format!("{} trailing bytes", cur.remaining())));
    }
    Ok(H5File { root })
}

fn need(cur: &&[u8], n: usize) -> Result<(), H5Error> {
    if cur.remaining() < n {
        Err(H5Error::Malformed("unexpected end of stream".into()))
    } else {
        Ok(())
    }
}

fn read_str(cur: &mut &[u8]) -> Result<String, H5Error> {
    need(cur, 2)?;
    let len = cur.get_u16_le() as usize;
    need(cur, len)?;
    let s = std::str::from_utf8(&cur[..len])
        .map_err(|_| H5Error::Malformed("non-UTF-8 string".into()))?
        .to_owned();
    cur.advance(len);
    Ok(s)
}

fn read_attrs(cur: &mut &[u8]) -> Result<BTreeMap<String, Attr>, H5Error> {
    need(cur, 2)?;
    let count = cur.get_u16_le();
    let mut attrs = BTreeMap::new();
    for _ in 0..count {
        let name = read_str(cur)?;
        need(cur, 1)?;
        let attr = match cur.get_u8() {
            0 => {
                need(cur, 8)?;
                Attr::Int(cur.get_i64_le())
            }
            1 => {
                need(cur, 8)?;
                Attr::Float(cur.get_f64_le())
            }
            2 => Attr::Str(read_str(cur)?),
            3 => {
                need(cur, 4)?;
                let n = cur.get_u32_le() as usize;
                need(cur, n * 8)?;
                Attr::IntVec((0..n).map(|_| cur.get_i64_le()).collect())
            }
            t => return Err(H5Error::Malformed(format!("unknown attr tag {t}"))),
        };
        attrs.insert(name, attr);
    }
    Ok(attrs)
}

fn read_node(cur: &mut &[u8]) -> Result<Node, H5Error> {
    need(cur, 1)?;
    match cur.get_u8() {
        0 => {
            let attrs = read_attrs(cur)?;
            need(cur, 4)?;
            let count = cur.get_u32_le();
            let mut children = BTreeMap::new();
            for _ in 0..count {
                let name = read_str(cur)?;
                let node = read_node(cur)?;
                children.insert(name, node);
            }
            Ok(Node::Group(Group { children, attrs }))
        }
        1 => {
            let attrs = read_attrs(cur)?;
            need(cur, 2)?;
            let dtype = Dtype::from_tag(cur.get_u8())
                .ok_or_else(|| H5Error::Malformed("unknown dtype".into()))?;
            let ndim = cur.get_u8() as usize;
            need(cur, ndim * 8 + 4)?;
            let shape: Vec<u64> = (0..ndim).map(|_| cur.get_u64_le()).collect();
            let nchunks = cur.get_u32_le() as usize;
            let mut chunks = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                need(cur, 4)?;
                let len = cur.get_u32_le() as usize;
                need(cur, len)?;
                chunks.push(cur[..len].to_vec());
                cur.advance(len);
            }
            let data = codec::decompress_payload(&chunks, dtype.size())
                .ok_or_else(|| H5Error::Malformed("chunk decompression failed".into()))?;
            let ds = Dataset { dtype, shape, data, attrs };
            ds.validate()?;
            Ok(Node::Dataset(ds))
        }
        t => Err(H5Error::Malformed(format!("unknown node tag {t}"))),
    }
}

/// CRC-32 (IEEE), bitwise. Duplicated from `qgear-ir`'s QPY-lite on purpose:
/// both formats must stay self-contained and dependency-free of each other.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> H5File {
        let mut f = H5File::new();
        f.set_attr("", "creator", Attr::Str("qgear".into())).unwrap();
        f.create_group("circuits/batch0").unwrap();
        f.write_dataset(
            "circuits/batch0/gate_type",
            Dataset::from_u8(&[0, 1, 2, 3, 3, 4], &[6]),
        )
        .unwrap();
        f.write_dataset(
            "circuits/batch0/param",
            Dataset::from_f64(&[0.1, 0.0, 0.0, 1.25, 0.0, 0.0], &[2, 3]),
        )
        .unwrap();
        f.set_attr("circuits/batch0", "num_qubits", Attr::Int(5)).unwrap();
        f.set_attr("circuits", "dims", Attr::IntVec(vec![64, 80])).unwrap();
        f.write_dataset("meta/shots", Dataset::from_i64(&[3_000_000], &[1])).unwrap();
        f
    }

    #[test]
    fn roundtrip_all_codecs() {
        let f = sample_file();
        for codec in [Compression::None, Compression::Rle, Compression::ShuffleRle] {
            let bytes = write(&f, codec);
            let g = read(&bytes).unwrap();
            assert_eq!(f, g, "{codec:?}");
        }
    }

    #[test]
    fn empty_file_roundtrip() {
        let f = H5File::new();
        let bytes = write(&f, Compression::ShuffleRle);
        assert_eq!(read(&bytes).unwrap(), f);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = write(&sample_file(), Compression::ShuffleRle);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(read(&bytes), Err(H5Error::Malformed(_))));
    }

    #[test]
    fn truncation_detected() {
        let bytes = write(&sample_file(), Compression::None);
        for cut in [1usize, 5, 17, bytes.len() - 10] {
            assert!(read(&bytes[..bytes.len() - cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_version_detected() {
        let mut bytes = write(&sample_file(), Compression::None);
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(read(&bytes), Err(H5Error::UnsupportedVersion(7)));
    }

    #[test]
    fn compression_shrinks_padded_tensors() {
        // Mimic the Appendix C scenario: a large zero-padded parameter
        // tensor. ShuffleRle must save at least 50 %.
        let mut f = H5File::new();
        let mut params = vec![0.0f64; 50_000];
        for (i, p) in params.iter_mut().take(3_000).enumerate() {
            *p = (i as f64) * 0.001;
        }
        let n = params.len() as u64;
        f.write_dataset("t/param", Dataset::from_f64(&params, &[n])).unwrap();
        let raw = write(&f, Compression::None).len();
        let packed = write(&f, Compression::ShuffleRle).len();
        assert!(
            packed * 2 < raw,
            "expected >=50% compression: {packed} vs {raw}"
        );
        assert_eq!(read(&write(&f, Compression::ShuffleRle)).unwrap(), f);
    }

    #[test]
    fn large_multichunk_dataset_roundtrip() {
        let mut f = H5File::new();
        let data: Vec<f32> = (0..100_000).map(|i| (i % 777) as f32 * 0.5).collect();
        f.write_dataset("big", Dataset::from_f32(&data, &[100_000])).unwrap();
        let bytes = write(&f, Compression::ShuffleRle);
        let g = read(&bytes).unwrap();
        assert_eq!(g.dataset("big").unwrap().as_f32().unwrap(), data);
    }
}
