//! The group/dataset tree and path navigation.

use crate::dataset::{Attr, Dataset};
use crate::error::H5Error;
use std::collections::BTreeMap;

/// A node in the tree: either a subgroup or a dataset leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Subgroup.
    Group(Group),
    /// Dataset leaf.
    Dataset(Dataset),
}

/// A group: named children plus attributes. `BTreeMap` keeps child order
/// deterministic, which makes serialization byte-stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Group {
    /// Child nodes by name.
    pub children: BTreeMap<String, Node>,
    /// Attributes attached to this group.
    pub attrs: BTreeMap<String, Attr>,
}

/// Split a path into validated components.
fn components(path: &str) -> Result<Vec<&str>, H5Error> {
    let trimmed = path.trim_matches('/');
    if trimmed.is_empty() {
        return Ok(Vec::new()); // the root itself
    }
    let parts: Vec<&str> = trimmed.split('/').collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(H5Error::BadPath(path.to_owned()));
    }
    Ok(parts)
}

impl Group {
    /// Navigate to the node at `path` ("" or "/" is the root group, which
    /// is not addressable as a `Node`; use group methods directly).
    pub fn node(&self, path: &str) -> Result<&Node, H5Error> {
        let parts = components(path)?;
        if parts.is_empty() {
            return Err(H5Error::BadPath("root is not a node".into()));
        }
        let mut group = self;
        for (i, part) in parts.iter().enumerate() {
            let child = group
                .children
                .get(*part)
                .ok_or_else(|| H5Error::NotFound(path.to_owned()))?;
            if i == parts.len() - 1 {
                return Ok(child);
            }
            match child {
                Node::Group(g) => group = g,
                Node::Dataset(_) => return Err(H5Error::WrongNodeKind(path.to_owned())),
            }
        }
        unreachable!()
    }

    fn node_mut(&mut self, path: &str) -> Result<&mut Node, H5Error> {
        let parts = components(path)?;
        if parts.is_empty() {
            return Err(H5Error::BadPath("root is not a node".into()));
        }
        let mut group = self;
        for (i, part) in parts.iter().enumerate() {
            let child = group
                .children
                .get_mut(*part)
                .ok_or_else(|| H5Error::NotFound(path.to_owned()))?;
            if i == parts.len() - 1 {
                return Ok(child);
            }
            match child {
                Node::Group(g) => group = g,
                Node::Dataset(_) => return Err(H5Error::WrongNodeKind(path.to_owned())),
            }
        }
        unreachable!()
    }

    /// Navigate to (or create) the group at `path`.
    fn group_mut_creating(&mut self, parts: &[&str], full: &str) -> Result<&mut Group, H5Error> {
        let mut group = self;
        for part in parts {
            let child = group
                .children
                .entry((*part).to_owned())
                .or_insert_with(|| Node::Group(Group::default()));
            match child {
                Node::Group(g) => group = g,
                Node::Dataset(_) => return Err(H5Error::WrongNodeKind(full.to_owned())),
            }
        }
        Ok(group)
    }

    /// Create a group (and intermediates) at `path`. Idempotent.
    pub fn create_group(&mut self, path: &str) -> Result<(), H5Error> {
        let parts = components(path)?;
        self.group_mut_creating(&parts, path).map(|_| ())
    }

    /// Write (or overwrite) a dataset at `path`, creating parent groups.
    pub fn write_dataset(&mut self, path: &str, ds: Dataset) -> Result<(), H5Error> {
        let parts = components(path)?;
        let (&name, parents) = parts
            .split_last()
            .ok_or_else(|| H5Error::BadPath(path.to_owned()))?;
        let group = self.group_mut_creating(parents, path)?;
        if let Some(Node::Group(_)) = group.children.get(name) {
            return Err(H5Error::WrongNodeKind(path.to_owned()));
        }
        group.children.insert(name.to_owned(), Node::Dataset(ds));
        Ok(())
    }

    /// Fetch a dataset at `path`.
    pub fn dataset(&self, path: &str) -> Result<&Dataset, H5Error> {
        match self.node(path)? {
            Node::Dataset(d) => Ok(d),
            Node::Group(_) => Err(H5Error::WrongNodeKind(path.to_owned())),
        }
    }

    /// Set an attribute on the node at `path` ("" addresses the root group).
    pub fn set_attr(&mut self, path: &str, name: &str, attr: Attr) -> Result<(), H5Error> {
        if components(path)?.is_empty() {
            self.attrs.insert(name.to_owned(), attr);
            return Ok(());
        }
        match self.node_mut(path)? {
            Node::Group(g) => g.attrs.insert(name.to_owned(), attr),
            Node::Dataset(d) => d.attrs.insert(name.to_owned(), attr),
        };
        Ok(())
    }

    /// Read an attribute from the node at `path`.
    pub fn attr(&self, path: &str, name: &str) -> Result<&Attr, H5Error> {
        let attrs = if components(path)?.is_empty() {
            &self.attrs
        } else {
            match self.node(path)? {
                Node::Group(g) => &g.attrs,
                Node::Dataset(d) => &d.attrs,
            }
        };
        attrs.get(name).ok_or_else(|| H5Error::AttrNotFound(name.to_owned()))
    }

    /// Sorted child names of the group at `path`.
    pub fn list(&self, path: &str) -> Result<Vec<String>, H5Error> {
        let group = if components(path)?.is_empty() {
            self
        } else {
            match self.node(path)? {
                Node::Group(g) => g,
                Node::Dataset(_) => return Err(H5Error::WrongNodeKind(path.to_owned())),
            }
        };
        Ok(group.children.keys().cloned().collect())
    }

    /// Total raw dataset bytes in this subtree.
    pub fn payload_bytes(&self) -> usize {
        self.children
            .values()
            .map(|n| match n {
                Node::Group(g) => g.payload_bytes(),
                Node::Dataset(d) => d.byte_len(),
            })
            .sum()
    }

    /// Visit every dataset in the subtree with its full path (depth-first,
    /// sorted). Used by the serializer and by integrity checks.
    pub fn walk_datasets<'a>(&'a self, prefix: &str, visit: &mut dyn FnMut(String, &'a Dataset)) {
        for (name, node) in &self.children {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            match node {
                Node::Group(g) => g.walk_datasets(&path, visit),
                Node::Dataset(d) => visit(path, d),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_nested_groups_idempotent() {
        let mut g = Group::default();
        g.create_group("a/b/c").unwrap();
        g.create_group("a/b").unwrap(); // no-op
        g.create_group("a/b/c").unwrap(); // no-op
        assert_eq!(g.list("").unwrap(), vec!["a"]);
        assert_eq!(g.list("a/b").unwrap(), vec!["c"]);
    }

    #[test]
    fn dataset_blocks_group_path() {
        let mut g = Group::default();
        g.write_dataset("a/data", Dataset::from_u8(&[1], &[1])).unwrap();
        assert_eq!(
            g.create_group("a/data/sub").unwrap_err(),
            H5Error::WrongNodeKind("a/data/sub".into())
        );
        // And a group cannot be overwritten by a dataset.
        g.create_group("a/grp").unwrap();
        assert!(matches!(
            g.write_dataset("a/grp", Dataset::from_u8(&[], &[0])),
            Err(H5Error::WrongNodeKind(_))
        ));
    }

    #[test]
    fn overwrite_dataset_allowed() {
        let mut g = Group::default();
        g.write_dataset("x", Dataset::from_u8(&[1], &[1])).unwrap();
        g.write_dataset("x", Dataset::from_u8(&[2, 3], &[2])).unwrap();
        assert_eq!(g.dataset("x").unwrap().as_u8().unwrap(), vec![2, 3]);
    }

    #[test]
    fn bad_paths_rejected() {
        let mut g = Group::default();
        assert!(matches!(g.create_group("a//b"), Err(H5Error::BadPath(_))));
        assert!(matches!(
            g.write_dataset("", Dataset::from_u8(&[], &[0])),
            Err(H5Error::BadPath(_))
        ));
    }

    #[test]
    fn missing_path_not_found() {
        let g = Group::default();
        assert_eq!(g.dataset("nope").unwrap_err(), H5Error::NotFound("nope".into()));
    }

    #[test]
    fn attrs_on_root_group_and_dataset() {
        let mut g = Group::default();
        g.set_attr("", "version", Attr::Int(1)).unwrap();
        g.create_group("grp").unwrap();
        g.set_attr("grp", "label", Attr::Str("x".into())).unwrap();
        g.write_dataset("grp/d", Dataset::from_u8(&[1], &[1])).unwrap();
        g.set_attr("grp/d", "scale", Attr::Float(2.0)).unwrap();

        assert_eq!(g.attr("", "version").unwrap().as_int(), Some(1));
        assert_eq!(g.attr("grp", "label").unwrap().as_str(), Some("x"));
        assert_eq!(g.attr("grp/d", "scale").unwrap().as_float(), Some(2.0));
        assert_eq!(g.attr("grp", "missing").unwrap_err(), H5Error::AttrNotFound("missing".into()));
    }

    #[test]
    fn walk_visits_all_datasets_sorted() {
        let mut g = Group::default();
        g.write_dataset("b/two", Dataset::from_u8(&[2], &[1])).unwrap();
        g.write_dataset("a/one", Dataset::from_u8(&[1], &[1])).unwrap();
        g.write_dataset("top", Dataset::from_u8(&[0], &[1])).unwrap();
        let mut seen = Vec::new();
        g.walk_datasets("", &mut |p, _| seen.push(p));
        assert_eq!(seen, vec!["a/one", "b/two", "top"]);
    }

    #[test]
    fn payload_bytes_sums_subtree() {
        let mut g = Group::default();
        g.write_dataset("a/x", Dataset::from_f64(&[1.0, 2.0], &[2])).unwrap();
        g.write_dataset("y", Dataset::from_u8(&[1, 2, 3], &[3])).unwrap();
        assert_eq!(g.payload_bytes(), 16 + 3);
    }

    #[test]
    fn leading_and_trailing_slashes_tolerated() {
        let mut g = Group::default();
        g.write_dataset("/a/b/", Dataset::from_u8(&[9], &[1])).unwrap();
        assert_eq!(g.dataset("a/b").unwrap().as_u8().unwrap(), vec![9]);
    }
}
