//! Chunk compression codecs.
//!
//! HDF5 deployments typically pair the *shuffle* filter with a general
//! compressor; shuffle transposes an array of fixed-width elements into
//! planes of 1st bytes, 2nd bytes, …, which groups the slowly-varying high
//! bytes of floats and small integers into long runs. We follow the same
//! recipe with a simple byte-wise run-length coder as the compressor —
//! fully self-contained, lossless, and effective on exactly the data the
//! paper stores (index arrays, one-hot tags, zero-padded parameter
//! tensors; Appendix C reports ~50 % savings).

/// Compression selector for a container file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Compression {
    /// Store chunks raw.
    None = 0,
    /// Run-length code bytes directly.
    Rle = 1,
    /// Byte-shuffle with the dataset's element width, then run-length code.
    #[default]
    ShuffleRle = 2,
}

impl Compression {
    /// Stable serialization tag.
    pub const fn tag(self) -> u8 {
        self as u8
    }

    /// Decode a tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Compression::None,
            1 => Compression::Rle,
            2 => Compression::ShuffleRle,
            _ => return None,
        })
    }
}

/// Chunk size for compression and I/O (64 KiB, matching a typical HDF5
/// chunk cache granule).
pub const CHUNK_SIZE: usize = 64 * 1024;

/// Run-length encode: emit `(count, byte)` pairs with `count ∈ 1..=255`.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Invert [`rle_encode`]. Returns `None` on malformed input (odd length or
/// zero run counts).
pub fn rle_decode(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(data.len());
    for pair in data.chunks_exact(2) {
        let (count, byte) = (pair[0], pair[1]);
        if count == 0 {
            return None;
        }
        out.extend(std::iter::repeat_n(byte, count as usize));
    }
    Some(out)
}

/// Byte-shuffle `data` as an array of `width`-byte elements: output plane
/// `k` holds the `k`-th byte of every element. A trailing partial element
/// (when `data.len() % width != 0`) is appended unshuffled.
pub fn shuffle(data: &[u8], width: usize) -> Vec<u8> {
    if width <= 1 {
        return data.to_vec();
    }
    let n = data.len() / width;
    let mut out = Vec::with_capacity(data.len());
    for k in 0..width {
        for e in 0..n {
            out.push(data[e * width + k]);
        }
    }
    out.extend_from_slice(&data[n * width..]);
    out
}

/// Invert [`shuffle`].
pub fn unshuffle(data: &[u8], width: usize) -> Vec<u8> {
    if width <= 1 {
        return data.to_vec();
    }
    let n = data.len() / width;
    let mut out = vec![0u8; data.len()];
    for k in 0..width {
        for e in 0..n {
            out[e * width + k] = data[k * n + e];
        }
    }
    out[n * width..].copy_from_slice(&data[n * width..]);
    out
}

/// Compress one chunk. `width` is the dataset element width (used by the
/// shuffle filter). Falls back to storing raw (tagged) when "compression"
/// would expand the chunk, so the codec never loses.
pub fn compress_chunk(data: &[u8], codec: Compression, width: usize) -> Vec<u8> {
    let encoded = match codec {
        Compression::None => return prepend_tag(0, data.to_vec()),
        Compression::Rle => rle_encode(data),
        Compression::ShuffleRle => rle_encode(&shuffle(data, width)),
    };
    if encoded.len() >= data.len() {
        prepend_tag(0, data.to_vec())
    } else {
        prepend_tag(codec.tag(), encoded)
    }
}

fn prepend_tag(tag: u8, mut body: Vec<u8>) -> Vec<u8> {
    body.insert(0, tag);
    body
}

/// Decompress one chunk produced by [`compress_chunk`].
pub fn decompress_chunk(data: &[u8], width: usize) -> Option<Vec<u8>> {
    let (&tag, body) = data.split_first()?;
    match Compression::from_tag(tag)? {
        Compression::None => Some(body.to_vec()),
        Compression::Rle => rle_decode(body),
        Compression::ShuffleRle => Some(unshuffle(&rle_decode(body)?, width)),
    }
}

/// Compress a full payload in [`CHUNK_SIZE`] chunks; returns the chunk
/// bodies (each self-tagged). The caller records per-chunk lengths.
pub fn compress_payload(data: &[u8], codec: Compression, width: usize) -> Vec<Vec<u8>> {
    if data.is_empty() {
        return Vec::new();
    }
    data.chunks(CHUNK_SIZE)
        .map(|c| compress_chunk(c, codec, width))
        .collect()
}

/// Reassemble a payload from compressed chunks.
pub fn decompress_payload(chunks: &[Vec<u8>], width: usize) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for c in chunks {
        out.extend(decompress_chunk(c, width)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_bytes(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn rle_roundtrip_patterns() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![1],
            vec![0; 1000],
            (0..=255u8).collect(),
            vec![7; 300], // run > 255 forces a split
            b"abacadabra".to_vec(),
        ];
        for case in cases {
            let enc = rle_encode(&case);
            assert_eq!(rle_decode(&enc).unwrap(), case);
        }
    }

    #[test]
    fn rle_rejects_malformed() {
        assert!(rle_decode(&[1]).is_none(), "odd length");
        assert!(rle_decode(&[0, 5]).is_none(), "zero run");
    }

    #[test]
    fn shuffle_roundtrip_various_widths() {
        let data: Vec<u8> = (0..97).map(|i| (i * 31 % 256) as u8).collect();
        for width in [1usize, 2, 4, 8] {
            let s = shuffle(&data, width);
            assert_eq!(s.len(), data.len());
            assert_eq!(unshuffle(&s, width), data);
        }
    }

    #[test]
    fn shuffle_groups_high_bytes() {
        // Small positive f64 values share exponent bytes; after shuffle the
        // repeated bytes form runs.
        let values: Vec<f64> = (0..512).map(|i| 1.0 + i as f64 * 1e-6).collect();
        let raw = float_bytes(&values);
        let shuffled = shuffle(&raw, 8);
        let rle_raw = rle_encode(&raw).len();
        let rle_shuf = rle_encode(&shuffled).len();
        assert!(
            rle_shuf < rle_raw,
            "shuffle should help: {rle_shuf} vs {rle_raw}"
        );
    }

    #[test]
    fn compress_never_expands() {
        // Incompressible noise must be stored raw (+1 tag byte only).
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = compress_chunk(&noise, Compression::ShuffleRle, 8);
        assert!(c.len() <= noise.len() + 1);
        assert_eq!(decompress_chunk(&c, 8).unwrap(), noise);
    }

    #[test]
    fn zero_padded_tensor_compresses_well() {
        // The §2.1 tensors are mostly zero padding beyond the populated
        // slots; Appendix C reports ≥ 50 % savings — verify we achieve it.
        let mut data = vec![0u8; 100_000];
        for (i, byte) in data.iter_mut().enumerate().take(2_000) {
            *byte = (i % 251) as u8;
        }
        let chunks = compress_payload(&data, Compression::ShuffleRle, 8);
        let stored: usize = chunks.iter().map(Vec::len).sum();
        assert!(
            stored * 2 < data.len(),
            "expected >=50% compression, stored {stored} of {}",
            data.len()
        );
        assert_eq!(decompress_payload(&chunks, 8).unwrap(), data);
    }

    #[test]
    fn payload_roundtrip_multichunk() {
        let data: Vec<u8> = (0..(CHUNK_SIZE * 2 + 1234))
            .map(|i| (i / 64) as u8)
            .collect();
        for codec in [Compression::None, Compression::Rle, Compression::ShuffleRle] {
            let chunks = compress_payload(&data, codec, 4);
            assert_eq!(chunks.len(), 3);
            assert_eq!(decompress_payload(&chunks, 4).unwrap(), data, "{codec:?}");
        }
    }

    #[test]
    fn empty_payload() {
        assert!(compress_payload(&[], Compression::ShuffleRle, 8).is_empty());
        assert_eq!(decompress_payload(&[], 8).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn compression_tags_roundtrip() {
        for c in [Compression::None, Compression::Rle, Compression::ShuffleRle] {
            assert_eq!(Compression::from_tag(c.tag()), Some(c));
        }
        assert_eq!(Compression::from_tag(9), None);
    }
}
