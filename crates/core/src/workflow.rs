//! The containerized Slurm workflow (§2.4, Fig. 2c).
//!
//! Ties the whole pipeline together the way the paper's shell scripts do:
//! circuits are tensor-encoded into an HDF5-like payload, a container
//! launch is prepared through the podman wrapper, jobs are submitted to
//! the simulated Slurm scheduler with durations taken from the
//! performance model, and (for sizes this machine can hold) the circuits
//! are actually executed to produce results. The report carries the
//! scheduler's GPU-utilization figure — the quantity behind the
//! abstract's "approximately 100 % utilization of up to 1,024 GPUs".

use crate::storage;
use crate::transform::{PipelineError, QGear, QGearConfig};
use crate::RunResult;
use qgear_container::slurm::{Cluster, Constraint, JobRequest, Scheduler};
use qgear_container::{ContainerImage, PodmanWrapper};
use qgear_ir::Circuit;

/// A containerized batch workflow over the simulated cluster.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Pipeline configuration shared by all jobs.
    pub config: QGearConfig,
    /// Container image jobs run in.
    pub image: ContainerImage,
    /// Cluster the scheduler manages.
    pub cluster: Cluster,
    /// Execute circuits for real (disable to schedule-only at paper
    /// scale, where the state would not fit in this machine's RAM).
    pub execute: bool,
}

/// Outcome of one workflow batch.
#[derive(Debug)]
pub struct WorkflowReport {
    /// Per-circuit results (empty when `execute` is false).
    pub results: Vec<RunResult>,
    /// Rendered container launch lines (one per job).
    pub launch_lines: Vec<String>,
    /// Modeled per-job durations in seconds.
    pub modeled_durations: Vec<f64>,
    /// Scheduler makespan in simulated seconds.
    pub makespan: u64,
    /// GPU utilization over the makespan.
    pub gpu_utilization: f64,
    /// Size of the encoded circuit payload shipped to the jobs, bytes.
    pub payload_bytes: usize,
}

impl Workflow {
    /// A workflow over `gpu_nodes` Perlmutter-like GPU nodes using the
    /// paper's Podman image.
    pub fn new(config: QGearConfig, gpu_nodes: u32) -> Self {
        Workflow {
            config,
            image: ContainerImage::podman_hpc_image(),
            cluster: Cluster::perlmutter_slice(gpu_nodes, 4),
            execute: true,
        }
    }

    /// Run a batch of circuits as independent jobs (the "parallel mode"
    /// of Fig. 2c: "simultaneous execution of multiple smaller quantum
    /// circuits on separate GPUs").
    pub fn run_batch(&self, circuits: &[Circuit]) -> Result<WorkflowReport, PipelineError> {
        // 1. Encode the whole batch into the shipped payload.
        let payload = storage::circuits_to_h5_bytes(circuits, None)
            .map_err(|e| PipelineError::Usage(format!("payload encoding failed: {e}")))?;

        // 2. Prepare container launches through the podman wrapper.
        let qgear = QGear::new(self.config.clone());
        let devices = self.config.target.devices().max(1) as u32;
        let wrapper = PodmanWrapper::new(self.image.clone())
            .with_circuit_io("/scratch/qgear/circuits.h5", "/scratch/qgear/out")
            .env("QGEAR_TARGET", self.config.target.to_string())
            .env("QGEAR_PRECISION", self.config.precision.name());
        let launch_lines: Vec<String> = wrapper
            .mpi_launches(devices, "python", &["run.py"])
            .iter()
            .map(|l| l.shell_line())
            .collect();

        // 3. Model per-job durations and feed the scheduler.
        let constraint = match self.config.target {
            crate::Target::QiskitAerCpu => Constraint::Cpu,
            _ => Constraint::Gpu,
        };
        let mut scheduler = Scheduler::new(self.cluster.clone());
        let mut modeled_durations = Vec::with_capacity(circuits.len());
        for circ in circuits {
            let modeled = qgear.project(circ)?.total();
            modeled_durations.push(modeled);
            let per_node = devices.clamp(1, 4);
            let nodes = devices.div_ceil(4).max(1);
            scheduler
                .submit(JobRequest {
                    nodes,
                    tasks: per_node * nodes,
                    gpus_per_task: u32::from(constraint != Constraint::Cpu),
                    constraint,
                    duration: modeled.ceil().max(1.0) as u64,
                })
                .map_err(|e| PipelineError::Usage(format!("slurm submission failed: {e}")))?;
        }
        let makespan = scheduler.run_to_completion();

        // 4. Execute for real when feasible (proves the shipped payload
        // decodes into the same circuits the jobs would run).
        let results = if self.execute {
            let decoded = storage::circuits_from_h5_bytes(&payload)
                .map_err(|e| PipelineError::Usage(format!("payload decoding failed: {e}")))?;
            decoded
                .iter()
                .map(|c| qgear.run(c))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };

        Ok(WorkflowReport {
            results,
            launch_lines,
            modeled_durations,
            makespan,
            gpu_utilization: scheduler.gpu_utilization(),
            payload_bytes: payload.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;
    use qgear_ir::reference;
    use qgear_num::approx::approx_eq_up_to_phase;
    use qgear_num::scalar::Precision;

    fn batch(n: usize) -> Vec<Circuit> {
        (0..n)
            .map(|i| {
                let mut c = Circuit::new(4);
                c.h(0).ry(0.3 + i as f64 * 0.1, 1).cx(0, 2).cx(2, 3);
                c
            })
            .collect()
    }

    #[test]
    fn end_to_end_batch_executes_and_schedules() {
        let config = QGearConfig {
            target: Target::Nvidia,
            precision: Precision::Fp64,
            ..Default::default()
        };
        let wf = Workflow::new(config, 8);
        let circuits = batch(6);
        let report = wf.run_batch(&circuits).unwrap();
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.modeled_durations.len(), 6);
        assert!(report.makespan >= 1);
        assert!(report.payload_bytes > 0);
        assert!(report.gpu_utilization > 0.0 && report.gpu_utilization <= 1.0);
        // Results match the reference oracle — proving the payload path.
        for (r, c) in report.results.iter().zip(&circuits) {
            let expect = reference::run(c);
            assert!(approx_eq_up_to_phase(
                r.state.as_ref().unwrap().amplitudes(),
                &expect,
                1e-10
            ));
        }
    }

    #[test]
    fn launch_lines_reflect_target() {
        let config = QGearConfig {
            target: Target::NvidiaMgpu { devices: 4 },
            ..Default::default()
        };
        let mut wf = Workflow::new(config, 4);
        wf.execute = false;
        let report = wf.run_batch(&batch(2)).unwrap();
        assert_eq!(report.launch_lines.len(), 4, "one launch per MPI rank");
        assert!(report.launch_lines[0].contains("QGEAR_TARGET=nvidia-mgpu:4"));
        assert!(report.launch_lines[0].starts_with("podman-hpc run"));
        assert!(report.results.is_empty());
    }

    #[test]
    fn saturating_batch_hits_high_utilization() {
        let config = QGearConfig { target: Target::Nvidia, ..Default::default() };
        let mut wf = Workflow::new(config, 2);
        wf.execute = false;
        // Many equal jobs across 2 nodes → near-full utilization.
        let report = wf.run_batch(&batch(16)).unwrap();
        assert!(
            report.gpu_utilization > 0.2,
            "utilization {}",
            report.gpu_utilization
        );
    }
}
