//! Tensor-encoding persistence through the HDF5-like container.
//!
//! §3: "the same Qiskit circuits were exported … and converted to Cuda-Q
//! kernels … either within a single program or by saving NumPy circuits in
//! the format HDF5 for use in a separate Cuda-Q program". This module is
//! that second path: a [`qgear_ir::TensorEncoding`] round-trips through a
//! `qgear-hdf5lite` file with full metadata, so the "Qiskit side" and the
//! "CUDA-Q side" can be separate processes.

use qgear_hdf5lite::{Attr, Compression, Dataset, H5Error, H5File};
use qgear_ir::encoding::PARAMS_PER_GATE;
use qgear_ir::{IrError, TensorEncoding};

/// Group that holds the encoding inside the container.
pub const GROUP: &str = "qgear/circuits";

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Container-level failure.
    H5(H5Error),
    /// Encoding-level failure.
    Ir(IrError),
    /// Structural problem in a previously-written file.
    Corrupt(String),
}

impl From<H5Error> for StorageError {
    fn from(e: H5Error) -> Self {
        StorageError::H5(e)
    }
}

impl From<IrError> for StorageError {
    fn from(e: IrError) -> Self {
        StorageError::Ir(e)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::H5(e) => write!(f, "container error: {e}"),
            StorageError::Ir(e) => write!(f, "encoding error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt encoding file: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Write a tensor encoding into a fresh container.
pub fn encoding_to_h5(enc: &TensorEncoding) -> Result<H5File, StorageError> {
    let mut f = H5File::new();
    let (names, counts, gate_type, control, target, param) = enc.columns();
    f.create_group(GROUP)?;
    f.set_attr(GROUP, "capacity", Attr::Int(enc.capacity() as i64))?;
    f.set_attr(GROUP, "num_qubits", Attr::Int(enc.num_qubits() as i64))?;
    f.set_attr(GROUP, "num_circuits", Attr::Int(enc.num_circuits() as i64))?;
    f.set_attr(GROUP, "format", Attr::Str("qgear-tensor-encoding-v1".into()))?;

    let n = enc.num_circuits() as u64;
    let d = enc.capacity() as u64;
    // Names as one newline-joined blob (mirrors HDF5 string tables).
    let blob = names.join("\n");
    f.write_dataset(
        &format!("{GROUP}/names"),
        Dataset::from_u8(blob.as_bytes(), &[blob.len() as u64]),
    )?;
    f.write_dataset(&format!("{GROUP}/gate_counts"), Dataset::from_u32(counts, &[n]))?;
    f.write_dataset(&format!("{GROUP}/gate_type"), Dataset::from_u8(gate_type, &[n, d]))?;
    f.write_dataset(&format!("{GROUP}/control"), Dataset::from_i32(control, &[n, d]))?;
    f.write_dataset(&format!("{GROUP}/target"), Dataset::from_i32(target, &[n, d]))?;
    f.write_dataset(
        &format!("{GROUP}/param"),
        Dataset::from_f64(param, &[n, d, PARAMS_PER_GATE as u64]),
    )?;
    Ok(f)
}

/// Read a tensor encoding back from a container.
pub fn encoding_from_h5(f: &H5File) -> Result<TensorEncoding, StorageError> {
    let capacity = f
        .attr(GROUP, "capacity")?
        .as_int()
        .ok_or_else(|| StorageError::Corrupt("capacity attr wrong type".into()))?
        as usize;
    let num_qubits = f
        .attr(GROUP, "num_qubits")?
        .as_int()
        .ok_or_else(|| StorageError::Corrupt("num_qubits attr wrong type".into()))?
        as u32;
    let blob = f.dataset(&format!("{GROUP}/names"))?.as_u8()?;
    let blob = String::from_utf8(blob)
        .map_err(|_| StorageError::Corrupt("names not UTF-8".into()))?;
    let names: Vec<String> = if blob.is_empty() {
        Vec::new()
    } else {
        blob.split('\n').map(str::to_owned).collect()
    };
    let counts = f.dataset(&format!("{GROUP}/gate_counts"))?.as_u32()?;
    let gate_type = f.dataset(&format!("{GROUP}/gate_type"))?.as_u8()?;
    let control = f.dataset(&format!("{GROUP}/control"))?.as_i32()?;
    let target = f.dataset(&format!("{GROUP}/target"))?.as_i32()?;
    let param = f.dataset(&format!("{GROUP}/param"))?.as_f64()?;
    Ok(TensorEncoding::from_columns(
        capacity, num_qubits, names, counts, gate_type, control, target, param,
    )?)
}

/// One-call convenience: encode circuits → container bytes (compressed).
pub fn circuits_to_h5_bytes(
    circuits: &[qgear_ir::Circuit],
    capacity: Option<usize>,
) -> Result<Vec<u8>, StorageError> {
    let enc = TensorEncoding::encode(circuits, capacity)?;
    Ok(encoding_to_h5(&enc)?.to_bytes(Compression::ShuffleRle))
}

/// One-call convenience: container bytes → circuits.
pub fn circuits_from_h5_bytes(bytes: &[u8]) -> Result<Vec<qgear_ir::Circuit>, StorageError> {
    let f = H5File::from_bytes(bytes)?;
    let enc = encoding_from_h5(&f)?;
    Ok(enc.decode()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_ir::Circuit;

    fn sample_circuits() -> Vec<Circuit> {
        (0..4)
            .map(|i| {
                let mut c = Circuit::with_capacity(5, format!("c{i}"), 8);
                c.h(0).ry(0.1 * i as f64, 1).cx(0, 2).rz(-0.3, 3).cx(3, 4).measure_all();
                c
            })
            .collect()
    }

    #[test]
    fn encoding_roundtrip_through_container() {
        let circuits = sample_circuits();
        let enc = TensorEncoding::encode(&circuits, Some(32)).unwrap();
        let f = encoding_to_h5(&enc).unwrap();
        let back = encoding_from_h5(&f).unwrap();
        assert_eq!(back, enc);
        assert_eq!(back.decode().unwrap(), circuits);
    }

    #[test]
    fn bytes_roundtrip_with_compression() {
        let circuits = sample_circuits();
        let bytes = circuits_to_h5_bytes(&circuits, None).unwrap();
        let back = circuits_from_h5_bytes(&bytes).unwrap();
        assert_eq!(back, circuits);
    }

    #[test]
    fn compression_beats_raw_for_padded_encodings() {
        // High capacity → heavy zero padding → Appendix C's ~50 % claim.
        let circuits = sample_circuits();
        let enc = TensorEncoding::encode(&circuits, Some(4096)).unwrap();
        let f = encoding_to_h5(&enc).unwrap();
        let raw = f.to_bytes(Compression::None).len();
        let packed = f.to_bytes(Compression::ShuffleRle).len();
        assert!(packed * 2 < raw, "{packed} vs {raw}");
    }

    #[test]
    fn corrupt_attrs_detected() {
        let circuits = sample_circuits();
        let enc = TensorEncoding::encode(&circuits, None).unwrap();
        let mut f = encoding_to_h5(&enc).unwrap();
        f.set_attr(GROUP, "capacity", Attr::Str("nope".into())).unwrap();
        assert!(matches!(
            encoding_from_h5(&f),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_dataset_detected() {
        let mut f = H5File::new();
        f.create_group(GROUP).unwrap();
        f.set_attr(GROUP, "capacity", Attr::Int(4)).unwrap();
        f.set_attr(GROUP, "num_qubits", Attr::Int(2)).unwrap();
        assert!(matches!(encoding_from_h5(&f), Err(StorageError::H5(_))));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let bytes = circuits_to_h5_bytes(&[], None).unwrap();
        assert_eq!(circuits_from_h5_bytes(&bytes).unwrap(), Vec::<Circuit>::new());
    }
}
