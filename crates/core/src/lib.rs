//! **Q-GEAR**: transform Qiskit-style circuits into GPU-executable kernels
//! and run them on CPU, simulated-GPU, and simulated-cluster targets.
//!
//! This crate is the paper's primary contribution — "a software framework
//! that transforms Qiskit quantum circuits into CUDA-Q kernels" — rebuilt
//! on the substrates in this workspace:
//!
//! ```text
//!  Circuit (Qiskit-like builder, qgear-ir)
//!    │  transpile to the native set {h, rx, ry, rz, cx}     (§2.1)
//!    ▼
//!  TensorEncoding (3-D tensor, Lemma B.2 capacity)          (§2.1)
//!    │  store/ship via QPY-lite or the HDF5-like container  (App. C)
//!    ▼
//!  FusedProgram ("CUDA kernels", gate fusion = 5)           (§2.2)
//!    │  execute on a target
//!    ▼
//!  qiskit-aer-cpu │ nvidia │ nvidia-mgpu │ nvidia-mqpu │ pennylane-…
//! ```
//!
//! Every run returns both the *real* execution result (exact state/counts
//! from the simulated engines) and the *projected* wall-clock on the
//! paper's Perlmutter testbed (`qgear-perfmodel`), which is how the
//! benchmark harnesses regenerate the paper's figures at scales this
//! machine cannot execute.
//!
//! # Quickstart
//!
//! ```
//! use qgear::{QGear, QGearConfig, Target};
//! use qgear_ir::Circuit;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1).measure_all();
//!
//! let qgear = QGear::new(QGearConfig {
//!     target: Target::Nvidia,
//!     shots: 1000,
//!     ..Default::default()
//! });
//! let result = qgear.run(&bell).unwrap();
//! let counts = result.counts.unwrap();
//! assert_eq!(counts.total(), 1000);
//! // Only |00⟩ and |11⟩ appear.
//! assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
//! ```

pub mod observable;
pub mod pennylane;
pub mod result;
pub mod storage;
pub mod target;
pub mod transform;
pub mod workflow;

pub use observable::ExpectationEstimate;
pub use pennylane::PennylaneLikeBackend;
pub use result::RunResult;
pub use target::Target;
pub use transform::{QGear, QGearConfig, TransformArtifacts};
pub use workflow::{Workflow, WorkflowReport};

// Re-export the substrate crates under one roof for downstream users.
pub use qgear_cluster as cluster;
pub use qgear_container as container;
pub use qgear_hdf5lite as hdf5lite;
pub use qgear_ir as ir;
pub use qgear_num as num;
pub use qgear_perfmodel as perfmodel;
pub use qgear_statevec as statevec;
pub use qgear_workloads as workloads;
