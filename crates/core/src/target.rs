//! Execution targets, named after the CUDA-Q target strings the paper
//! passes on the command line (`--target nvidia-mgpu`, Appendix E.3).

use qgear_perfmodel::ModelTarget;
use std::fmt;
use std::str::FromStr;

/// Where a transformed circuit executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Target {
    /// The Qiskit Aer baseline on a CPU node (sequential, unfused).
    QiskitAerCpu,
    /// One simulated A100 (`nvidia`).
    #[default]
    Nvidia,
    /// Pooled memory over a GPU cluster (`nvidia-mgpu`).
    NvidiaMgpu {
        /// Device count (power of two).
        devices: usize,
    },
    /// One independent circuit per GPU (`nvidia-mqpu`).
    NvidiaMqpu {
        /// Device count.
        devices: usize,
    },
    /// The Pennylane lightning.gpu baseline (unfused GPU execution with
    /// per-gate transpilation, §4).
    PennylaneLightningGpu,
}


impl Target {
    /// Canonical target string.
    pub fn name(&self) -> &'static str {
        match self {
            Target::QiskitAerCpu => "qiskit-aer-cpu",
            Target::Nvidia => "nvidia",
            Target::NvidiaMgpu { .. } => "nvidia-mgpu",
            Target::NvidiaMqpu { .. } => "nvidia-mqpu",
            Target::PennylaneLightningGpu => "pennylane-lightning-gpu",
        }
    }

    /// Device count this target occupies.
    pub fn devices(&self) -> usize {
        match self {
            Target::QiskitAerCpu | Target::Nvidia | Target::PennylaneLightningGpu => 1,
            Target::NvidiaMgpu { devices } | Target::NvidiaMqpu { devices } => *devices,
        }
    }

    /// The performance-model target this corresponds to (mqpu projects as
    /// independent single-GPU runs).
    pub fn model_target(&self) -> ModelTarget {
        match self {
            Target::QiskitAerCpu => ModelTarget::QiskitCpu,
            Target::Nvidia | Target::NvidiaMqpu { .. } => ModelTarget::QGearGpu { devices: 1 },
            Target::NvidiaMgpu { devices } => ModelTarget::QGearGpu { devices: *devices },
            Target::PennylaneLightningGpu => ModelTarget::PennylaneGpu { devices: 1 },
        }
    }

    /// Parse a target string, with an optional `:<devices>` suffix for
    /// the cluster targets (`"nvidia-mgpu:4"`).
    pub fn parse(s: &str) -> Option<Target> {
        let (name, devices) = match s.split_once(':') {
            Some((n, d)) => (n, d.parse::<usize>().ok()?),
            None => (s, 4),
        };
        Some(match name {
            "qiskit-aer-cpu" | "aer" | "cpu" => Target::QiskitAerCpu,
            "nvidia" => Target::Nvidia,
            "nvidia-mgpu" => Target::NvidiaMgpu { devices },
            "nvidia-mqpu" => Target::NvidiaMqpu { devices },
            "pennylane-lightning-gpu" | "pennylane" => Target::PennylaneLightningGpu,
            _ => return None,
        })
    }
}

impl FromStr for Target {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Target::parse(s).ok_or_else(|| format!("unknown target '{s}'"))
    }
}

impl fmt::Display for Target {
    /// Canonical name plus a `:<devices>` suffix for the cluster targets.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::NvidiaMgpu { devices } | Target::NvidiaMqpu { devices } => {
                write!(f, "{}:{}", self.name(), devices)
            }
            _ => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["qiskit-aer-cpu", "nvidia", "nvidia-mgpu:8", "nvidia-mqpu:4", "pennylane-lightning-gpu"] {
            let t = Target::parse(s).unwrap();
            assert_eq!(Target::parse(&t.to_string()), Some(t), "{s}");
        }
        assert_eq!(Target::parse("tpu"), None);
    }

    #[test]
    fn default_device_count() {
        assert_eq!(Target::parse("nvidia-mgpu").unwrap().devices(), 4);
        assert_eq!(Target::parse("nvidia").unwrap().devices(), 1);
    }

    #[test]
    fn model_target_mapping() {
        assert_eq!(Target::QiskitAerCpu.model_target(), ModelTarget::QiskitCpu);
        assert_eq!(
            Target::NvidiaMgpu { devices: 16 }.model_target(),
            ModelTarget::QGearGpu { devices: 16 }
        );
        assert_eq!(
            Target::PennylaneLightningGpu.model_target(),
            ModelTarget::PennylaneGpu { devices: 1 }
        );
    }

    #[test]
    fn aliases() {
        assert_eq!(Target::parse("aer"), Some(Target::QiskitAerCpu));
        assert_eq!(Target::parse("pennylane"), Some(Target::PennylaneLightningGpu));
    }
}
