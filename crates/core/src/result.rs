//! Precision-erased run results.
//!
//! Engines are generic over `f32`/`f64`, but the pipeline selects the
//! precision at run time from the target configuration (like CUDA-Q's
//! `fp32`/`fp64` option). [`RunResult`] erases the state's precision into
//! `f64` for inspection while preserving counts, operation statistics,
//! and the projected testbed timing.

use qgear_num::scalar::Precision;
use qgear_perfmodel::TimeBreakdown;
use qgear_statevec::{Counts, ExecStats, RunOutput, StateVector};

/// Result of running one circuit through the Q-Gear pipeline.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final state, widened to `f64` (if the run kept it).
    pub state: Option<StateVector<f64>>,
    /// Sampled measurement counts (if shots > 0 and the circuit measures).
    pub counts: Option<Counts>,
    /// Operation counters and real wall-clock on this machine.
    pub stats: ExecStats,
    /// Projected wall-clock on the paper's Perlmutter testbed.
    pub modeled: TimeBreakdown,
    /// Precision the engines ran at.
    pub precision: Precision,
    /// Global phase accumulated by the native-set transpilation; apply
    /// `e^{iφ}` to `state` to recover the untranspiled circuit's state
    /// exactly.
    pub global_phase: f64,
}

impl RunResult {
    /// Assemble from a typed engine output.
    pub fn from_output<T: qgear_num::Scalar>(
        out: RunOutput<T>,
        modeled: TimeBreakdown,
        precision: Precision,
        global_phase: f64,
    ) -> Self {
        RunResult {
            state: out.state.map(|s| s.cast()),
            counts: out.counts,
            stats: out.stats,
            modeled,
            precision,
            global_phase,
        }
    }

    /// Probability distribution of the kept state (Born rule), `None` if
    /// the state was dropped.
    pub fn probabilities(&self) -> Option<Vec<f64>> {
        self.state.as_ref().map(|s| s.probabilities())
    }

    /// Real wall-clock of the unitary phase on this machine.
    pub fn measured_seconds(&self) -> f64 {
        self.stats.elapsed.as_secs_f64() + self.stats.sampling_elapsed.as_secs_f64()
    }

    /// Projected wall-clock on the paper's testbed.
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_num::Complex;

    #[test]
    fn from_output_widens_state() {
        let amps = vec![Complex::<f32>::ONE, Complex::ZERO];
        let out = RunOutput::<f32> {
            state: Some(StateVector::from_amplitudes(amps)),
            counts: None,
            stats: ExecStats::default(),
        };
        let r = RunResult::from_output(out, TimeBreakdown::default(), Precision::Fp32, 0.0);
        let probs = r.probabilities().unwrap();
        assert_eq!(probs, vec![1.0, 0.0]);
        assert_eq!(r.precision, Precision::Fp32);
    }

    #[test]
    fn seconds_accessors() {
        let stats = ExecStats {
            elapsed: std::time::Duration::from_millis(250),
            sampling_elapsed: std::time::Duration::from_millis(50),
            ..Default::default()
        };
        let out = RunOutput::<f64> { state: None, counts: None, stats };
        let modeled = TimeBreakdown { compute: 2.0, ..Default::default() };
        let r = RunResult::from_output(out, modeled, Precision::Fp64, 0.0);
        assert!((r.measured_seconds() - 0.3).abs() < 1e-9);
        assert_eq!(r.modeled_seconds(), 2.0);
        assert!(r.probabilities().is_none());
    }
}
