//! `qgear` — the command-line driver, mirroring the paper's
//! `python run.py --target nvidia-mgpu` entry point (Appendix E.3).
//!
//! ```text
//! qgear run       --workload random --qubits 12 --blocks 200 --shots 1000 \
//!                 --target nvidia-mgpu:4 --precision fp32
//! qgear run       --workload qft --qubits 10 --shots 100
//! qgear run       --workload qcrank --qubits 12 --shots 100000
//! qgear transform --workload random --qubits 10 --blocks 50 --out circuits.h5l
//! qgear run       --input circuits.h5l --target nvidia
//! qgear project   --workload random --qubits 36 --blocks 3000 --target nvidia-mgpu:256
//! ```
//!
//! `run` executes for real on the simulated engines; `project` only prices
//! a configuration on the modeled Perlmutter testbed (any size);
//! `transform` writes the §2.1 tensor encoding to an HDF5-like file that a
//! later `run --input` consumes — the paper's separate-program handoff.

use qgear::storage;
use qgear::{QGear, QGearConfig, Target};
use qgear_ir::Circuit;
use qgear_num::scalar::Precision;
use qgear_workloads::images::synthetic;
use qgear_workloads::qcrank::{QcrankCodec, QcrankConfig};
use qgear_workloads::qft::{qft_circuit, QftOptions};
use qgear_workloads::random::{generate_random_gate_list, RandomCircuitSpec};
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    command: String,
    workload: String,
    qubits: u32,
    blocks: usize,
    shots: u64,
    seed: u64,
    target: Target,
    precision: Precision,
    fusion: usize,
    input: Option<String>,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            command: String::new(),
            workload: "random".into(),
            qubits: 10,
            blocks: 100,
            shots: 0,
            seed: 42,
            target: Target::Nvidia,
            precision: Precision::Fp32,
            fusion: 5,
            input: None,
            out: None,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    args.command = it.next().cloned().ok_or("missing command (run|transform|project)")?;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--workload" => args.workload = value()?,
            "--qubits" => args.qubits = value()?.parse().map_err(|e| format!("--qubits: {e}"))?,
            "--blocks" => args.blocks = value()?.parse().map_err(|e| format!("--blocks: {e}"))?,
            "--shots" => args.shots = value()?.parse().map_err(|e| format!("--shots: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--target" => {
                let t = value()?;
                args.target = Target::parse(&t).ok_or(format!("unknown target '{t}'"))?;
            }
            "--precision" => {
                let p = value()?;
                args.precision =
                    Precision::parse(&p).ok_or(format!("unknown precision '{p}'"))?;
            }
            "--fusion" => args.fusion = value()?.parse().map_err(|e| format!("--fusion: {e}"))?,
            "--input" => args.input = Some(value()?),
            "--out" => args.out = Some(value()?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn build_workload(args: &Args) -> Result<Circuit, String> {
    match args.workload.as_str() {
        "random" => Ok(generate_random_gate_list(&RandomCircuitSpec {
            num_qubits: args.qubits,
            num_blocks: args.blocks,
            seed: args.seed,
            measure: args.shots > 0,
        })),
        "qft" => {
            let mut c = qft_circuit(args.qubits, &QftOptions::default());
            if args.shots > 0 {
                c.measure_all();
            }
            Ok(c)
        }
        "qcrank" => {
            // Split qubits 2:1 address:data and fill with a synthetic image.
            let addr = (args.qubits * 2) / 3;
            let data = args.qubits - addr;
            if addr == 0 || data == 0 {
                return Err("qcrank needs at least 3 qubits".into());
            }
            let config = QcrankConfig { addr_qubits: addr, data_qubits: data };
            let width = 1u32 << (addr / 2);
            let height = config.capacity() as u32 / width;
            let img = synthetic(width, height, args.seed);
            Ok(QcrankCodec::new(config).encode_image(&img))
        }
        other => Err(format!("unknown workload '{other}' (random|qft|qcrank)")),
    }
}

fn load_or_build(args: &Args) -> Result<Vec<Circuit>, String> {
    match &args.input {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
            storage::circuits_from_h5_bytes(&bytes).map_err(|e| e.to_string())
        }
        None => Ok(vec![build_workload(args)?]),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let circuits = load_or_build(args)?;
    let qgear = QGear::new(QGearConfig {
        target: args.target,
        precision: args.precision,
        shots: args.shots,
        seed: args.seed,
        fusion_width: args.fusion,
        keep_state: false,
        ..Default::default()
    });
    for circ in &circuits {
        println!(
            "circuit '{}': {} qubits, {} gates → target {}",
            if circ.name.is_empty() { "<unnamed>" } else { &circ.name },
            circ.num_qubits(),
            circ.len(),
            args.target
        );
        let result = qgear.run(circ).map_err(|e| e.to_string())?;
        println!(
            "  measured here: {:.3} ms | modeled testbed: {}",
            result.measured_seconds() * 1e3,
            result.modeled
        );
        println!(
            "  kernels {} | gates {} | comm messages {}",
            result.stats.kernels_launched, result.stats.gates_applied, result.stats.comm_messages
        );
        if let Some(counts) = &result.counts {
            let mut top = counts.sorted();
            top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            println!("  top outcomes of {} shots:", counts.total());
            for (key, count) in top.into_iter().take(5) {
                println!("    |{key:0width$b}⟩: {count}", width = circ.num_qubits() as usize);
            }
        }
    }
    Ok(())
}

fn cmd_transform(args: &Args) -> Result<(), String> {
    let circ = build_workload(args)?;
    let qgear = QGear::new(QGearConfig {
        fusion_width: args.fusion,
        ..Default::default()
    });
    let artifacts = qgear.transform(&circ).map_err(|e| e.to_string())?;
    println!(
        "transformed '{}': {} native gates, {} fused kernels ({:.2} gates/kernel), global phase {:.6}",
        circ.name,
        artifacts.native.len(),
        artifacts.program.blocks.len(),
        artifacts.compression_ratio(),
        artifacts.global_phase
    );
    let out = args.out.clone().unwrap_or_else(|| "circuits.h5l".into());
    let bytes = storage::circuits_to_h5_bytes(std::slice::from_ref(&artifacts.native), None)
        .map_err(|e| e.to_string())?;
    std::fs::write(&out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} bytes to {out}", bytes.len());
    Ok(())
}

fn cmd_project(args: &Args) -> Result<(), String> {
    let circ = build_workload(args)?;
    let qgear = QGear::new(QGearConfig {
        target: args.target,
        precision: args.precision,
        shots: args.shots,
        fusion_width: args.fusion,
        ..Default::default()
    });
    // Projection needs the native circuit but never allocates the state.
    let (native, _) = qgear_ir::transpile::decompose_to_native(&circ);
    let t = qgear.project(&native).map_err(|e| e.to_string())?;
    println!(
        "{} on {} at {}: {}",
        circ.name, args.target, args.precision, t
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        eprintln!(
            "usage: qgear <run|transform|project> [--workload random|qft|qcrank] [--qubits N]\n\
             \x20            [--blocks N] [--shots N] [--seed N] [--target T[:devices]]\n\
             \x20            [--precision fp32|fp64] [--fusion K] [--input FILE] [--out FILE]\n\
             targets: qiskit-aer-cpu | nvidia | nvidia-mgpu:P | nvidia-mqpu:P | pennylane-lightning-gpu"
        );
        return ExitCode::from(2);
    }
    let result = parse_args(&argv).and_then(|args| match args.command.as_str() {
        "run" => cmd_run(&args),
        "transform" => cmd_transform(&args),
        "project" => cmd_project(&args),
        other => Err(format!("unknown command '{other}'")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("qgear: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parse_full_command_line() {
        let a = parse_args(&argv(
            "run --workload qft --qubits 20 --shots 500 --target nvidia-mgpu:8 --precision fp64 --fusion 3 --seed 7",
        ))
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.workload, "qft");
        assert_eq!(a.qubits, 20);
        assert_eq!(a.shots, 500);
        assert_eq!(a.target, Target::NvidiaMgpu { devices: 8 });
        assert_eq!(a.precision, Precision::Fp64);
        assert_eq!(a.fusion, 3);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&argv("run --target warp-drive")).is_err());
        assert!(parse_args(&argv("run --qubits banana")).is_err());
        assert!(parse_args(&argv("run --qubits")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn workload_builders() {
        let mut a = Args { qubits: 6, blocks: 10, shots: 100, ..Default::default() };
        let c = build_workload(&a).unwrap();
        assert_eq!(c.num_qubits(), 6);
        a.workload = "qft".into();
        assert!(build_workload(&a).is_ok());
        a.workload = "qcrank".into();
        let qc = build_workload(&a).unwrap();
        assert_eq!(qc.num_qubits(), 6);
        a.workload = "nope".into();
        assert!(build_workload(&a).is_err());
    }

    #[test]
    fn run_and_transform_roundtrip_through_file() {
        let dir = std::env::temp_dir().join("qgear_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.h5l").to_string_lossy().into_owned();
        let t_args = Args {
            command: "transform".into(),
            qubits: 5,
            blocks: 8,
            out: Some(path.clone()),
            ..Default::default()
        };
        cmd_transform(&t_args).unwrap();
        let r_args = Args {
            command: "run".into(),
            input: Some(path.clone()),
            shots: 0,
            ..Default::default()
        };
        cmd_run(&r_args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn project_handles_paper_scale() {
        let a = Args {
            command: "project".into(),
            qubits: 40,
            blocks: 3000,
            target: Target::NvidiaMgpu { devices: 256 },
            ..Default::default()
        };
        cmd_project(&a).unwrap();
    }
}
