//! The Q-Gear transformation pipeline (§2.1–§2.2) and execution front end.

use crate::result::RunResult;
use crate::target::Target;
use crate::PennylaneLikeBackend;
use qgear_cluster::ClusterEngine;
use qgear_ir::fusion::{self, FusedProgram};
use qgear_ir::transpile::{self, TranspileOptions};
use qgear_ir::{Circuit, IrError, TensorEncoding};
use qgear_num::scalar::Precision;
use qgear_num::Scalar;
use qgear_perfmodel::project::ProjectOptions;
use qgear_perfmodel::{project_circuit, CostModel};
use qgear_statevec::{AerCpuBackend, GpuDevice, RunOptions, RunOutput, SimError, Simulator};

/// Pipeline configuration: what the paper's Slurm scripts pass on the
/// command line (target, precision, shots, fusion) plus engine knobs.
#[derive(Debug, Clone)]
pub struct QGearConfig {
    /// Execution target.
    pub target: Target,
    /// Numeric precision (CUDA-Q `fp32`/`fp64` option).
    pub precision: Precision,
    /// Gate-fusion window (Appendix D.2: `gate fusion = 5`).
    pub fusion_width: usize,
    /// Shots to sample (0 = state-only).
    pub shots: u64,
    /// Sampling seed.
    pub seed: u64,
    /// AQFT-style small-angle pruning threshold.
    pub prune_eps: Option<f64>,
    /// Keep the final state in results.
    pub keep_state: bool,
    /// Override the simulated device memory (None = device default).
    pub memory_limit: Option<u128>,
    /// Performance model used for testbed projections.
    pub model: CostModel,
}

impl Default for QGearConfig {
    fn default() -> Self {
        QGearConfig {
            target: Target::default(),
            precision: Precision::Fp32,
            fusion_width: fusion::DEFAULT_FUSION_WIDTH,
            shots: 0,
            seed: 0x51_6E_A5,
            prune_eps: None,
            keep_state: true,
            memory_limit: None,
            model: CostModel::paper_testbed(),
        }
    }
}

/// Everything the transformation step produces before execution — the
/// "kernel circuits" of Fig. 2(b) plus provenance.
#[derive(Debug, Clone)]
pub struct TransformArtifacts {
    /// The native-set circuit after transpilation.
    pub native: Circuit,
    /// Global phase `φ` with `U_native = e^{-iφ} U_input`.
    pub global_phase: f64,
    /// Rotations removed by small-angle pruning.
    pub pruned: usize,
    /// Gates removed by rotation merging.
    pub merged: usize,
    /// The §2.1 tensor encoding of the native circuit.
    pub encoding: TensorEncoding,
    /// The fused kernel program (§2.2).
    pub program: FusedProgram,
}

impl TransformArtifacts {
    /// Gates-per-kernel ratio achieved by fusion.
    pub fn compression_ratio(&self) -> f64 {
        self.program.compression_ratio()
    }
}

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// IR/encoding failure.
    Ir(IrError),
    /// Kernel-transformation failure (unsupported arity, bad window).
    Fusion(qgear_ir::FusionError),
    /// Engine failure (OOM, unsupported gate).
    Sim(SimError),
    /// Target/batch shape mismatch.
    Usage(String),
}

impl From<IrError> for PipelineError {
    fn from(e: IrError) -> Self {
        PipelineError::Ir(e)
    }
}

impl From<qgear_ir::FusionError> for PipelineError {
    fn from(e: qgear_ir::FusionError) -> Self {
        PipelineError::Fusion(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Ir(e) => write!(f, "ir error: {e}"),
            PipelineError::Fusion(e) => write!(f, "fusion error: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation error: {e}"),
            PipelineError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The Q-Gear framework object.
#[derive(Debug, Clone)]
pub struct QGear {
    config: QGearConfig,
}

impl QGear {
    /// Create a pipeline with the given configuration.
    pub fn new(config: QGearConfig) -> Self {
        QGear { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &QGearConfig {
        &self.config
    }

    /// Run the §2.1–§2.2 transformation: transpile to the native set,
    /// tensor-encode, round-trip through the encoding (proving the stored
    /// form is executable), and fuse into kernels.
    pub fn transform(&self, circuit: &Circuit) -> Result<TransformArtifacts, PipelineError> {
        let opts = TranspileOptions {
            decompose: true,
            merge: true,
            prune_eps: self.config.prune_eps,
        };
        let transpile_span = qgear_telemetry::span!(qgear_telemetry::names::spans::TRANSPILE);
        let out = transpile::transpile(circuit, opts);
        drop(transpile_span);
        let encode_span = qgear_telemetry::span!(qgear_telemetry::names::spans::ENCODE);
        let encoding = TensorEncoding::encode(std::slice::from_ref(&out.circuit), None)?;
        // Decode back: execution consumes the *decoded* circuit, so any
        // encoding defect would be caught by the equivalence tests rather
        // than silently shipping a different unitary.
        let decoded = encoding.decode_one(0)?;
        drop(encode_span);
        let (unitary, _) = decoded.split_measurements();
        let program = fusion::try_fuse(&unitary, self.config.fusion_width)?;
        Ok(TransformArtifacts {
            native: decoded,
            global_phase: out.global_phase,
            pruned: out.pruned,
            merged: out.merged,
            encoding,
            program,
        })
    }

    fn run_options(&self) -> RunOptions {
        RunOptions {
            shots: self.config.shots,
            seed: self.config.seed,
            fusion_width: self.config.fusion_width,
            keep_state: self.config.keep_state,
            memory_limit: self.config.memory_limit,
            // Sweep scheduling and shot batching ride on the engine
            // defaults (sweeps on, batching off).
            ..RunOptions::default()
        }
    }

    fn execute<T: Scalar>(&self, circuit: &Circuit) -> Result<RunOutput<T>, SimError> {
        let opts = self.run_options();
        match self.config.target {
            Target::QiskitAerCpu => AerCpuBackend.run(circuit, &opts),
            Target::Nvidia => GpuDevice::a100_40gb().run(circuit, &opts),
            Target::NvidiaMgpu { devices } => {
                ClusterEngine::a100_cluster(devices).run(circuit, &opts)
            }
            Target::NvidiaMqpu { .. } => GpuDevice::a100_40gb().run(circuit, &opts),
            Target::PennylaneLightningGpu => PennylaneLikeBackend::default().run(circuit, &opts),
        }
    }

    /// Project the testbed wall-clock for a circuit on this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError::Fusion`] when the circuit cannot be
    /// fused (e.g. arity-3 gates that were never lowered).
    pub fn project(&self, native: &Circuit) -> Result<qgear_perfmodel::TimeBreakdown, PipelineError> {
        Ok(project_circuit(
            &self.config.model,
            native,
            self.config.target.model_target(),
            &ProjectOptions {
                precision: self.config.precision,
                shots: self.config.shots,
                fusion_width: self.config.fusion_width,
            },
        )?)
    }

    /// End-to-end: transform (unless the target is the plain-Qiskit
    /// baseline, which runs the input as-is) and execute, returning real
    /// results plus the modeled testbed time.
    pub fn run(&self, circuit: &Circuit) -> Result<RunResult, PipelineError> {
        let _span = qgear_telemetry::span!(qgear_telemetry::names::spans::RUN);
        let (exec_circuit, global_phase) = if self.config.target == Target::QiskitAerCpu {
            // The baseline does not get Q-Gear's transformation.
            (circuit.clone(), 0.0)
        } else {
            let artifacts = self.transform(circuit)?;
            (artifacts.native, artifacts.global_phase)
        };
        let modeled = self.project(&exec_circuit)?;
        let result = match self.config.precision {
            Precision::Fp32 => {
                let out: RunOutput<f32> = self.execute(&exec_circuit)?;
                RunResult::from_output(out, modeled, Precision::Fp32, global_phase)
            }
            Precision::Fp64 => {
                let out: RunOutput<f64> = self.execute(&exec_circuit)?;
                RunResult::from_output(out, modeled, Precision::Fp64, global_phase)
            }
        };
        Ok(result)
    }

    /// Variational parameter sweep (§2.2's "parameterized kernel
    /// transformations"): bind the template once per parameter vector and
    /// execute each binding. On an `nvidia-mqpu` target the bindings run
    /// as a device-parallel batch; on any other target they run in
    /// sequence. The fused-kernel *structure* is identical across
    /// bindings (`ParamCircuit::fusion_structure`), so per-binding
    /// transformation cost is pure angle substitution.
    pub fn run_sweep(
        &self,
        template: &qgear_ir::ParamCircuit,
        bindings: &[Vec<f64>],
    ) -> Result<Vec<RunResult>, PipelineError> {
        let circuits: Vec<Circuit> = bindings
            .iter()
            .map(|v| template.bind(v))
            .collect::<Result<_, _>>()?;
        if matches!(self.config.target, Target::NvidiaMqpu { .. }) {
            self.run_batch(&circuits)
        } else {
            circuits.iter().map(|c| self.run(c)).collect()
        }
    }

    /// mqpu batch: run independent circuits, one per simulated device.
    /// Requires an `nvidia-mqpu` target.
    pub fn run_batch(&self, circuits: &[Circuit]) -> Result<Vec<RunResult>, PipelineError> {
        let Target::NvidiaMqpu { devices } = self.config.target else {
            return Err(PipelineError::Usage(format!(
                "run_batch requires the nvidia-mqpu target, got {}",
                self.config.target
            )));
        };
        let engine = ClusterEngine::a100_cluster(devices);
        let opts = self.run_options();
        let mut natives = Vec::with_capacity(circuits.len());
        let mut phases = Vec::with_capacity(circuits.len());
        let mut modeled = Vec::with_capacity(circuits.len());
        for c in circuits {
            let artifacts = self.transform(c)?;
            phases.push(artifacts.global_phase);
            modeled.push(self.project(&artifacts.native)?);
            natives.push(artifacts.native);
        }
        let results: Vec<RunResult> = match self.config.precision {
            Precision::Fp32 => engine
                .run_batch::<f32>(&natives, &opts)
                .into_iter()
                .zip(&modeled)
                .zip(&phases)
                .map(|((out, t), &phase)| {
                    out.map(|o| RunResult::from_output(o, *t, Precision::Fp32, phase))
                })
                .collect::<Result<_, _>>()?,
            Precision::Fp64 => engine
                .run_batch::<f64>(&natives, &opts)
                .into_iter()
                .zip(&modeled)
                .zip(&phases)
                .map(|((out, t), &phase)| {
                    out.map(|o| RunResult::from_output(o, *t, Precision::Fp64, phase))
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_ir::reference;
    use qgear_num::approx::{approx_eq_up_to_phase, max_deviation};

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).t(1).cz(0, 1).swap(1, 2).cr1(0.8, 2, 3).ry(0.3, 3).cx(0, 3);
        c
    }

    #[test]
    fn transform_produces_native_equivalent() {
        let qgear = QGear::new(QGearConfig::default());
        let circ = sample_circuit();
        let artifacts = qgear.transform(&circ).unwrap();
        assert!(artifacts.native.is_native());
        assert!(artifacts.compression_ratio() > 1.0);
        // Native circuit + global phase == original unitary.
        let mut native_state = reference::run(&artifacts.native);
        reference::apply_global_phase(&mut native_state, artifacts.global_phase);
        let original = reference::run(&circ);
        assert!(max_deviation(&native_state, &original) < 1e-12);
    }

    #[test]
    fn run_on_every_target_agrees_up_to_phase() {
        let circ = sample_circuit();
        let expect = reference::run(&circ);
        for target in [
            Target::QiskitAerCpu,
            Target::Nvidia,
            Target::NvidiaMgpu { devices: 4 },
            Target::PennylaneLightningGpu,
        ] {
            let qgear = QGear::new(QGearConfig {
                target,
                precision: Precision::Fp64,
                ..Default::default()
            });
            let result = qgear.run(&circ).unwrap();
            assert!(result.modeled_seconds() > 0.0);
            let state = result.state.unwrap();
            assert!(
                approx_eq_up_to_phase(state.amplitudes(), &expect, 1e-10),
                "target {target}"
            );
        }
    }

    #[test]
    fn fp32_run_close_to_fp64_oracle() {
        let circ = sample_circuit();
        let qgear = QGear::new(QGearConfig { precision: Precision::Fp32, ..Default::default() });
        let result = qgear.run(&circ).unwrap();
        assert_eq!(result.precision, Precision::Fp32);
        let expect = reference::run(&circ);
        assert!(approx_eq_up_to_phase(
            result.state.unwrap().amplitudes(),
            &expect,
            1e-5
        ));
    }

    #[test]
    fn shots_produce_counts() {
        let mut circ = Circuit::new(3);
        circ.h(0).cx(0, 1).cx(1, 2).measure_all();
        let qgear = QGear::new(QGearConfig { shots: 10_000, ..Default::default() });
        let result = qgear.run(&circ).unwrap();
        let counts = result.counts.unwrap();
        assert_eq!(counts.total(), 10_000);
        assert_eq!(counts.get(0) + counts.get(7), 10_000, "GHZ parity");
    }

    #[test]
    fn mqpu_batch_roundtrip() {
        let circuits: Vec<Circuit> = (0..5)
            .map(|i| {
                let mut c = Circuit::new(3);
                c.h(0).ry(0.2 * i as f64, 1).cx(0, 2);
                c
            })
            .collect();
        let qgear = QGear::new(QGearConfig {
            target: Target::NvidiaMqpu { devices: 4 },
            precision: Precision::Fp64,
            ..Default::default()
        });
        let results = qgear.run_batch(&circuits).unwrap();
        assert_eq!(results.len(), 5);
        for (result, circ) in results.iter().zip(&circuits) {
            let expect = reference::run(circ);
            assert!(approx_eq_up_to_phase(
                result.state.as_ref().unwrap().amplitudes(),
                &expect,
                1e-10
            ));
        }
    }

    #[test]
    fn run_batch_requires_mqpu() {
        let qgear = QGear::new(QGearConfig::default());
        let err = qgear.run_batch(&[Circuit::new(1)]).unwrap_err();
        assert!(matches!(err, PipelineError::Usage(_)));
    }

    #[test]
    fn oom_propagates_from_engine() {
        let mut circ = Circuit::new(20);
        circ.h(0);
        let qgear = QGear::new(QGearConfig {
            memory_limit: Some(1 << 10),
            ..Default::default()
        });
        assert!(matches!(
            qgear.run(&circ),
            Err(PipelineError::Sim(SimError::OutOfMemory { .. }))
        ));
    }

    #[test]
    fn pruning_reported_in_artifacts() {
        let mut circ = Circuit::new(2);
        circ.rz(1e-9, 0).ry(0.5, 1).cx(0, 1);
        let qgear = QGear::new(QGearConfig { prune_eps: Some(1e-6), ..Default::default() });
        let artifacts = qgear.transform(&circ).unwrap();
        assert_eq!(artifacts.pruned, 1);
    }

    #[test]
    fn run_sweep_matches_individual_runs() {
        use qgear_ir::ParamCircuit;
        let mut template = ParamCircuit::new(3, 3);
        template.ry_sym(0, 0).ry_sym(1, 1).cx(0, 1).rz_sym(2, 2).cx(1, 2);
        template.measure_all();
        let bindings: Vec<Vec<f64>> = (0..4)
            .map(|i| vec![0.1 * i as f64, 0.2, -0.3 * i as f64])
            .collect();
        for target in [Target::Nvidia, Target::NvidiaMqpu { devices: 2 }] {
            let qgear = QGear::new(QGearConfig {
                target,
                precision: Precision::Fp64,
                shots: 0,
                ..Default::default()
            });
            let results = qgear.run_sweep(&template, &bindings).unwrap();
            assert_eq!(results.len(), 4);
            for (result, binding) in results.iter().zip(&bindings) {
                let bound = template.bind(binding).unwrap();
                let expect = reference::run(&bound.split_measurements().0);
                assert!(approx_eq_up_to_phase(
                    result.state.as_ref().unwrap().amplitudes(),
                    &expect,
                    1e-10
                ));
            }
        }
    }

    #[test]
    fn run_sweep_rejects_bad_binding() {
        use qgear_ir::ParamCircuit;
        let mut template = ParamCircuit::new(2, 2);
        template.ry_sym(0, 0).ry_sym(1, 1);
        let qgear = QGear::new(QGearConfig::default());
        assert!(matches!(
            qgear.run_sweep(&template, &[vec![0.1]]),
            Err(PipelineError::Ir(_))
        ));
    }

    #[test]
    fn modeled_cpu_slower_than_gpu_at_scale() {
        // The core promise: for big circuits the projection shows the GPU
        // path winning by orders of magnitude.
        let spec = qgear_workloads::random::RandomCircuitSpec {
            num_qubits: 30,
            num_blocks: 100,
            seed: 5,
            measure: false,
        };
        let circ = qgear_workloads::random::generate_random_gate_list(&spec);
        let cpu = QGear::new(QGearConfig { target: Target::QiskitAerCpu, ..Default::default() });
        let gpu = QGear::new(QGearConfig { target: Target::Nvidia, ..Default::default() });
        let t_cpu = cpu.project(&circ).unwrap().total();
        let t_gpu = gpu.project(&circ).unwrap().total();
        assert!(t_cpu / t_gpu > 100.0, "speedup {:.0}", t_cpu / t_gpu);
    }
}
