//! Observable evaluation through the pipeline (§2.4's Hamiltonian
//! workflow and the variational workloads of the paper's keywords).
//!
//! A [`Hamiltonian`] is partitioned into qubit-wise-commuting groups; each
//! group becomes **one** measured circuit (state-preparation + a shared
//! basis rotation + terminal measurements) that can run on its own device
//! — the mqpu pattern. Estimates come from Z-parity statistics of the
//! sampled counts; [`QGear::expectation_exact`] is the infinite-shot
//! oracle the sampled path is tested against.

use crate::transform::{PipelineError, QGear};
use qgear_ir::Circuit;
use qgear_statevec::Counts;
use qgear_workloads::hamiltonian::{Hamiltonian, PauliString};

/// Result of a sampled Hamiltonian evaluation.
#[derive(Debug, Clone)]
pub struct ExpectationEstimate {
    /// The estimated `⟨H⟩`.
    pub value: f64,
    /// Number of measurement circuits executed (QWC groups).
    pub groups: usize,
    /// Total shots spent.
    pub shots: u64,
}

/// Build the measured circuit for one QWC group: `circuit` followed by the
/// group's shared basis rotation and full measurement.
pub fn group_measurement_circuit(
    circuit: &Circuit,
    hamiltonian: &Hamiltonian,
    group: &[usize],
) -> Circuit {
    let n = circuit.num_qubits();
    // The union of the group's factors is consistent (QWC), so a single
    // representative string carries the whole rotation.
    let mut pairs = Vec::new();
    for &i in group {
        pairs.extend(hamiltonian.terms[i].1.factors());
    }
    let representative = PauliString::new(pairs);
    let mut measured = circuit.clone();
    measured
        .compose(&representative.measurement_basis_circuit(n))
        .expect("same register width");
    measured.measure_all();
    measured
}

/// Estimate one term's `⟨P⟩` from counts taken in the group's basis: the
/// expectation of the Z-parity over the term's support.
pub fn term_estimate(counts: &Counts, term: &PauliString) -> f64 {
    let mask: u64 = term.factors().map(|(q, _)| 1u64 << q).sum();
    let total = counts.total();
    if total == 0 {
        return 0.0;
    }
    let signed: i64 = counts
        .map
        .iter()
        .map(|(&key, &c)| {
            let parity = (key & mask).count_ones() % 2;
            if parity == 0 {
                c as i64
            } else {
                -(c as i64)
            }
        })
        .sum();
    signed as f64 / total as f64
}

impl QGear {
    /// Exact `⟨ψ|H|ψ⟩` on the circuit's final state (requires the run to
    /// keep the state; uses an fp64 evaluation regardless of the
    /// configured precision).
    pub fn expectation_exact(
        &self,
        circuit: &Circuit,
        hamiltonian: &Hamiltonian,
    ) -> Result<f64, PipelineError> {
        if hamiltonian.num_qubits() > circuit.num_qubits() {
            return Err(PipelineError::Usage(format!(
                "observable needs {} qubits, circuit has {}",
                hamiltonian.num_qubits(),
                circuit.num_qubits()
            )));
        }
        let mut config = self.config().clone();
        config.keep_state = true;
        config.shots = 0;
        let result = QGear::new(config).run(circuit)?;
        let state = result.state.expect("keep_state set");
        Ok(hamiltonian.expectation(&state))
    }

    /// Shot-based `⟨H⟩`: one measured circuit per QWC group,
    /// `shots_per_group` each, all dispatched through this pipeline's
    /// target (groups are independent, i.e. mqpu-parallelizable).
    pub fn expectation_sampled(
        &self,
        circuit: &Circuit,
        hamiltonian: &Hamiltonian,
        shots_per_group: u64,
    ) -> Result<ExpectationEstimate, PipelineError> {
        if hamiltonian.num_qubits() > circuit.num_qubits() {
            return Err(PipelineError::Usage(format!(
                "observable needs {} qubits, circuit has {}",
                hamiltonian.num_qubits(),
                circuit.num_qubits()
            )));
        }
        let groups = hamiltonian.qwc_groups();
        let mut value = hamiltonian.constant;
        let mut spent = 0u64;
        for (gi, group) in groups.iter().enumerate() {
            let measured = group_measurement_circuit(circuit, hamiltonian, group);
            let mut config = self.config().clone();
            config.shots = shots_per_group;
            config.seed = self.config().seed ^ (gi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            config.keep_state = false;
            let result = QGear::new(config).run(&measured)?;
            let counts = result
                .counts
                .ok_or_else(|| PipelineError::Usage("no counts returned".into()))?;
            spent += counts.total();
            for &i in group {
                let (c, ref p) = hamiltonian.terms[i];
                value += c * term_estimate(&counts, p);
            }
        }
        Ok(ExpectationEstimate { value, groups: groups.len(), shots: spent })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QGearConfig, Target};
    use qgear_num::scalar::Precision;
    use qgear_workloads::hamiltonian::Pauli;

    fn ansatz(theta: f64) -> Circuit {
        let mut c = Circuit::new(4);
        c.ry(theta, 0).cx(0, 1).ry(theta * 0.5, 2).cx(1, 2).cx(2, 3).rx(0.3, 3);
        c
    }

    fn qgear() -> QGear {
        QGear::new(QGearConfig {
            target: Target::Nvidia,
            precision: Precision::Fp64,
            ..Default::default()
        })
    }

    #[test]
    fn sampled_converges_to_exact() {
        let h = Hamiltonian::tfim_chain(4, 1.0, 0.6);
        let circ = ansatz(0.8);
        let q = qgear();
        let exact = q.expectation_exact(&circ, &h).unwrap();
        let est = q.expectation_sampled(&circ, &h, 400_000).unwrap();
        assert_eq!(est.groups, 2, "TFIM splits into ZZ and X groups");
        assert!(
            (est.value - exact).abs() < 0.02,
            "sampled {} vs exact {exact}",
            est.value
        );
    }

    #[test]
    fn exact_matches_direct_state_evaluation() {
        let h = Hamiltonian::tfim_chain(4, 0.7, 1.3);
        let circ = ansatz(1.1);
        let q = qgear();
        let via_pipeline = q.expectation_exact(&circ, &h).unwrap();
        let state = q.run(&circ).unwrap().state.unwrap();
        // The pipeline's transpiled state may differ by a global phase —
        // expectations are phase-invariant, so values must agree exactly.
        assert!((via_pipeline - h.expectation(&state)).abs() < 1e-12);
    }

    #[test]
    fn term_estimate_signs() {
        // Counts concentrated on |11⟩: Z0Z1 parity even → +1; Z0 → -1.
        let mut counts = Counts { qubits: vec![0, 1], map: Default::default() };
        counts.map.insert(0b11, 1000);
        let zz = PauliString::new([(0, Pauli::Z), (1, Pauli::Z)]);
        let z0 = PauliString::new([(0, Pauli::Z)]);
        assert_eq!(term_estimate(&counts, &zz), 1.0);
        assert_eq!(term_estimate(&counts, &z0), -1.0);
    }

    #[test]
    fn oversized_observable_rejected() {
        let h = Hamiltonian::tfim_chain(8, 1.0, 1.0);
        let circ = ansatz(0.1); // 4 qubits
        assert!(matches!(
            qgear().expectation_exact(&circ, &h),
            Err(PipelineError::Usage(_))
        ));
    }

    #[test]
    fn group_measurement_circuit_rotates_bases() {
        let h = Hamiltonian::tfim_chain(3, 1.0, 1.0);
        let groups = h.qwc_groups();
        let circ = Circuit::new(3);
        // The X group's measured circuit must contain Hadamards.
        let x_group = groups
            .iter()
            .find(|g| h.terms[g[0]].1.factors().any(|(_, p)| p == Pauli::X))
            .unwrap();
        let measured = group_measurement_circuit(&circ, &h, x_group);
        assert!(measured.count_kind(qgear_ir::GateKind::H) >= 3);
        assert_eq!(measured.count_kind(qgear_ir::GateKind::Measure), 3);
    }
}
