//! The Pennylane-lightning.gpu baseline model.
//!
//! §4 explains why Pennylane loses to Q-Gear despite sharing cuQuantum
//! underneath: "when Pennylane invokes the … backend, the simulation
//! process takes longer because it must first transpile high-level Python
//! representations into low-level CUDA kernels". Two consequences are
//! modeled here:
//!
//! 1. **no cross-gate fusion** — each gate becomes its own kernel sweep
//!    (executed for real, so results stay exact);
//! 2. **per-gate lowering latency** — charged by the performance model's
//!    `pennylane_per_gate` constant at projection time.

use qgear_ir::Circuit;
use qgear_num::Scalar;
use qgear_statevec::{GpuDevice, RunOptions, RunOutput, SimError, Simulator};

/// Unfused GPU execution standing in for Pennylane lightning.gpu.
#[derive(Debug, Clone)]
pub struct PennylaneLikeBackend {
    /// The underlying simulated device.
    pub device: GpuDevice,
}

impl Default for PennylaneLikeBackend {
    fn default() -> Self {
        PennylaneLikeBackend { device: GpuDevice::a100_40gb() }
    }
}

impl<T: Scalar> Simulator<T> for PennylaneLikeBackend {
    fn name(&self) -> &'static str {
        "pennylane-lightning-gpu"
    }

    fn run(&self, circuit: &Circuit, opts: &RunOptions) -> Result<RunOutput<T>, SimError> {
        // Per-gate kernels: force the fusion window to 1.
        let unfused = RunOptions { fusion_width: 1, ..opts.clone() };
        self.device.run(circuit, &unfused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgear_ir::reference;
    use qgear_num::approx::max_deviation;

    #[test]
    fn results_match_reference_exactly() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.7, 2).cx(1, 3).rz(-0.4, 0);
        let out: RunOutput<f64> =
            PennylaneLikeBackend::default().run(&c, &RunOptions::default()).unwrap();
        let expect = reference::run(&c);
        assert!(max_deviation(out.state.unwrap().amplitudes(), &expect) < 1e-12);
    }

    #[test]
    fn launches_one_kernel_per_gate_cluster() {
        // No cross-qubit fusion: kernel count must be at least the number
        // of two-qubit gates plus distinct single-qubit groups.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.7, 2).cx(1, 3).rz(-0.4, 0);
        let penny: RunOutput<f64> =
            PennylaneLikeBackend::default().run(&c, &RunOptions::default()).unwrap();
        let qgear: RunOutput<f64> =
            GpuDevice::a100_40gb().run(&c, &RunOptions::default()).unwrap();
        assert!(penny.stats.kernels_launched > qgear.stats.kernels_launched);
    }

    #[test]
    fn fusion_width_request_is_ignored() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2);
        let wide = RunOptions { fusion_width: 5, ..Default::default() };
        let narrow = RunOptions { fusion_width: 1, ..Default::default() };
        let a: RunOutput<f64> = PennylaneLikeBackend::default().run(&c, &wide).unwrap();
        let b: RunOutput<f64> = PennylaneLikeBackend::default().run(&c, &narrow).unwrap();
        assert_eq!(a.stats.kernels_launched, b.stats.kernels_launched);
    }
}
