//! Umbrella crate for the Q-GEAR reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories; all functionality lives in the `qgear-*` member crates and is
//! re-exported by the [`qgear`] core crate.
pub use qgear as core;
