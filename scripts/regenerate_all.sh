#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the ablations.
# Console output lands in results/console/, rows in results/*.jsonl.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results/console

BINS=(table1 table2 fig4a fig4b fig4c fig5 fig6 appendix_c headline \
      ablation_fusion ablation_precision ablation_remap ablation_mixing ablation_compress)

cargo build --release -p qgear-bench --bins

for bin in "${BINS[@]}"; do
    echo "=== $bin ==="
    cargo run -q --release -p qgear-bench --bin "$bin" \
        | tee "results/console/$bin.txt"
done

# Measured modes (real wall-clock on this machine).
for bin in fig4a fig4c fig5; do
    echo "=== $bin --measured ==="
    cargo run -q --release -p qgear-bench --bin "$bin" -- --measured \
        | tee "results/console/${bin}_measured.txt"
done
echo "all experiments regenerated."
