#!/usr/bin/env bash
# Full local gate: build, tests, docs (warnings fatal), and lint across
# the whole workspace. CI and pre-merge both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The cross-backend differential suite is part of the workspace test run
# above, but it is the correctness gate for the sweep-scheduled hot path
# and for checkpoint/resume bit-identity — run it by name so a
# filtered/partial test environment can't skip it.
echo "==> cargo test -q --test differential"
cargo test -q --test differential

# Checkpoint/resume equivalence at every interruption boundary, by name
# for the same reason.
echo "==> cargo test -q --test differential resume_at_every_segment_boundary"
cargo test -q --test differential resume_at_every_segment_boundary_is_bit_identical_to_straight_through

# The smoke grid runs all four modes (unfused/fused/sweep/planned) end
# to end; --enforce-planned fails the gate if the adaptive planner is
# slower than the best fixed mode on any smoke cell (docs/PLANNER.md),
# and --enforce-baseline fails it if any cell regressed >10% (+10 ms
# jitter floor) against the committed BENCH_hotpath_baseline.json. For
# an intentional perf change, rerun the smoke bench with
# QGEAR_BENCH_REBASELINE=1 and commit the rewritten baseline
# (docs/PERFORMANCE.md).
echo "==> hotpath bench smoke (sweep executor + planner + perf-baseline gates)"
cargo run --release -p qgear-bench --bin hotpath -- --smoke --enforce-planned --enforce-baseline

# Backend smoke: stabilizer scaling at 16/64/128 qubits plus trajectory
# throughput, emitting BENCH_backends.json (docs/BACKENDS.md). The run
# itself asserts shot conservation on every point, so a broken engine
# fails the gate rather than writing bad numbers.
echo "==> bench_backends smoke (stabilizer scaling + trajectory throughput)"
cargo run --release -p qgear-bench --bin bench_backends -- --smoke

# Batch coalescing smoke: solo vs batched on the same job stream, with
# bitwise-identical per-job counts asserted across modes and a ≥2×
# modeled-throughput floor enforced by the binary itself; emits
# BENCH_serve_batch_smoke.json (docs/SERVING.md).
echo "==> bench_serve_batch smoke (coalescing throughput + cross-mode bit identity)"
cargo run --release -p qgear-bench --bin bench_serve_batch -- --smoke

# Sharded-serving smoke: a beyond-one-worker job served on an
# undersized group, with bitwise count identity against the dense
# service asserted under clean, worker-death (checkpoint migration onto
# a replacement group), and link-fault (in-place recovery) runs; emits
# BENCH_shard_smoke.json (docs/SHARDING.md). The named simtest run
# pins the migration path under three derived scenario seeds.
echo "==> bench_shard smoke (shard migration + cross-mode bit identity)"
cargo run --release -p qgear-bench --bin bench_shard -- --smoke
echo "==> cargo test -q --test simtest shard_worker_death (named migration gate)"
cargo test -q --test simtest shard_worker_death_migrates_onto_a_fresh_group_and_completes_bit_identically

# Deterministic simulation matrix: the simtest suite re-runs under four
# fixed scenario seeds so the oracle properties — including the
# checkpoint-recovery acceptance scenario (die mid-run, newest
# generation corrupt, resume from the prior one) — are exercised on
# more of the seed space than the default base seed (docs/TESTING.md).
for seed in 0x51D3C0DE 0xDEADBEEF 0x00C0FFEE 0x0C1CADA5; do
    echo "==> cargo test -q --test simtest (QGEAR_SIMTEST_SEED=${seed})"
    QGEAR_SIMTEST_SEED="${seed}" cargo test -q --test simtest
done

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# clippy is optional in minimal toolchains; the gate still fails if it
# is installed and finds anything.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets (-D warnings)"
    cargo clippy --workspace --all-targets --release -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint"
fi

echo "All checks passed."
