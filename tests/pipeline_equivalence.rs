//! Cross-crate integration: every execution target must produce the same
//! physics for the same circuit — the reference simulator is the oracle,
//! targets differ only in execution strategy (and global phase).

use qgear::{QGear, QGearConfig, Target};
use qgear_ir::{reference, Circuit};
use qgear_num::approx::approx_eq_up_to_phase;
use qgear_num::scalar::Precision;
use qgear_workloads::qft::{qft_circuit, QftOptions};
use qgear_workloads::random::{generate_random_gate_list, RandomCircuitSpec};

const TARGETS: [Target; 4] = [
    Target::QiskitAerCpu,
    Target::Nvidia,
    Target::NvidiaMgpu { devices: 4 },
    Target::PennylaneLightningGpu,
];

fn assert_all_targets_agree(circ: &Circuit, tol: f64) {
    let expect = reference::run(circ);
    for target in TARGETS {
        let qgear = QGear::new(QGearConfig {
            target,
            precision: Precision::Fp64,
            ..Default::default()
        });
        let result = qgear.run(circ).unwrap();
        let state = result.state.expect("state kept");
        assert!(
            approx_eq_up_to_phase(state.amplitudes(), &expect, tol),
            "target {target} diverged on '{}'",
            circ.name
        );
    }
}

#[test]
fn random_unitaries_agree_across_targets() {
    for seed in [1u64, 2] {
        let circ = generate_random_gate_list(&RandomCircuitSpec {
            num_qubits: 9,
            num_blocks: 120,
            seed,
            measure: false,
        });
        assert_all_targets_agree(&circ, 1e-9);
    }
}

#[test]
fn qft_agrees_across_targets() {
    let circ = qft_circuit(8, &QftOptions::default());
    assert_all_targets_agree(&circ, 1e-9);
}

#[test]
fn qcrank_agrees_across_targets() {
    use qgear_workloads::qcrank::{QcrankCodec, QcrankConfig};
    let config = QcrankConfig { addr_qubits: 4, data_qubits: 3 };
    let values: Vec<f64> = (0..config.capacity())
        .map(|i| ((i * 31 % 97) as f64 / 48.5) - 1.0)
        .collect();
    let circ = QcrankCodec::new(config).encode(&values);
    // Drop measurements for the pure-state comparison.
    let (unitary, _) = circ.split_measurements();
    assert_all_targets_agree(&unitary, 1e-9);
}

#[test]
fn counts_distributions_consistent_across_targets() {
    // Sampled histograms from different engines must agree within shot
    // noise, since they sample the same exact distribution.
    let mut circ = generate_random_gate_list(&RandomCircuitSpec {
        num_qubits: 6,
        num_blocks: 40,
        seed: 9,
        measure: false,
    });
    circ.measure_all();
    let shots = 200_000u64;
    let reference_probs = {
        let (unitary, _) = circ.split_measurements();
        let state = reference::run(&unitary);
        reference::probabilities(&state)
    };
    for target in TARGETS {
        let qgear = QGear::new(QGearConfig {
            target,
            precision: Precision::Fp64,
            shots,
            ..Default::default()
        });
        let counts = qgear.run(&circ).unwrap().counts.unwrap();
        assert_eq!(counts.total(), shots);
        for (key, &p) in reference_probs.iter().enumerate() {
            let observed = counts.get(key as u64) as f64 / shots as f64;
            let sigma = (p * (1.0 - p) / shots as f64).sqrt();
            assert!(
                (observed - p).abs() < 6.0 * sigma + 1e-5,
                "target {target}, outcome {key}: {observed} vs {p}"
            );
        }
    }
}

#[test]
fn fp32_tracks_fp64_within_tolerance() {
    let circ = generate_random_gate_list(&RandomCircuitSpec {
        num_qubits: 10,
        num_blocks: 300,
        seed: 4,
        measure: false,
    });
    let f64_result = QGear::new(QGearConfig {
        precision: Precision::Fp64,
        ..Default::default()
    })
    .run(&circ)
    .unwrap();
    let f32_result = QGear::new(QGearConfig {
        precision: Precision::Fp32,
        ..Default::default()
    })
    .run(&circ)
    .unwrap();
    let fid = f64_result
        .state
        .unwrap()
        .fidelity(&f32_result.state.unwrap());
    assert!(fid > 0.999_9, "fp32 infidelity too high: {}", 1.0 - fid);
}

#[test]
fn transpiled_global_phase_is_exact() {
    // The reported global phase must reconcile the transformed state with
    // the original unitary exactly (not just up to phase).
    let mut circ = Circuit::new(5);
    circ.t(0).cz(1, 2).swap(3, 4).u(0.4, -0.9, 1.3, 2).ccx(0, 1, 3).p(0.7, 4);
    let qgear = QGear::new(QGearConfig {
        target: Target::Nvidia,
        precision: Precision::Fp64,
        ..Default::default()
    });
    let result = qgear.run(&circ).unwrap();
    let mut state = result.state.unwrap().into_amplitudes();
    reference::apply_global_phase(&mut state, result.global_phase);
    let expect = reference::run(&circ);
    assert!(qgear_num::approx::max_deviation(&state, &expect) < 1e-10);
}
