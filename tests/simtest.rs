//! Deterministic simulation tests for the serving runtime
//! (`qgear-simtest` driving `qgear-serve` / `qgear-cluster`).
//!
//! Every temporal decision in the code under test flows through the
//! `Clock` capability, so these tests substitute a [`VirtualClock`] and
//! assert *exact* virtual-time behaviour: deadlines at the boundary,
//! cancel latency in backoff slices, retry-storm backoff sums, and
//! engine span durations. Random scenarios run under the full oracle
//! set; a failing seed prints a one-line replay command
//! (`QGEAR_SIMTEST_SEED=<seed> cargo test -q --test simtest <name>`)
//! and the shrinker reduces it to a minimal reproduction.
//!
//! The service publishes counters/spans into the process-global
//! telemetry registry, so every test serializes on `LOCK` (the same
//! discipline as `tests/telemetry.rs`).

use qgear_cluster::ClusterEngine;
use qgear_ir::Circuit;
use qgear_serve::{
    BackendKind, BatchConfig, BatchMemberDisposition, CheckpointRecord, FaultKind, FaultPlan,
    FaultSchedule, JobOutcome, JobSpec, PoolConfig, PoolDecision, ServeConfig, ServeError, Service,
    ShardConfig, ShardRecord,
};
use qgear_simtest::{
    replay_command, run_scenario, seed_from_env, shrink, JobDef, Op, OutcomeSummary, Scenario,
    VirtualClock,
};
use qgear_statevec::{GpuDevice, RunOptions, RunOutput, Simulator};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests (telemetry and clocks are process-global); a panic
/// in one test must not poison the rest of the suite.
fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bell() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1).measure_all();
    c
}

/// Drain a virtually-clocked service: advance to successive sleeper
/// deadlines until the queue is empty and nothing is in flight. Bounded
/// in real time so a scheduling bug fails the test instead of hanging it.
fn drain(service: &Service, clock: &VirtualClock) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !service.is_idle() {
        assert!(Instant::now() < deadline, "service failed to quiesce in 30s real time");
        if clock.advance_to_next_sleeper().is_none() {
            std::thread::sleep(Duration::from_micros(100));
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------
// Named regression scenarios (exact virtual-time assertions)
// ---------------------------------------------------------------------

/// A queue wait of *exactly* the deadline still runs; one nanosecond
/// over expires. The single worker is pinned in a blocker backoff whose
/// deadline lands exactly where the victims' queue wait equals `PIN`.
#[test]
fn deadline_at_the_exact_boundary_runs_one_nanosecond_over_expires() {
    let _l = lock();
    const PIN: Duration = Duration::from_millis(1);
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        schedule: FaultSchedule::none().with_event(0, 0, FaultKind::Transient),
        retry_backoff: PIN,
        backoff_slice: PIN,
        clock: clock.clone(),
        ..Default::default()
    });

    // Blocker (job 0): first attempt faults, backoff parks the worker
    // until exactly t = PIN.
    let blocker = service.submit(JobSpec::new(bell()).tenant("pin")).job_id().unwrap();
    assert!(clock.wait_for_sleepers(1, Duration::from_secs(10)), "worker never parked");

    // Both victims submitted at t = 0; they dispatch at t = PIN, so
    // their queue wait is exactly PIN.
    let on_time = service
        .submit(JobSpec::new(bell()).seed(2).deadline(PIN))
        .job_id()
        .unwrap();
    let over = service
        .submit(JobSpec::new(bell()).seed(3).deadline(PIN - Duration::from_nanos(1)))
        .job_id()
        .unwrap();

    assert_eq!(clock.advance_to_next_sleeper(), Some(PIN));
    drain(&service, &clock);

    assert!(service.try_outcome(blocker).unwrap().is_completed());
    let on_time_outcome = service.try_outcome(on_time).unwrap();
    assert!(
        on_time_outcome.is_completed(),
        "wait == deadline must run (the boundary belongs to the job), got {on_time_outcome:?}"
    );
    assert!(matches!(service.try_outcome(over).unwrap(), JobOutcome::Expired));
    service.shutdown();
}

/// Regression for the uninterruptible-backoff bug: a cancel issued while
/// the worker is parked in retry backoff resolves within one backoff
/// *slice* (5 µs here), not after the full 400 µs backoff.
#[test]
fn cancel_during_backoff_lands_within_one_slice() {
    let _l = lock();
    let slice = Duration::from_micros(5);
    let backoff = Duration::from_micros(400);
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        schedule: FaultSchedule::none().with_event(0, 0, FaultKind::Transient),
        retry_backoff: backoff,
        backoff_slice: slice,
        clock: clock.clone(),
        ..Default::default()
    });

    let id = service.submit(JobSpec::new(bell())).job_id().unwrap();
    assert!(clock.wait_for_sleepers(1, Duration::from_secs(10)), "worker never parked");

    // In flight, so the cancel is recorded, not immediate.
    assert!(!service.cancel(id));
    drain(&service, &clock);

    assert!(matches!(service.try_outcome(id).unwrap(), JobOutcome::Cancelled));
    let resolved_at = service.outcome_time(id).unwrap();
    assert_eq!(
        resolved_at, slice,
        "cancel must be observed at the first slice boundary, not after the full backoff"
    );
    service.shutdown();
}

/// Retry storm: at fault rate 1.0 every attempt strikes, so the job
/// fails after `1 + max_retries` attempts and the failure lands at
/// exactly the sum of the exponential backoffs (1+2+4+8 = 15 × base).
#[test]
fn retry_storm_at_rate_one_fails_at_the_exact_backoff_sum() {
    let _l = lock();
    let base = Duration::from_micros(10);
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        fault: FaultPlan::with_rate(1.0, 7),
        max_retries: 4,
        retry_backoff: base,
        backoff_slice: Duration::from_secs(1), // one sleep per backoff
        clock: clock.clone(),
        ..Default::default()
    });

    let id = service.submit(JobSpec::new(bell())).job_id().unwrap();
    drain(&service, &clock);

    match service.try_outcome(id).unwrap() {
        JobOutcome::Failed(ServeError::RetriesExhausted { attempts }) => {
            assert_eq!(attempts, 5, "1 initial + 4 retries");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(
        service.outcome_time(id).unwrap(),
        base * 15,
        "virtual service time must equal the exact backoff sum"
    );
    service.shutdown();
}

/// Worker death mid-job: the job is requeued (second dispatch) and its
/// attempt ledger carries across, so it completes on attempt 2 with no
/// job lost and no third dispatch.
#[test]
fn worker_death_requeues_and_the_attempt_ledger_carries_over() {
    let _l = lock();
    let service = Service::start(ServeConfig {
        workers: 1,
        schedule: FaultSchedule::none().with_event(0, 0, FaultKind::WorkerDeath),
        ..Default::default()
    });
    let id = service.submit(JobSpec::new(bell()).shots(200)).job_id().unwrap();
    let outcome = service.wait(id).unwrap();
    let result = outcome.result().expect("survives the death via requeue");
    assert_eq!(result.attempts, 2, "the dying attempt is consumed");
    let dispatches = service.dispatch_log().iter().filter(|r| r.id == id).count();
    assert_eq!(dispatches, 2, "exactly one requeue");
    service.shutdown();
}

/// A corrupted cache entry is detected at the probe, invalidated, and
/// the job re-executes cold — reproducing the original bytes exactly
/// and repopulating the cache for the next hit.
#[test]
fn corrupted_cache_entry_falls_back_to_a_bit_identical_cold_run() {
    let _l = lock();
    let service = Service::start(ServeConfig {
        workers: 1,
        schedule: FaultSchedule::none().with_event(1, 0, FaultKind::CorruptCache),
        state_cache_capacity: 0, // isolate the full-result cache path
        ..Default::default()
    });
    let spec = JobSpec::new(bell()).shots(300).seed(9);
    let cold = service.submit(spec.clone()).job_id().unwrap();
    let cold = service.wait(cold).unwrap();
    let cold = cold.result().unwrap();
    assert!(!cold.from_cache);

    // Job 1: its cache entry is scheduled corrupt — probe invalidates it.
    let recovered = service.submit(spec.clone()).job_id().unwrap();
    let recovered = service.wait(recovered).unwrap();
    let recovered = recovered.result().unwrap();
    assert!(!recovered.from_cache, "corrupt entry must not be served");
    assert_eq!(recovered.attempts, 1, "re-executed cold");
    assert_eq!(cold.counts, recovered.counts, "recovery is bit-identical");

    // Job 2: the re-execution repopulated the cache.
    let warm = service.submit(spec).job_id().unwrap();
    let warm = service.wait(warm).unwrap();
    let warm = warm.result().unwrap();
    assert!(warm.from_cache);
    assert_eq!(warm.counts, cold.counts);
    service.shutdown();
}

/// The acceptance scenario for checkpointed execution: the worker dies
/// after segment k = 2 with the newest checkpoint (generation 1, taken
/// at cursor 2) corrupted in the store. The retry's recovery ladder
/// must reject generation 1 by CRC, resume from generation 0 — the
/// k − 1 segments of proven progress — and still complete with counts
/// byte-identical to a fault-free run (the resume-bit-identity oracle
/// checks the hash against a clean mirror execution). Varied over ≥ 3
/// derived seeds, each replayable via `QGEAR_SIMTEST_SEED`.
#[test]
fn death_at_segment_k_with_newest_checkpoint_corrupt_resumes_from_the_prior_generation() {
    let _l = lock();
    let base = seed_from_env(0x0C1C_ADA5);
    for i in 0..3u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Every circuit family at 3 qubits has ≥ 3 schedule steps under
        // the harness fusion width of 1, so a death after 2 segments
        // always strikes mid-run with two generations already written.
        let def = JobDef {
            shape: (seed % 3) as u8,
            qubits: 3,
            shots: 16 + seed % 200,
            seed: seed % 7,
            ..JobDef::bell()
        };
        let scenario = Scenario::empty(seed)
            .op(Op::Submit(def))
            .event(0, 0, FaultKind::WorkerDeathMidRun { after_segments: 2 })
            .event(0, 0, FaultKind::CorruptCheckpoint { generation: 1 });
        let report = run_scenario(&scenario);
        assert!(
            report.is_ok(),
            "oracle violations for seed {seed:#x}: {violations:#?}\nreplay: {cmd}",
            violations = report.violations,
            cmd = replay_command(
                seed,
                "death_at_segment_k_with_newest_checkpoint_corrupt_resumes_from_the_prior_generation",
            ),
        );
        // Scenario job 0 is admission id 1 (the harness blocker is 0).
        let log = &report.checkpoint_log;
        assert!(
            log.contains(&CheckpointRecord::VerifyFailed { job: 1, generation: 1 }),
            "newest generation must fail verification; log: {log:?}"
        );
        assert!(
            log.contains(&CheckpointRecord::Resumed { job: 1, generation: 0, cursor: 1 }),
            "must resume from generation k−1 at cursor 1; log: {log:?}"
        );
        assert!(
            !log.contains(&CheckpointRecord::ColdRestart { job: 1 }),
            "an older verified generation makes a cold restart illegal; log: {log:?}"
        );
        match report.outcomes.get(&1) {
            Some(OutcomeSummary::Completed { attempts: 2, .. }) => {}
            other => panic!("expected completion on attempt 2, got {other:?} (seed {seed:#x})"),
        }
    }
}

/// The storage side of the fault taxonomy: a truncated or bit-flipped
/// container is rejected loudly (never misread as shorter valid data).
#[test]
fn truncated_or_corrupted_hdf5_bytes_are_rejected() {
    use qgear_hdf5lite::{Compression, Dataset, H5File};
    let mut f = H5File::new();
    f.write_dataset("run/probs", Dataset::from_f64(&[0.25, 0.75, 0.5, 0.125], &[4]))
        .unwrap();
    let bytes = f.to_bytes(Compression::ShuffleRle);
    assert_eq!(H5File::from_bytes(&bytes).unwrap(), f, "sanity: intact bytes round-trip");

    for keep in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            H5File::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {keep} bytes must be detected"
        );
    }
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(H5File::from_bytes(&flipped).is_err(), "bit flip must fail the checksum");
}

// ---------------------------------------------------------------------
// Batch coalescing under simulation
// ---------------------------------------------------------------------

/// Satellite regression for the coalescing/deadline interaction: a
/// batch leader whose deadline would expire *inside* the coalescing
/// window must flush early, at exactly the expiry instant — and a queue
/// wait of exactly the deadline still runs (the boundary belongs to the
/// job, same as solo dispatch). A shape-incompatible straggler keeps
/// the queue non-empty so the coalescer genuinely waits (an empty queue
/// flushes immediately on queue-drain and never opens the window).
#[test]
fn a_deadline_inside_the_coalescing_window_flushes_the_batch_early() {
    let _l = lock();
    const PIN: Duration = Duration::from_micros(500);
    let window = Duration::from_micros(400);
    let slack = Duration::from_micros(100); // deadline headroom past the pop
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        batch: BatchConfig { max_size: 4, window },
        schedule: FaultSchedule::none().with_event(0, 0, FaultKind::Transient),
        retry_backoff: PIN,
        // One park per wait (the slice exceeds both PIN and the window),
        // so every sleeper deadline below is exact.
        backoff_slice: Duration::from_millis(1),
        clock: clock.clone(),
        ..Default::default()
    });

    // Blocker (job 0): the transient strike parks the worker in backoff
    // until t = PIN, so both victims queue before any dispatch.
    let blocker = service.submit(JobSpec::new(bell()).tenant("pin")).job_id().unwrap();
    assert!(clock.wait_for_sleepers(1, Duration::from_secs(10)), "worker never parked");

    // The leader-to-be: popped at t = PIN, its deadline lands mid-window
    // at PIN + 100 µs < PIN + 400 µs. Distinct shape from the bell
    // blocker so neither cache answers it.
    let mut leader_circuit = Circuit::new(2);
    leader_circuit.h(0).ry(0.7, 0).cx(0, 1).measure_all();
    let victim = service
        .submit(JobSpec::new(leader_circuit).deadline(PIN + slack))
        .job_id()
        .unwrap();
    // Shape-incompatible straggler: never coalesces with the leader,
    // keeps the queue non-empty while the window is open.
    let mut other = Circuit::new(2);
    other.h(0).ry(0.4, 1).cx(0, 1).measure_all();
    let straggler = service.submit(JobSpec::new(other)).job_id().unwrap();

    // Release the blocker; the worker completes it, pops the victim as
    // batch leader at t = PIN and parks waiting for shape-mates.
    assert_eq!(clock.advance_to_next_sleeper(), Some(PIN));
    // The park must be clipped to the member's expiry instant
    // (PIN + 100 µs), not the window end (PIN + 400 µs) and not the
    // 1 ms backoff slice: the sleeper deadline proves which. The woken
    // blocker sleeper may stay registered until its thread resumes, so
    // poll past any deadline ≤ PIN (advancing onto a stale entry is a
    // no-op — time never moves backward).
    let bound = Instant::now() + Duration::from_secs(10);
    let parked_at = loop {
        assert!(Instant::now() < bound, "the leader never parked in the coalescing window");
        match clock.advance_to_next_sleeper() {
            Some(deadline) if deadline > PIN => break deadline,
            _ => std::thread::yield_now(),
        }
    };
    assert_eq!(
        parked_at,
        PIN + slack,
        "coalescing wait must be clipped to the deadline, not the window"
    );
    drain(&service, &clock);

    assert!(service.try_outcome(blocker).unwrap().is_completed());
    let outcome = service.try_outcome(victim).unwrap();
    assert!(
        outcome.is_completed(),
        "a flush at the expiry boundary must still run the job, got {outcome:?}"
    );
    assert_eq!(
        service.outcome_time(victim).unwrap(),
        PIN + slack,
        "the member runs at exactly the clipped flush instant"
    );
    assert!(service.try_outcome(straggler).unwrap().is_completed());
    service.shutdown();

    let log = service.batch_log();
    let lead = log
        .iter()
        .find(|r| r.members.iter().any(|&(id, _)| id == victim.0))
        .expect("the leader's flush is logged");
    assert_eq!(lead.formed_at, PIN, "the window opened at the leader's pop");
    assert_eq!(lead.flushed_at, PIN + slack, "flushed at the clip, not the window end");
    assert_eq!(lead.members, vec![(victim.0, BatchMemberDisposition::Executed)]);
}

/// Mid-batch worker death: the doomed joint pass requeues every
/// stranded member *individually* with the dying dispatch charged to
/// its attempt ledger, and the retries complete — each job shows
/// exactly one `Requeued` and one `Executed` batch appearance, two
/// dispatches, and a completion on attempt 2.
#[test]
fn mid_batch_worker_death_requeues_survivors_with_the_cumulative_ledger() {
    let _l = lock();
    let mut scenario = Scenario::empty(0xDEAD_BA7C).batched(4, 400);
    for seed in 0..3u64 {
        // Same shape family (one coalescing bucket), distinct sampling
        // seeds (no result-cache short-circuit).
        scenario = scenario.op(Op::Submit(JobDef { shape: 1, qubits: 3, seed, ..JobDef::bell() }));
    }
    scenario = scenario
        .op(Op::Advance(Duration::from_micros(50)))
        .event(0, 0, FaultKind::WorkerDeathMidBatch { after_members: 0 });
    let report = run_scenario(&scenario);
    assert!(report.is_ok(), "violations: {:?}", report.violations);

    // Scenario jobs 0..3 are admission ids 1..=3 (the harness blocker
    // is 0). Tally each job's batch appearances across the whole log.
    for id in 1..=3u64 {
        let (mut requeued, mut executed) = (0, 0);
        for record in &report.batch_log {
            for &(member, disposition) in &record.members {
                if member != id {
                    continue;
                }
                match disposition {
                    BatchMemberDisposition::Requeued => requeued += 1,
                    BatchMemberDisposition::Executed => executed += 1,
                    other => panic!("job {id}: unexpected disposition {other:?}"),
                }
            }
        }
        assert_eq!(requeued, 1, "job {id} must be requeued by the dying joint pass");
        assert_eq!(executed, 1, "job {id} must execute exactly once after the requeue");
        assert_eq!(
            report.dispatch_counts.get(&id),
            Some(&2),
            "job {id}: the doomed dispatch plus the retry"
        );
        match report.outcomes.get(&id) {
            Some(OutcomeSummary::Completed { attempts: 2, .. }) => {}
            other => panic!(
                "job {id}: the dying dispatch must stay on the ledger (attempts 2), got {other:?}"
            ),
        }
    }
}

/// Random batched scenarios — shape-mixed job sets with coalescing on
/// and mid-batch worker deaths in the fault script — hold every oracle,
/// including coalescing conservation and the batch attempt ledger.
/// Six derived seeds, each replayable via `QGEAR_SIMTEST_SEED`.
#[test]
fn random_batched_scenarios_hold_every_oracle() {
    let _l = lock();
    let base = seed_from_env(0xBA7C_5EED);
    let mut coalesced = 0usize;
    for i in 0..6u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scenario = Scenario::generate_batched(seed);
        let report = run_scenario(&scenario);
        assert!(
            report.is_ok(),
            "oracle violations for seed {seed:#x}: {violations:#?}\nreplay: {cmd}",
            violations = report.violations,
            cmd = replay_command(seed, "random_batched_scenarios_hold_every_oracle"),
        );
        coalesced += usize::from(report.batch_log.iter().any(|r| !r.members.is_empty()));
    }
    assert!(
        coalesced >= 1,
        "at least one generated scenario must exercise the batch path (vacuity guard)"
    );
}

/// The shrinker understands the batch knobs: a failure that reproduces
/// without coalescing sheds them (pass 5), while a failure that *needs*
/// the joint pass — a mid-batch requeue disposition — keeps both the
/// batch config and the `WorkerDeathMidBatch` event in the minimal
/// reproduction.
#[test]
fn the_shrinker_sheds_batching_only_when_it_is_irrelevant() {
    let _l = lock();

    // Irrelevant: a zero-deadline expiry fires with or without
    // coalescing, so the minimal repro is the legacy configuration.
    let poison = JobDef { deadline_us: Some(0), seed: 77, ..JobDef::bell() };
    let scenario = Scenario::empty(0xB5EED)
        .batched(4, 300)
        .op(Op::Submit(JobDef::bell()))
        .op(Op::Submit(poison))
        .op(Op::Advance(Duration::from_micros(200)));
    let expires = |s: &Scenario| {
        run_scenario(s).outcomes.values().any(|o| matches!(o, OutcomeSummary::Expired))
    };
    assert!(expires(&scenario), "the planted expiry must trigger pre-shrink");
    let (minimal, _) = shrink(&scenario, expires);
    assert!(expires(&minimal));
    assert!(
        minimal.batch.is_none(),
        "batching is irrelevant to the expiry and must be shed: {minimal:?}"
    );

    // Essential: the Requeued disposition only exists in the batch
    // path, so the batch knobs and the mid-batch death survive.
    let mut batched = Scenario::empty(0xB5EED).batched(4, 300);
    for seed in 0..2u64 {
        batched = batched.op(Op::Submit(JobDef { shape: 1, qubits: 3, seed, ..JobDef::bell() }));
    }
    batched = batched.event(0, 0, FaultKind::WorkerDeathMidBatch { after_members: 0 });
    let requeues = |s: &Scenario| {
        run_scenario(s)
            .batch_log
            .iter()
            .flat_map(|r| &r.members)
            .any(|&(_, d)| d == BatchMemberDisposition::Requeued)
    };
    assert!(requeues(&batched), "the planted mid-batch death must trigger pre-shrink");
    let (minimal, _) = shrink(&batched, requeues);
    assert!(requeues(&minimal));
    assert!(
        minimal.batch.is_some(),
        "the requeue disposition needs coalescing; batch knobs must survive: {minimal:?}"
    );
    assert!(
        minimal
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerDeathMidBatch { .. })),
        "the mid-batch death is load-bearing and must survive shrinking: {minimal:?}"
    );
}

// ---------------------------------------------------------------------
// Sharded serving under simulation
// ---------------------------------------------------------------------

/// The acceptance scenario for shard migration: a 4-qubit job overflows
/// the scenario's 192-byte worker (256 B of fp64 amplitudes), admission
/// routes it to a 2-shard group, and a scheduled shard-worker death
/// tears the group down mid-run. The requeued dispatch must restore the
/// newest verified checkpoint generation onto a fresh group (a recorded
/// `Migrated`, never a cold restart — a checkpoint provably survives the
/// death) and complete with counts byte-identical to a fault-free run
/// (the resume-bit-identity oracle checks the hash against a clean
/// dense mirror). Varied over ≥ 3 derived seeds, each replayable via
/// `QGEAR_SIMTEST_SEED`.
#[test]
fn shard_worker_death_migrates_onto_a_fresh_group_and_completes_bit_identically() {
    let _l = lock();
    let base = seed_from_env(0x5AAD_0DEA);
    for i in 0..3u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Every circuit family at 4 qubits has ≥ 4 schedule steps under
        // the harness fusion width of 1, so dying after 1–2 segments
        // always leaves a verified checkpoint generation behind.
        let def = JobDef {
            shape: (seed % 3) as u8,
            qubits: 4,
            shots: 16 + seed % 200,
            seed: seed % 7,
            ..JobDef::bell()
        };
        let scenario = Scenario::empty(seed).sharded().op(Op::Submit(def)).event(
            0,
            0,
            FaultKind::ShardWorkerDeath {
                shard: (seed % 2) as u32,
                after_segments: 1 + (seed % 2) as u32,
            },
        );
        let report = run_scenario(&scenario);
        assert!(
            report.is_ok(),
            "oracle violations for seed {seed:#x}: {violations:#?}\nreplay: {cmd}",
            violations = report.violations,
            cmd = replay_command(
                seed,
                "shard_worker_death_migrates_onto_a_fresh_group_and_completes_bit_identically",
            ),
        );
        // Scenario job 0 is admission id 1 (the harness blocker is 0).
        let log = &report.shard_log;
        assert!(
            log.iter()
                .any(|r| matches!(r, ShardRecord::WorkerLost { job: 1, .. })),
            "the scheduled death must tear the group down; log: {log:?}"
        );
        assert!(
            log.iter().any(|r| matches!(r, ShardRecord::Migrated { job: 1, .. })),
            "the replacement dispatch must restore a checkpoint; log: {log:?}"
        );
        assert!(
            !log.iter().any(|r| matches!(r, ShardRecord::ColdRestarted { job: 1 })),
            "a surviving generation makes a cold restart illegal; log: {log:?}"
        );
        assert_eq!(
            report.dispatch_counts.get(&1),
            Some(&2),
            "the torn-down dispatch plus its replacement (seed {seed:#x})"
        );
        match report.outcomes.get(&1) {
            Some(OutcomeSummary::Completed { .. }) => {}
            other => panic!("expected completion after migration, got {other:?} (seed {seed:#x})"),
        }
    }
}

/// A link fault recovers *in place*: the struck exchange kills the
/// partitioned state, but the same dispatch reloads the newest verified
/// generation and finishes — one dispatch total, one retry consumed,
/// and the completion is still bit-identical to the fault-free mirror
/// (checked by the oracles). Both failure flavors are exercised.
#[test]
fn a_link_fault_recovers_in_place_within_the_same_dispatch() {
    let _l = lock();
    for corrupt in [false, true] {
        // Shape 0 at 4 qubits ends in cx(2,3): the top qubit is global
        // on a 2-shard group, so exchange 0 always occurs.
        let def = JobDef { shape: 0, qubits: 4, shots: 120, seed: 3, ..JobDef::bell() };
        let scenario = Scenario::empty(0x11FA_0171)
            .sharded()
            .op(Op::Submit(def))
            .event(0, 0, FaultKind::LinkFault { exchange: 0, corrupt });
        let report = run_scenario(&scenario);
        assert!(report.is_ok(), "corrupt={corrupt}: violations: {:?}", report.violations);
        let log = &report.shard_log;
        assert!(
            log.iter().any(|r| matches!(
                r,
                ShardRecord::LinkFault { job: 1, exchange: 0, corrupt: c, .. } if *c == corrupt
            )),
            "corrupt={corrupt}: the struck exchange must be logged; log: {log:?}"
        );
        assert_eq!(
            report.dispatch_counts.get(&1),
            Some(&1),
            "corrupt={corrupt}: in-place recovery never redispatches"
        );
        match report.outcomes.get(&1) {
            Some(OutcomeSummary::Completed { attempts: 2, .. }) => {}
            other => panic!(
                "corrupt={corrupt}: a link fault consumes a retry (attempts 2), got {other:?}"
            ),
        }
    }
}

/// Random sharded scenarios — guaranteed 4-qubit (beyond-one-worker)
/// jobs with shard deaths and link faults in the fault script — hold
/// every oracle, including shard exchange conservation and migration
/// discipline. Six derived seeds, each replayable via
/// `QGEAR_SIMTEST_SEED`.
#[test]
fn random_sharded_scenarios_hold_every_oracle() {
    let _l = lock();
    let base = seed_from_env(0x5AAD_5EED);
    let (mut completed, mut struck) = (0usize, 0usize);
    for i in 0..6u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scenario = Scenario::generate_sharded(seed);
        let report = run_scenario(&scenario);
        assert!(
            report.is_ok(),
            "oracle violations for seed {seed:#x}: {violations:#?}\nreplay: {cmd}",
            violations = report.violations,
            cmd = replay_command(seed, "random_sharded_scenarios_hold_every_oracle"),
        );
        completed += usize::from(
            report.shard_log.iter().any(|r| matches!(r, ShardRecord::Completed { .. })),
        );
        struck += usize::from(report.shard_log.iter().any(|r| {
            matches!(r, ShardRecord::WorkerLost { .. } | ShardRecord::LinkFault { .. })
        }));
    }
    assert!(completed >= 1, "at least one scenario must complete a sharded run (vacuity guard)");
    assert!(struck >= 1, "at least one scenario must strike the shard machinery (vacuity guard)");
}

/// The elastic pool under a virtual clock: the whole `PoolDecision` log
/// is exact. A pinned worker lets a backlog form; the second submission
/// trips the scale-up threshold at virtual t = 0; the spawned worker
/// drains both victims and retires into the empty queue, also at t = 0
/// (virtual time is frozen while workers compute); the blocker then
/// completes at t = PIN without retiring below the floor.
#[test]
fn the_elastic_pool_pins_an_exact_decision_log_under_virtual_time() {
    let _l = lock();
    const PIN: Duration = Duration::from_millis(1);
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        pool: Some(PoolConfig { min_workers: 1, max_workers: 2, scale_up_depth: 2 }),
        schedule: FaultSchedule::none().with_event(0, 0, FaultKind::Transient),
        retry_backoff: PIN,
        backoff_slice: PIN,
        clock: clock.clone(),
        ..Default::default()
    });

    // Blocker (job 0): parks the only worker in backoff until t = PIN.
    let blocker = service.submit(JobSpec::new(bell()).tenant("pin")).job_id().unwrap();
    assert!(clock.wait_for_sleepers(1, Duration::from_secs(10)), "worker never parked");

    // Depth 1 < 2: no decision. Depth 2: scale up, exactly once.
    let first = service.submit(JobSpec::new(bell()).seed(2)).job_id().unwrap();
    let second = service.submit(JobSpec::new(bell()).seed(3)).job_id().unwrap();

    // The spawned worker drains both victims at frozen t = 0 and
    // retires. Wait for that to happen before releasing the blocker so
    // the decision order is fully pinned.
    for id in [first, second] {
        assert!(service.wait(id).unwrap().is_completed());
    }
    let bound = Instant::now() + Duration::from_secs(10);
    while service.live_workers() > 1 {
        assert!(Instant::now() < bound, "the spare worker never retired");
        std::thread::yield_now();
    }

    assert_eq!(clock.advance_to_next_sleeper(), Some(PIN));
    drain(&service, &clock);
    assert!(service.try_outcome(blocker).unwrap().is_completed());
    service.shutdown();

    assert_eq!(
        service.pool_log(),
        vec![
            PoolDecision::ScaleUp { at: Duration::ZERO, from: 1, to: 2, queue_depth: 2 },
            PoolDecision::ScaleDown { at: Duration::ZERO, from: 2, to: 1 },
        ],
        "the decision log must replay exactly under virtual time"
    );
    assert_eq!(service.live_workers(), 1, "back at the floor");
}

/// A shard-group teardown draws its replacement from the pool:
/// `PoolDecision::Replace` is recorded at the teardown instant with the
/// job and the dead shard's rank — exact under the virtual clock.
#[test]
fn a_shard_teardown_records_an_exact_replacement_decision() {
    let _l = lock();
    let clock = Arc::new(VirtualClock::new());
    let mut dev = GpuDevice::a100_40gb();
    dev.memory_bytes = 192; // 4 qubits fp64 (256 B) won't fit solo
    let service = Service::start(ServeConfig {
        workers: 1,
        backend: BackendKind::Gpu(dev),
        shard: Some(ShardConfig::default()),
        pool: Some(PoolConfig { min_workers: 1, max_workers: 2, scale_up_depth: 8 }),
        fusion_width: 1,
        sweep_width: 0,
        checkpoint_interval: 1,
        checkpoint_generations: 3,
        schedule: FaultSchedule::none()
            .with_event(0, 0, FaultKind::ShardWorkerDeath { shard: 1, after_segments: 1 }),
        clock: clock.clone(),
        ..Default::default()
    });

    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure_all();
    let id = service.submit(JobSpec::new(c).shots(150)).job_id().unwrap();
    let outcome = service.wait(id).unwrap();
    assert!(outcome.is_completed(), "the migration must complete the job: {outcome:?}");
    service.shutdown();

    assert_eq!(
        service.pool_log(),
        vec![PoolDecision::Replace { at: Duration::ZERO, job: 0, shard: 1 }],
        "teardown at frozen virtual t = 0, job 0, shard rank 1"
    );
    let log = service.shard_log();
    assert!(
        log.iter().any(|r| matches!(r, ShardRecord::Migrated { job: 0, .. })),
        "the replacement dispatch must migrate; log: {log:?}"
    );
}

// ---------------------------------------------------------------------
// Fault-plan statistics
// ---------------------------------------------------------------------

/// The rate plan's empirical strike rate over 10⁵ (job, attempt) pairs
/// tracks the configured rate within ±2 %, and the plan is a pure
/// function of its seed.
#[test]
fn fault_plan_strike_rate_is_statistically_faithful_and_deterministic() {
    let rate = 0.2;
    let plan = FaultPlan::with_rate(rate, 42);
    let twin = FaultPlan::with_rate(rate, 42);
    let mut strikes = 0u64;
    for job in 0..20_000u64 {
        for attempt in 0..5u32 {
            let hit = plan.strikes(job, attempt);
            assert_eq!(hit, twin.strikes(job, attempt), "same seed ⇒ same decisions");
            strikes += u64::from(hit);
        }
    }
    let empirical = strikes as f64 / 100_000.0;
    assert!(
        (empirical - rate).abs() <= rate * 0.02,
        "empirical rate {empirical} departs more than ±2% from {rate}"
    );
}

/// Plans with different seeds are decorrelated: at rate 0.5 they
/// disagree on roughly half of all coordinates, and joint strikes land
/// near the independent-product rate.
#[test]
fn fault_plans_with_different_seeds_are_decorrelated() {
    let a = FaultPlan::with_rate(0.5, 1);
    let b = FaultPlan::with_rate(0.5, 2);
    let (mut disagree, mut both) = (0u64, 0u64);
    let total = 10_000u64;
    for job in 0..total {
        let (sa, sb) = (a.strikes(job, 0), b.strikes(job, 0));
        disagree += u64::from(sa != sb);
        both += u64::from(sa && sb);
    }
    let disagreement = disagree as f64 / total as f64;
    let joint = both as f64 / total as f64;
    assert!((0.4..=0.6).contains(&disagreement), "disagreement {disagreement}");
    assert!((0.2..=0.3).contains(&joint), "joint strike rate {joint} ≉ 0.25");
}

// ---------------------------------------------------------------------
// Randomized scenarios, replay, and shrinking
// ---------------------------------------------------------------------

/// The main property: scenarios derived from the base seed (overridable
/// via `QGEAR_SIMTEST_SEED`, which the failure message names) satisfy
/// every oracle. With the env var set, iteration 0 replays that exact
/// seed.
#[test]
fn random_scenarios_hold_every_oracle() {
    let _l = lock();
    let base = seed_from_env(0x51D3_C0DE);
    for i in 0..8u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scenario = Scenario::generate(seed);
        let report = run_scenario(&scenario);
        assert!(
            report.is_ok(),
            "oracle violations for seed {seed:#x}: {violations:#?}\nreplay: {cmd}",
            violations = report.violations,
            cmd = replay_command(seed, "random_scenarios_hold_every_oracle"),
        );
    }
}

/// Replay identity: the same seed produces a byte-identical trace on
/// every run — the property `QGEAR_SIMTEST_SEED` replays rely on.
#[test]
fn replaying_a_seed_reproduces_the_trace_byte_for_byte() {
    let _l = lock();
    let base = seed_from_env(0xCAFE_F00D);
    for i in 0..3u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scenario = Scenario::generate(seed);
        let first = run_scenario(&scenario);
        let second = run_scenario(&scenario);
        assert_eq!(
            first.trace.render(),
            second.trace.render(),
            "trace divergence for seed {seed:#x}; replay: {}",
            replay_command(seed, "replaying_a_seed_reproduces_the_trace_byte_for_byte"),
        );
        assert_eq!(first.trace_hash(), second.trace_hash());
    }
}

/// The shrinker reduces a failing scenario buried in noise to the
/// single op that triggers the violation, and prints the minimal
/// reproduction with its replay command.
#[test]
fn shrinker_reduces_a_failure_to_the_single_poison_op() {
    let _l = lock();
    // Predicate: "some job expires". Under pinning a zero deadline
    // always expires, so this fails deterministically.
    let poison = JobDef { deadline_us: Some(0), seed: 77, ..JobDef::bell() };
    let mut scenario = Scenario::empty(0xBAD_5EED);
    for i in 0..4u64 {
        scenario = scenario
            .op(Op::Submit(JobDef { seed: i, ..JobDef::bell() }))
            .op(Op::Advance(Duration::from_micros(40 + i)));
    }
    scenario = scenario
        .op(Op::Submit(poison))
        .op(Op::Advance(Duration::from_micros(500)))
        .event(0, 0, FaultKind::Transient);
    scenario.fault_rate = 0.3;

    let fails = |s: &Scenario| {
        run_scenario(s)
            .outcomes
            .values()
            .any(|o| matches!(o, OutcomeSummary::Expired))
    };
    assert!(fails(&scenario), "the planted failure must trigger pre-shrink");

    let (minimal, candidate_runs) = shrink(&scenario, fails);
    eprintln!(
        "shrunk {} ops / {} events to {} ops / {} events in {candidate_runs} runs\n\
         minimal repro: {minimal:?}\nreplay: {}",
        scenario.ops.len(),
        scenario.events.len(),
        minimal.ops.len(),
        minimal.events.len(),
        replay_command(minimal.seed, "shrinker_reduces_a_failure_to_the_single_poison_op"),
    );
    assert!(fails(&minimal), "shrinking must preserve the failure");
    assert_eq!(minimal.ops.len(), 1, "minimal repro is the poison submit alone");
    assert!(matches!(&minimal.ops[0], Op::Submit(d) if d.deadline_us == Some(0)));
    assert!(minimal.events.is_empty(), "irrelevant fault events shed");
    assert_eq!(minimal.fault_rate, 0.0, "irrelevant rate plan shed");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Scenario generation is total and well-formed over the whole seed
    /// domain, and shrinking a non-failing scenario is the identity.
    /// (Case count scales with `QGEAR_PROPTEST_CASES`.)
    #[test]
    fn generated_scenarios_are_well_formed_for_any_seed(seed in any::<u64>()) {
        let s = Scenario::generate(seed);
        let jobs = s.job_count() as u64;
        prop_assert!((2..=6).contains(&jobs));
        prop_assert!(s.events.iter().all(|e| e.job < jobs));
        prop_assert!(s.total_advance() < Duration::from_secs(1));
        let (unchanged, runs) = shrink(&s, |_| false);
        prop_assert_eq!(unchanged, s);
        prop_assert_eq!(runs, 1);
    }
}

// ---------------------------------------------------------------------
// Telemetry and cluster-engine oracles
// ---------------------------------------------------------------------

/// Span-tree balance over a full scenario run: every opened span closed
/// in its parent, none dropped, and exactly one `serve_job` span per
/// dispatch (worker deaths included).
#[test]
fn scenario_runs_leave_a_balanced_span_tree() {
    let _l = lock();
    // Job 0 uses a non-bell shape: a state-cache hit (the blocker evolves
    // a bell circuit) would bypass the cold path where the scheduled
    // worker death fires.
    let scenario = Scenario::empty(0)
        .op(Op::Submit(JobDef { shape: 1, ..JobDef::bell() }))
        .op(Op::Advance(Duration::from_micros(80)))
        .op(Op::Submit(JobDef { seed: 5, ..JobDef::bell() }))
        .event(0, 0, FaultKind::WorkerDeath);

    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let report = run_scenario(&scenario);
    qgear_telemetry::disable();
    let snapshot = qgear_telemetry::snapshot();
    qgear_telemetry::reset();

    assert!(report.is_ok(), "violations: {:?}", report.violations);
    let dispatches: usize = report.dispatch_counts.values().sum();
    assert!(dispatches >= 4, "blocker + 2 jobs + 1 requeue, got {dispatches}");
    let telemetry_violations = qgear_simtest::oracle::check_telemetry(&snapshot, dispatches);
    assert!(telemetry_violations.is_empty(), "{telemetry_violations:?}");
}

/// The cluster engine reads its phase timings from the injected clock:
/// under a ticked virtual clock both recorded spans equal exactly one
/// tick (one `now()` delta each), proving no wall-clock leaks into
/// `ExecStats`.
#[test]
fn cluster_engine_spans_are_exact_under_a_ticked_virtual_clock() {
    let tick = Duration::from_micros(7);
    let mut engine = ClusterEngine::a100_cluster(4);
    engine.clock = Arc::new(VirtualClock::with_tick(tick));
    let mut circuit = Circuit::new(4);
    circuit.h(0);
    for q in 0..3 {
        circuit.cx(q, q + 1);
    }
    circuit.measure_all();
    let out: RunOutput<f64> = engine
        .run(&circuit, &RunOptions { shots: 100, ..Default::default() })
        .unwrap();
    assert_eq!(out.stats.elapsed, tick, "simulate span is exactly one tick");
    assert_eq!(out.stats.sampling_elapsed, tick, "sample span is exactly one tick");
    assert_eq!(out.counts.unwrap().total(), 100);
}
