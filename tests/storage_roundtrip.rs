//! Integration: the separate-process handoff path (§3) — circuits written
//! to disk by the "Qiskit side" and read back by the "CUDA-Q side" must
//! execute to identical physics, through both interchange formats
//! (QPY-lite and the HDF5-like tensor container).

use qgear::storage;
use qgear::{QGear, QGearConfig, Target};
use qgear_hdf5lite::{Compression, H5File};
use qgear_ir::{qpy, reference, Circuit, TensorEncoding};
use qgear_num::approx::approx_eq_up_to_phase;
use qgear_num::scalar::Precision;
use qgear_workloads::qft::{qft_circuit, QftOptions};
use qgear_workloads::random::{generate_random_gate_list, RandomCircuitSpec};

fn workload_batch() -> Vec<Circuit> {
    let mut batch = vec![qft_circuit(7, &QftOptions::default())];
    for seed in 0..3 {
        batch.push(generate_random_gate_list(&RandomCircuitSpec {
            num_qubits: 7,
            num_blocks: 60,
            seed,
            measure: false,
        }));
    }
    batch
}

#[test]
fn hdf5_file_on_disk_roundtrip_and_execute() {
    let batch = workload_batch();
    // The tensor encoding requires native gates; transpile first.
    let natives: Vec<Circuit> = batch
        .iter()
        .map(|c| qgear_ir::transpile::decompose_to_native(c).0)
        .collect();
    let enc = TensorEncoding::encode(&natives, None).unwrap();
    let file = storage::encoding_to_h5(&enc).unwrap();

    let dir = std::env::temp_dir().join("qgear_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batch.h5l");
    file.save(&path, Compression::ShuffleRle).unwrap();

    // "Separate program": read from disk, decode, execute.
    let loaded = H5File::open(&path).unwrap();
    let decoded = storage::encoding_from_h5(&loaded).unwrap().decode().unwrap();
    assert_eq!(decoded, natives);

    let qgear = QGear::new(QGearConfig {
        target: Target::Nvidia,
        precision: Precision::Fp64,
        ..Default::default()
    });
    for (native, original) in decoded.iter().zip(&batch) {
        let result = qgear.run(native).unwrap();
        let expect = reference::run(original);
        assert!(approx_eq_up_to_phase(
            result.state.unwrap().amplitudes(),
            &expect,
            1e-9
        ));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn qpy_lite_interchange() {
    let batch = workload_batch();
    let bytes = qpy::write(&batch);
    let loaded = qpy::read(&bytes).unwrap();
    assert_eq!(loaded, batch);
    // Executing the loaded circuits matches the originals exactly.
    for (a, b) in loaded.iter().zip(&batch) {
        let sa = reference::run(a);
        let sb = reference::run(b);
        assert_eq!(sa, sb);
    }
}

#[test]
fn compressed_and_raw_containers_decode_identically() {
    let batch = workload_batch();
    let natives: Vec<Circuit> = batch
        .iter()
        .map(|c| qgear_ir::transpile::decompose_to_native(c).0)
        .collect();
    let enc = TensorEncoding::encode(&natives, Some(512)).unwrap();
    let file = storage::encoding_to_h5(&enc).unwrap();
    for codec in [Compression::None, Compression::Rle, Compression::ShuffleRle] {
        let bytes = file.to_bytes(codec);
        let back = storage::encoding_from_h5(&H5File::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(back, enc, "{codec:?}");
    }
}

#[test]
fn workflow_payload_equals_direct_execution() {
    // The Workflow ships circuits through the container payload; results
    // must match running the same circuits directly.
    use qgear::Workflow;
    let circuits: Vec<Circuit> = (0..3)
        .map(|i| {
            let mut c = generate_random_gate_list(&RandomCircuitSpec {
                num_qubits: 6,
                num_blocks: 30,
                seed: 50 + i,
                measure: false,
            });
            c.measure_all();
            c
        })
        .collect();
    let config = QGearConfig {
        target: Target::Nvidia,
        precision: Precision::Fp64,
        shots: 4096,
        ..Default::default()
    };
    let workflow = Workflow::new(config.clone(), 2);
    let report = workflow.run_batch(&circuits).unwrap();
    let direct = QGear::new(config);
    for (wf_result, circ) in report.results.iter().zip(&circuits) {
        let direct_result = direct.run(circ).unwrap();
        // Same seeds → identical sampled counts.
        assert_eq!(wf_result.counts, direct_result.counts);
    }
}
