//! Integration tests for the `qgear-telemetry` observability layer:
//! span nesting and counter totals on a real 10-qubit QFT, bitwise
//! non-interference of the instrumentation, and the documented JSON
//! schema (docs/TELEMETRY.md) round-tripping through `serde_json`.
//!
//! Telemetry state is process-global, so every test takes `LOCK` and
//! resets the registry around its recording window.

use qgear_statevec::{AerCpuBackend, GpuDevice, RunOptions, RunOutput, Simulator};
use qgear_telemetry::names::{self, spans};
use qgear_telemetry::{JsonSink, NullSink, TelemetrySink, TelemetrySnapshot};
use qgear_workloads::qft::{qft_circuit, QftOptions};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn qft10() -> qgear_ir::Circuit {
    let mut c = qft_circuit(10, &QftOptions::default());
    c.measure_all();
    c
}

/// Record one engine run and return (output, snapshot).
fn instrumented_run<S: Simulator<f64>>(
    engine: &S,
    opts: &RunOptions,
) -> (RunOutput<f64>, TelemetrySnapshot) {
    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let out = engine.run(&qft10(), opts).expect("run");
    qgear_telemetry::disable();
    let snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();
    (out, snap)
}

#[test]
fn gpu_qft_spans_nest_and_counters_match_exec_stats() {
    let _l = LOCK.lock().unwrap();
    let opts = RunOptions { shots: 1000, ..Default::default() };
    let (out, snap) = instrumented_run(&GpuDevice::a100_40gb(), &opts);

    // Counter totals agree with the engine's own ExecStats: gates.applied
    // is the post-fusion source-gate count, one kernel per fused block.
    assert_eq!(snap.counter(names::GATES_APPLIED), u128::from(out.stats.gates_applied));
    assert_eq!(snap.counter(names::KERNELS_LAUNCHED), u128::from(out.stats.kernels_launched));
    assert_eq!(snap.counter(names::SHOTS_SAMPLED), 1000);
    // Fusion consumed every applied gate and produced one block per kernel.
    assert_eq!(snap.counter(names::FUSION_SOURCE_GATES), u128::from(out.stats.gates_applied));
    assert_eq!(snap.counter(names::FUSED_BLOCKS), u128::from(out.stats.kernels_launched));
    // Sweep scheduling groups kernels into full-state passes: the state
    // is read and written once per *sweep*, not once per kernel — that
    // is the whole point of the cache-blocked executor.
    assert!(out.stats.sweeps_executed >= 1);
    assert!(out.stats.sweeps_executed < out.stats.kernels_launched);
    assert_eq!(
        snap.counter(names::AMPLITUDES_TOUCHED),
        2 * 1024 * u128::from(out.stats.sweeps_executed)
    );

    // Span nesting: fuse and the sweep/block applications sit inside
    // simulate; sample is a sibling top-level phase; one application
    // span per executed sweep (singleton sweeps fall back to
    // apply_block, multi-kernel sweeps record apply_sweep).
    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&spans::SIMULATE));
    assert!(paths.contains(&"simulate/fuse"));
    assert!(paths.contains(&spans::SAMPLE));
    assert_eq!(
        snap.spans
            .iter()
            .filter(|s| s.path == "simulate/apply_sweep" || s.path == "simulate/apply_block")
            .count() as u64,
        out.stats.sweeps_executed
    );
    // Children start and end within their parent.
    let sim = snap.spans.iter().find(|s| s.path == "simulate").unwrap();
    let fuse = snap.spans.iter().find(|s| s.path == "simulate/fuse").unwrap();
    assert_eq!(sim.depth, 0);
    assert_eq!(fuse.depth, 1);
    assert!(fuse.start_ns >= sim.start_ns);
    assert!(fuse.start_ns + fuse.duration_ns <= sim.start_ns + sim.duration_ns);
    // Fused-block widths were observed, one per block, within 1..=5.
    let widths = &snap.histograms[names::FUSION_BLOCK_WIDTH];
    assert_eq!(u128::from(widths.count), snap.counter(names::FUSED_BLOCKS));
    assert!(widths.min >= 1.0 && widths.max <= 5.0);
}

#[test]
fn aer_qft_counters_match_exec_stats() {
    let _l = LOCK.lock().unwrap();
    let opts = RunOptions { shots: 500, ..Default::default() };
    let (out, snap) = instrumented_run(&AerCpuBackend, &opts);

    assert_eq!(snap.counter(names::GATES_APPLIED), u128::from(out.stats.gates_applied));
    assert_eq!(snap.counter(names::KERNELS_LAUNCHED), u128::from(out.stats.kernels_launched));
    assert_eq!(snap.counter(names::SHOTS_SAMPLED), 500);
    // The unfused baseline never runs the fusion pass.
    assert_eq!(snap.counter(names::FUSED_BLOCKS), 0);
    // Per-kind dispatch counters partition the applied gates.
    let dispatched: u128 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("aer.dispatch."))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(dispatched, u128::from(out.stats.gates_applied));
    // A QFT is h + cr1 (+ swap reversal): all three kinds show up.
    assert!(snap.counter("aer.dispatch.h") > 0);
    assert!(snap.counter("aer.dispatch.cr1") > 0);
    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&spans::SIMULATE));
    assert!(paths.contains(&spans::SAMPLE));
}

#[test]
fn full_pipeline_records_run_transpile_encode_fuse_chain() {
    use qgear::{QGear, QGearConfig, Target};
    use qgear_num::scalar::Precision;
    let _l = LOCK.lock().unwrap();
    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let qgear = QGear::new(QGearConfig {
        target: Target::Nvidia,
        precision: Precision::Fp64,
        shots: 100,
        ..Default::default()
    });
    qgear.run(&qft10()).expect("pipeline run");
    qgear_telemetry::disable();
    let snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();

    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    for expected in [
        "run",
        "run/transpile",
        "run/encode",
        "run/fuse",
        "run/simulate",
        "run/simulate/fuse",
        "run/simulate/apply_sweep",
        "run/sample",
    ] {
        assert!(paths.contains(&expected), "missing span path {expected}; got {paths:?}");
    }
}

#[test]
fn instrumented_run_is_bitwise_identical_to_uninstrumented() {
    let _l = LOCK.lock().unwrap();
    let opts = RunOptions { shots: 1000, ..Default::default() };

    qgear_telemetry::reset();
    qgear_telemetry::disable();
    let plain: RunOutput<f64> = GpuDevice::a100_40gb().run(&qft10(), &opts).expect("run");

    let (instrumented, snap) = instrumented_run(&GpuDevice::a100_40gb(), &opts);
    assert!(!snap.spans.is_empty(), "second run really was recorded");
    // Exporting through the NullSink produces no file and changes nothing.
    assert_eq!(NullSink.export("qft_n10", &snap).unwrap(), None);

    let a = plain.state.expect("state kept");
    let b = instrumented.state.expect("state kept");
    assert_eq!(a.amplitudes().len(), b.amplitudes().len());
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes().iter()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
    assert_eq!(plain.counts.unwrap().map, instrumented.counts.unwrap().map);
}

/// Checkpointed-recovery telemetry: a worker death with the newest
/// generation corrupted produces `checkpoint.write` and
/// `checkpoint.verify_fail` counter traffic, a `job.resumed_from`
/// histogram sample (the cursor execution resumed at), checkpoint spans
/// inside the serving span tree — and all three names survive the JSON
/// export round trip by their documented keys.
#[test]
fn checkpoint_recovery_metrics_flow_into_the_json_export() {
    use qgear_serve::{FaultKind, FaultSchedule, JobSpec, ServeConfig, Service};
    let _l = LOCK.lock().unwrap();
    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let service = Service::start(ServeConfig {
        workers: 1,
        fusion_width: 1,
        sweep_width: 0,
        checkpoint_interval: 1,
        checkpoint_generations: 3,
        schedule: FaultSchedule::none()
            .with_event(0, 0, FaultKind::WorkerDeathMidRun { after_segments: 2 })
            .with_event(0, 0, FaultKind::CorruptCheckpoint { generation: 1 }),
        ..Default::default()
    });
    let mut c = qgear_ir::Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    let id = service.submit(JobSpec::new(c).shots(100).seed(3)).job_id().expect("accepted");
    assert!(service.wait(id).expect("outcome").is_completed());
    service.shutdown();
    qgear_telemetry::disable();
    let snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();

    assert!(
        snap.counter(names::CHECKPOINT_WRITES) >= 2,
        "two generations written before the death, got {}",
        snap.counter(names::CHECKPOINT_WRITES)
    );
    assert!(
        snap.counter(names::CHECKPOINT_VERIFY_FAILS) >= 1,
        "the corrupted newest generation must fail verification"
    );
    let resumed = snap
        .histograms
        .get(names::JOB_RESUMED_FROM)
        .expect("resume-cursor histogram recorded");
    assert!(resumed.count >= 1);
    assert!(resumed.min >= 1.0, "resume from the surviving generation is past cursor 0");

    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    assert!(
        paths.iter().any(|p| p.ends_with(spans::CHECKPOINT_WRITE)),
        "no checkpoint_write span in {paths:?}"
    );
    assert!(
        paths.iter().any(|p| p.ends_with(spans::CHECKPOINT_RESTORE)),
        "no checkpoint_restore span in {paths:?}"
    );

    let dir = std::env::temp_dir().join(format!("qgear-telemetry-ck-{}", std::process::id()));
    let sink = JsonSink::new(&dir);
    let path = sink.export("checkpoint recovery", &snap).expect("export").expect("a file");
    let text = std::fs::read_to_string(&path).expect("read back");
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let counters = value["counters"].as_object().expect("counters object");
    for key in [names::CHECKPOINT_WRITES, names::CHECKPOINT_VERIFY_FAILS] {
        assert!(counters.iter().any(|(k, _)| k == key), "counter {key} missing from export");
    }
    let histograms = value["histograms"].as_object().expect("histograms object");
    assert!(
        histograms.iter().any(|(k, _)| k == names::JOB_RESUMED_FROM),
        "histogram {} missing from export",
        names::JOB_RESUMED_FROM
    );
    let (_, back) = TelemetrySnapshot::from_value(&value).expect("schema decode");
    assert_eq!(back, snap, "export round trip preserves the checkpoint metrics");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_sink_roundtrips_against_documented_schema() {
    let _l = LOCK.lock().unwrap();
    let opts = RunOptions { shots: 200, ..Default::default() };
    let (_, snap) = instrumented_run(&GpuDevice::a100_40gb(), &opts);

    let dir = std::env::temp_dir().join(format!("qgear-telemetry-it-{}", std::process::id()));
    let sink = JsonSink::new(&dir);
    let path = sink.export("qft n=10", &snap).expect("export").expect("a file");
    let text = std::fs::read_to_string(&path).expect("read back");

    // The document parses as JSON and carries the schema documented in
    // docs/TELEMETRY.md: version marker, label, spans, counters,
    // histograms.
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(value["schema_version"].as_u64(), Some(qgear_telemetry::SCHEMA_VERSION));
    assert_eq!(value["label"].as_str(), Some("qft n=10"));
    assert!(value["spans"].as_array().is_some_and(|s| !s.is_empty()));
    assert!(value["counters"].as_object().is_some());
    assert!(value["histograms"].as_object().is_some());

    // And it round-trips into an identical snapshot.
    let (label, back) = TelemetrySnapshot::from_value(&value).expect("schema decode");
    assert_eq!(label, "qft n=10");
    assert_eq!(back, snap);

    std::fs::remove_dir_all(&dir).ok();
}

/// Backend-selection and trajectory-fan telemetry: one admitted job per
/// engine increments its `admission.backend_chosen.<engine>` counter, a
/// noisy job opens a `trajectory_batch` span and accounts its
/// trajectories, the simtest accounting oracle accepts the snapshot,
/// and every new name survives the JSON export round trip.
#[test]
fn backend_selection_and_trajectory_metrics_flow_into_the_json_export() {
    use qgear_serve::{JobSpec, SelectionPolicy, ServeConfig, Service};
    use qgear_statevec::{NoiseChannel, NoiseModel};
    use qgear_workloads::clifford::ghz;
    let _l = LOCK.lock().unwrap();
    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let service = Service::start(ServeConfig {
        workers: 1,
        selection: SelectionPolicy::Auto,
        ..Default::default()
    });
    // A Clifford job routes to the stabilizer engine under Auto...
    let stab = service.submit(JobSpec::new(ghz(20, 20)).shots(100).seed(1)).job_id().unwrap();
    // ...a T-gate circuit stays dense...
    let mut general = qgear_ir::Circuit::new(3);
    general.h(0).t(0).cx(0, 1).measure_all();
    let dense = service.submit(JobSpec::new(general).shots(50).seed(2)).job_id().unwrap();
    // ...and a noisy Clifford job fans trajectories over the tableau.
    let model = NoiseModel::single(NoiseChannel::BitFlip { p: 0.05 });
    let noisy = service
        .submit(JobSpec::new(ghz(4, 4)).shots(100).seed(3).with_noise(model, 8))
        .job_id()
        .unwrap();
    for id in [stab, dense, noisy] {
        assert!(service.wait(id).expect("outcome").is_completed());
    }
    service.shutdown();
    qgear_telemetry::disable();
    let snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();

    assert_eq!(snap.counter(&names::admission_backend_chosen("stabilizer")), 1);
    assert_eq!(snap.counter(&names::admission_backend_chosen("dense")), 1);
    assert_eq!(snap.counter(&names::admission_backend_chosen("trajectory_stabilizer")), 1);
    let requested = snap.counter(names::TRAJECTORIES_REQUESTED);
    let run = snap.counter(names::TRAJECTORIES_RUN);
    assert_eq!(requested, 8, "the noisy job requested an 8-trajectory fan");
    assert!(run >= 1 && run <= requested, "executed {run} of {requested} trajectories");
    let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
    assert!(
        paths.iter().any(|p| p.ends_with(spans::TRAJECTORY_BATCH)),
        "no trajectory_batch span in {paths:?}"
    );
    // The simtest accounting oracle accepts a well-formed snapshot.
    assert_eq!(qgear_simtest::oracle::check_trajectory_accounting(&snap), Vec::<String>::new());

    let dir = std::env::temp_dir().join(format!("qgear-telemetry-bk-{}", std::process::id()));
    let sink = JsonSink::new(&dir);
    let path = sink.export("backend selection", &snap).expect("export").expect("a file");
    let text = std::fs::read_to_string(&path).expect("read back");
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let counters = value["counters"].as_object().expect("counters object");
    for key in [
        names::TRAJECTORIES_REQUESTED.to_owned(),
        names::TRAJECTORIES_RUN.to_owned(),
        names::admission_backend_chosen("stabilizer"),
        names::admission_backend_chosen("dense"),
        names::admission_backend_chosen("trajectory_stabilizer"),
    ] {
        assert!(counters.iter().any(|(k, _)| k == &key), "counter {key} missing from export");
    }
    let (_, back) = TelemetrySnapshot::from_value(&value).expect("schema decode");
    assert_eq!(back, snap, "export round trip preserves the backend metrics");
    std::fs::remove_dir_all(&dir).ok();
}

/// SIMD-dispatch and scratch-arena telemetry: a sweep-scheduled run over
/// lane-eligible kernels records lane dispatches (`kernel.simd.f64x4`),
/// a scalar-forced run records only fallback dispatches
/// (`kernel.simd.scalar`), scratch-arena traffic shows up as
/// `scratch.alloc`/`scratch.reuse`, the zero-copy sweep fast path counts
/// its tiles, and every new name survives the JSON export round trip —
/// keeping the documented schema exhaustive.
#[test]
fn simd_and_scratch_metrics_flow_into_the_json_export() {
    let _l = LOCK.lock().unwrap();

    // A 10-qubit QFT under narrow fusion: blocks land on high qubits
    // (lane path) and low qubits (scalar fallback), and multi-kernel
    // sweeps exercise the scratch arena.
    let opts = RunOptions { fusion_width: 2, sweep_width: 3, ..Default::default() };
    let run = |simd_on: bool| {
        qgear_statevec::set_simd_enabled(simd_on);
        let (_, snap) = instrumented_run(&GpuDevice::a100_40gb(), &opts);
        qgear_statevec::set_simd_enabled(true);
        snap
    };

    let snap = run(true);
    assert!(
        snap.counter(names::KERNEL_SIMD_F64X4) > 0,
        "lane-eligible kernels should record f64x4 dispatches"
    );
    assert!(
        snap.counter(names::KERNEL_SIMD_SCALAR) > 0,
        "low-qubit kernels should record scalar fallback dispatches"
    );
    assert!(
        snap.counter(names::SCRATCH_ALLOC) > 0,
        "tiled sweeps should allocate scratch through the arena"
    );

    let scalar_snap = run(false);
    assert_eq!(
        scalar_snap.counter(names::KERNEL_SIMD_F64X4),
        0,
        "SIMD disabled must not record lane dispatches"
    );
    assert!(scalar_snap.counter(names::KERNEL_SIMD_SCALAR) > 0);

    // Deterministic arena traffic: on a cleared pool the first request
    // allocates, every same-size request after it is a pool hit.
    qgear_telemetry::reset();
    qgear_telemetry::enable();
    qgear_statevec::arena::clear_thread_pool();
    qgear_statevec::arena::with_scratch::<f64, _>(128, |_| {});
    qgear_statevec::arena::with_scratch::<f64, _>(128, |_| {});
    qgear_telemetry::disable();
    let arena_snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();
    assert_eq!(arena_snap.counter(names::SCRATCH_ALLOC), 1);
    assert_eq!(arena_snap.counter(names::SCRATCH_REUSE), 1);

    // A contiguous-prefix sweep takes the zero-copy tile path and says so.
    let mut low = qgear_ir::Circuit::new(8);
    for q in 0..6 {
        low.h(q).ry(0.2 + 0.3 * f64::from(q), q);
    }
    for q in 0..5 {
        low.cx(q, q + 1);
    }
    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let _: RunOutput<f64> = GpuDevice::a100_40gb()
        .run(&low, &RunOptions { fusion_width: 2, sweep_width: 6, ..Default::default() })
        .expect("run");
    qgear_telemetry::disable();
    let zc_snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();
    assert!(
        zc_snap.counter(names::SWEEP_ZERO_COPY_TILES) > 0,
        "contiguous-prefix sweep should count zero-copy tiles"
    );

    // Export round trip carries every new counter name.
    let dir = std::env::temp_dir().join(format!("qgear-telemetry-simd-{}", std::process::id()));
    let sink = JsonSink::new(&dir);
    let path = sink.export("simd dispatch", &snap).expect("export").expect("a file");
    let text = std::fs::read_to_string(&path).expect("read back");
    let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let counters = value["counters"].as_object().expect("counters object");
    for key in [names::KERNEL_SIMD_F64X4, names::KERNEL_SIMD_SCALAR, names::SCRATCH_ALLOC] {
        assert!(counters.iter().any(|(k, _)| k == key), "counter {key} missing from export");
    }
    assert_eq!(names::kernel_simd("f64x4"), names::KERNEL_SIMD_F64X4);
    assert_eq!(names::kernel_simd("f32x8"), names::KERNEL_SIMD_F32X8);
    let (_, back) = TelemetrySnapshot::from_value(&value).expect("schema decode");
    assert_eq!(back, snap, "export round trip preserves the SIMD metrics");
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-class interconnect counters: every pairwise exchange the real
/// distributed engine performs lands in `comm.bytes.<class>` /
/// `comm.messages.<class>`, and the global totals agree exactly with
/// the engine's own `TrafficStats` — the byte-level accounting the
/// sharded serving path exports per job.
#[test]
fn distributed_exchange_traffic_flows_into_per_class_comm_counters() {
    let _l = LOCK.lock().unwrap();
    use qgear_cluster::{ClusterTopology, DistributedState, LinkClass};
    use qgear_ir::fusion::fuse;

    // 4 qubits on 4 devices (local width 2): the CX ladder and the
    // final H touch global qubits, forcing layout remaps and exchanges.
    let mut c = qgear_ir::Circuit::new(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).h(3);
    let program = fuse(&c, 2);

    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let mut dist = DistributedState::<f64>::zero(4, 4, ClusterTopology::default());
    for block in &program.blocks {
        dist.apply_block(block).expect("no faults armed");
    }
    qgear_telemetry::disable();
    let snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();

    let traffic = dist.traffic();
    assert!(dist.exchanges() > 0, "the ladder must cross shard boundaries");
    assert_eq!(traffic.total_messages(), 2 * dist.exchanges(), "two messages per exchange");
    let mut bytes_total = 0u128;
    let mut messages_total = 0u128;
    for class in LinkClass::ALL {
        let bytes = snap.counter(&names::comm_bytes(class.metric_suffix()));
        let messages = snap.counter(&names::comm_messages(class.metric_suffix()));
        assert_eq!(bytes, traffic.bytes_over(class), "comm.bytes.{}", class.metric_suffix());
        assert_eq!(
            messages,
            u128::from(traffic.messages[class as usize]),
            "comm.messages.{}",
            class.metric_suffix()
        );
        bytes_total += bytes;
        messages_total += messages;
    }
    assert_eq!(bytes_total, traffic.total_bytes(), "per-class counters cover all traffic");
    assert_eq!(messages_total, u128::from(traffic.total_messages()));
    assert!(bytes_total > 0, "amplitude halves actually moved");

    // A 4-device group under the default topology spans more than one
    // link class, so the per-class split is non-trivial.
    let classes_hit = LinkClass::ALL
        .iter()
        .filter(|&&cl| traffic.messages[cl as usize] > 0)
        .count();
    assert!(classes_hit >= 1, "at least one link class carried traffic");
}
