//! Cross-backend differential suite for the sweep-scheduled hot path.
//!
//! Four ways to produce the same physics, compared pairwise on arbitrary
//! circuits:
//!
//! 1. the sequential reference simulator (`qgear_ir::reference`),
//! 2. the unfused Aer-like CPU baseline (`AerCpuBackend`),
//! 3. the fused GPU engine with sweep scheduling off (`sweep_width: 0`),
//! 4. the fused GPU engine with sweep scheduling on (the default).
//!
//! Beyond tolerance agreement, order-preserving sweep schedules
//! (`sweep_reorder: false`) must be **bit-identical** to plain fused
//! execution: sweeps then only group adjacent kernels into one state
//! pass without changing the arithmetic or its order. The suite also
//! pins seed determinism of batched sampling and keeps the cluster and
//! serving layers in the comparison so sweep scheduling stays honest
//! everywhere it is enabled.
//!
//! The adaptive planner (`qgear_statevec::planner`) joins the
//! comparison on the same terms: naturally-planned execution agrees at
//! tolerance on any circuit, a planner pinned to one mode
//! (`PlannerCosts::force_mode`) is bit-identical to the corresponding
//! fixed path, checkpoint/resume through `SegmentedRun` is bit-identical
//! at every planned segment boundary, and the structure-dispatched
//! kernels (diagonal/permutation/controlled) match the dense kernel on
//! random gates of each structure class.
//!
//! # SIMD differential tier
//!
//! Every kernel also has a lane-vectorized implementation
//! (`qgear_statevec::simd`), toggled by the process-global
//! `set_simd_enabled` switch. The lane kernels replicate the scalar
//! complex arithmetic operation-for-operation, so the contract is
//! **fp64 AND fp32 bitwise identity** — strictly stronger than the
//! ≤4-ULP bar a tolerance-based tier would set; no ULP allowance is
//! needed anywhere. The tier diffs SIMD-on vs SIMD-off executions of
//! whole runs (fused, sweep, planned, batched, checkpoint-resume) and of
//! individual structure-class kernels, including remainder/tail shapes
//! (states too small to fill one lane vector, kernels whose target bits
//! sit below the lane width) where the scalar fallback must engage.

use proptest::prelude::*;
use qgear_cluster::ClusterEngine;
use qgear_ir::schedule::{self, SweepOptions};
use qgear_ir::{fusion, reference, transpile, Circuit};
use qgear_num::approx::{approx_eq_up_to_phase, max_deviation};
use qgear_num::complex::Complex;
use qgear_serve::{JobSpec, ServeConfig, Service};
use qgear_statevec::backend::{marginal_probs, sample_from_probs};
use qgear_statevec::{
    decode_checkpoint, encode_checkpoint, AerCpuBackend, CheckpointScalar, ExecStrategy, GpuDevice,
    PlannerCosts, RunOptions, RunOutput, SamplingConfig, SegmentMode, SegmentedRun, Simulator,
};
use qgear_statevec::{set_simd_enabled, simd_enabled};
use qgear_workloads::qft::{qft_circuit, QftOptions};
use qgear_workloads::random::{generate_random_gate_list, RandomCircuitSpec};
use std::sync::Mutex;

/// Strategy: an arbitrary circuit over 2..=`max_qubits` qubits drawn
/// from the full user-facing gate set (transpiled to native before use).
fn arb_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (2..=max_qubits, 0..=max_gates)
        .prop_flat_map(|(n, len)| {
            let gate = (0u8..12, 0..n, 1..n, -6.3..6.3f64);
            (Just(n), proptest::collection::vec(gate, len))
        })
        .prop_map(|(n, gates)| {
            let mut c = Circuit::new(n);
            for (kind, a, boff, theta) in gates {
                let b = (a + boff) % n;
                match kind {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.x(a);
                    }
                    2 => {
                        c.rx(theta, a);
                    }
                    3 => {
                        c.ry(theta, a);
                    }
                    4 => {
                        c.rz(theta, a);
                    }
                    5 => {
                        c.p(theta, a);
                    }
                    6 => {
                        c.t(a);
                    }
                    7 => {
                        c.u(theta, theta * 0.5, -theta, a);
                    }
                    8 => {
                        c.cx(a, b);
                    }
                    9 => {
                        c.cz(a, b);
                    }
                    10 => {
                        c.cr1(theta, a, b);
                    }
                    _ => {
                        c.swap(a, b);
                    }
                }
            }
            c
        })
}

/// Run a circuit on the GPU engine at f64 with explicit sweep knobs.
fn gpu_state(circ: &Circuit, sweep_width: usize, sweep_reorder: bool) -> Vec<Complex<f64>> {
    let opts = RunOptions { keep_state: true, sweep_width, sweep_reorder, ..Default::default() };
    let out: RunOutput<f64> = GpuDevice::a100_40gb().run(circ, &opts).expect("gpu run");
    out.state.expect("state kept").amplitudes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Reference, Aer, plain-fused GPU, and sweep-fused GPU agree on any
    /// circuit; the order-preserving sweep mode is bit-identical to
    /// plain fused execution.
    #[test]
    fn four_paths_agree_on_any_circuit(circ in arb_circuit(5, 30)) {
        let (native, _) = transpile::decompose_to_native(&circ);
        let expect = reference::run(&native);

        let aer: RunOutput<f64> = AerCpuBackend
            .run(&native, &RunOptions { keep_state: true, ..Default::default() })
            .expect("aer run");
        let aer = aer.state.expect("state kept");
        prop_assert!(approx_eq_up_to_phase(aer.amplitudes(), &expect, 1e-9));

        let fused = gpu_state(&native, 0, false);
        prop_assert!(approx_eq_up_to_phase(&fused, &expect, 1e-9));

        let swept = gpu_state(&native, schedule::DEFAULT_SWEEP_WIDTH, true);
        prop_assert!(approx_eq_up_to_phase(&swept, &expect, 1e-9));

        // Order-preserving sweeps replay the exact same arithmetic in
        // the exact same order: equality is bitwise, not approximate.
        let grouped = gpu_state(&native, schedule::DEFAULT_SWEEP_WIDTH, false);
        for (a, b) in fused.iter().zip(grouped.iter()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }

        // The adaptive planner joins the agreement on any circuit, no
        // matter which per-segment modes the cost model picks.
        let planned_opts = RunOptions { keep_state: true, ..RunOptions::planned() };
        let planned: RunOutput<f64> =
            GpuDevice::a100_40gb().run(&native, &planned_opts).expect("planned run");
        let planned = planned.state.expect("state kept");
        prop_assert!(approx_eq_up_to_phase(planned.amplitudes(), &expect, 1e-9));
    }

    /// A planner pinned to unfused mode with reordering off replays the
    /// baseline's gate-at-a-time arithmetic in source order, so its state
    /// is bit-identical to `AerCpuBackend` — segmentation is invisible.
    #[test]
    fn planner_forced_unfused_is_bit_identical_to_aer(circ in arb_circuit(5, 40)) {
        let (native, _) = transpile::decompose_to_native(&circ);
        let aer: RunOutput<f64> = AerCpuBackend
            .run(&native, &RunOptions { keep_state: true, ..Default::default() })
            .expect("aer run");
        let aer = aer.state.expect("state kept");

        let opts = RunOptions {
            keep_state: true,
            sweep_reorder: false,
            strategy: ExecStrategy::Planned,
            planner_costs: PlannerCosts {
                force_mode: Some(SegmentMode::Unfused),
                ..PlannerCosts::host_reference()
            },
            ..Default::default()
        };
        let planned: RunOutput<f64> =
            GpuDevice::a100_40gb().run(&native, &opts).expect("planned run");
        let planned = planned.state.expect("state kept");
        for (a, b) in aer.amplitudes().iter().zip(planned.amplitudes().iter()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    /// A planner pinned to sweep mode executes the exact sweep schedule
    /// the fixed sweep path would have, bit for bit.
    #[test]
    fn planner_forced_sweep_is_bit_identical_to_fixed_sweep_mode(circ in arb_circuit(5, 40)) {
        let (native, _) = transpile::decompose_to_native(&circ);
        let fixed = gpu_state(&native, schedule::DEFAULT_SWEEP_WIDTH, true);

        let opts = RunOptions {
            keep_state: true,
            strategy: ExecStrategy::Planned,
            planner_costs: PlannerCosts {
                force_mode: Some(SegmentMode::Sweep),
                ..PlannerCosts::host_reference()
            },
            ..Default::default()
        };
        let planned: RunOutput<f64> =
            GpuDevice::a100_40gb().run(&native, &opts).expect("planned run");
        let planned = planned.state.expect("state kept");
        for (a, b) in fixed.iter().zip(planned.amplitudes().iter()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    /// `schedule::sweeps` is a legal reorder on arbitrary 8-qubit
    /// circuits: the plan validates (partition, width caps, pairwise
    /// commutation across sweep boundaries) and executing the reordered
    /// program reproduces the original state.
    #[test]
    fn sweep_schedule_is_a_legal_reorder(circ in arb_circuit(8, 60)) {
        let (native, _) = transpile::decompose_to_native(&circ);
        let (unitary, _) = native.split_measurements();
        let program = fusion::try_fuse(&unitary, 5).expect("fusable");
        let opts = SweepOptions::default();
        let plan = schedule::sweeps(&program, &opts);
        prop_assert!(plan.validate(&program, &opts).is_ok(), "illegal schedule");
        prop_assert_eq!(plan.num_kernels(), program.blocks.len());

        let reordered = plan.reorder_program(&program);
        let mut original = reference::zero_state(native.num_qubits());
        program.apply_to_state(&mut original);
        let mut permuted = reference::zero_state(native.num_qubits());
        reordered.apply_to_state(&mut permuted);
        prop_assert!(
            max_deviation(&original, &permuted) < 1e-9,
            "reorder changed the unitary by {}",
            max_deviation(&original, &permuted)
        );
    }

    /// Batching a run's shots never changes its histogram: the batched
    /// draws are a deterministic partition of the single seeded master
    /// draw, on both backends.
    #[test]
    fn seed_determinism_batched_vs_unbatched(
        circ in arb_circuit(5, 20),
        seed in 0u64..1_000,
        batch_idx in 0usize..4,
    ) {
        let batch = [1u64, 7, 100, 1_000_000][batch_idx];
        let mut circ = circ;
        circ.measure_all();
        let (native, _) = transpile::decompose_to_native(&circ);
        let base = RunOptions { shots: 600, seed, ..Default::default() };
        let batched = RunOptions { shot_batch: batch, ..base.clone() };

        let plain: RunOutput<f64> = AerCpuBackend.run(&native, &base).expect("aer");
        let split: RunOutput<f64> = AerCpuBackend.run(&native, &batched).expect("aer");
        prop_assert_eq!(plain.counts.unwrap().map, split.counts.unwrap().map);

        let plain: RunOutput<f64> = GpuDevice::a100_40gb().run(&native, &base).expect("gpu");
        let split: RunOutput<f64> = GpuDevice::a100_40gb().run(&native, &batched).expect("gpu");
        prop_assert_eq!(plain.counts.unwrap().map, split.counts.unwrap().map);
    }
}

/// A dense, normalized, deterministic pseudo-random state so kernel
/// comparisons exercise every amplitude (|0…0⟩ would leave most of the
/// state zero and hide scatter/gather bugs).
fn rich_state(num_qubits: u32, seed: u64) -> Vec<Complex<f64>> {
    let dim = 1usize << num_qubits;
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    };
    let mut amps: Vec<Complex<f64>> =
        (0..dim).map(|_| Complex::new(next(), next())).collect();
    let norm = amps.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>().sqrt();
    for a in &mut amps {
        a.re /= norm;
        a.im /= norm;
    }
    amps
}

/// Fuse a circuit and check every block's structure-dispatched kernel
/// against the dense kernel on a rich state; `admissible` pins which
/// structure classes the gate pool may legally produce.
fn assert_structured_matches_dense(
    circ: &Circuit,
    seed: u64,
    admissible: impl Fn(&fusion::KernelStructure) -> bool,
) {
    let (native, _) = transpile::decompose_to_native(circ);
    let (unitary, _) = native.split_measurements();
    let program = fusion::try_fuse(&unitary, 5).expect("fusable");
    for block in &program.blocks {
        let structure = block.structure();
        assert!(
            admissible(&structure),
            "gate pool produced unexpected structure {}",
            structure.name()
        );
        let mut dense = rich_state(native.num_qubits(), seed);
        let mut structured = dense.clone();
        GpuDevice::apply_block(&mut dense, block);
        GpuDevice::apply_block_structured(&mut structured, block, &structure);
        assert!(
            max_deviation(&dense, &structured) < 1e-12,
            "{} kernel deviates {} from dense apply",
            structure.name(),
            max_deviation(&dense, &structured)
        );
    }
}

/// Strategy: circuits drawn only from diagonal gates.
fn diagonal_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (2..=max_qubits, 1..=max_gates)
        .prop_flat_map(|(n, len)| {
            let gate = (0u8..5, 0..n, 1..n, -6.3..6.3f64);
            (Just(n), proptest::collection::vec(gate, len))
        })
        .prop_map(|(n, gates)| {
            let mut c = Circuit::new(n);
            for (kind, a, boff, theta) in gates {
                let b = (a + boff) % n;
                match kind {
                    0 => {
                        c.rz(theta, a);
                    }
                    1 => {
                        c.p(theta, a);
                    }
                    2 => {
                        c.t(a);
                    }
                    3 => {
                        c.cz(a, b);
                    }
                    _ => {
                        c.cr1(theta, a, b);
                    }
                }
            }
            c
        })
}

/// Strategy: circuits drawn only from classical permutation gates.
fn permutation_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (2..=max_qubits, 1..=max_gates)
        .prop_flat_map(|(n, len)| {
            let gate = (0u8..3, 0..n, 1..n);
            (Just(n), proptest::collection::vec(gate, len))
        })
        .prop_map(|(n, gates)| {
            let mut c = Circuit::new(n);
            for (kind, a, boff) in gates {
                let b = (a + boff) % n;
                match kind {
                    0 => {
                        c.x(a);
                    }
                    1 => {
                        c.cx(a, b);
                    }
                    _ => {
                        c.swap(a, b);
                    }
                }
            }
            c
        })
}

/// Strategy: circuits that only ever mix qubit 0 (rotations on it,
/// controls elsewhere), so multi-qubit fused blocks carry unmixed
/// control qubits — the shape the controlled kernel specializes.
fn controlled_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (3..=max_qubits, 2..=max_gates)
        .prop_flat_map(|(n, len)| {
            let gate = (0u8..3, 1..n, -6.3..6.3f64);
            (Just(n), proptest::collection::vec(gate, len))
        })
        .prop_map(|(n, gates)| {
            let mut c = Circuit::new(n);
            for (kind, b, theta) in gates {
                match kind {
                    0 => {
                        c.ry(theta, 0);
                    }
                    1 => {
                        c.cx(b, 0);
                    }
                    _ => {
                        c.cr1(theta, b, 0);
                    }
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Diagonal gate pools fuse into diagonal kernels, and the
    /// phase-multiply fast path matches the dense kernel.
    #[test]
    fn diagonal_kernels_match_dense_apply(
        circ in diagonal_circuit(5, 24),
        seed in 0u64..1_000,
    ) {
        assert_structured_matches_dense(&circ, seed, |s| {
            matches!(s, fusion::KernelStructure::Diagonal)
        });
    }

    /// Permutation gate pools fuse into permutation kernels (or collapse
    /// to a diagonal identity), and the gather/scatter fast path matches
    /// the dense kernel.
    #[test]
    fn permutation_kernels_match_dense_apply(
        circ in permutation_circuit(5, 24),
        seed in 0u64..1_000,
    ) {
        assert_structured_matches_dense(&circ, seed, |s| {
            matches!(
                s,
                fusion::KernelStructure::Permutation(_) | fusion::KernelStructure::Diagonal
            )
        });
    }

    /// Pools that only mix one qubit produce controlled (or narrower)
    /// kernels, and the factored fast path matches the dense kernel.
    #[test]
    fn controlled_kernels_match_dense_apply(
        circ in controlled_circuit(5, 24),
        seed in 0u64..1_000,
    ) {
        assert_structured_matches_dense(&circ, seed, |_| true);
    }
}

/// The controlled fast path on a deterministic known-Controlled block —
/// guarantees the factored kernel is exercised even if a proptest draw
/// happens to classify everything narrower.
#[test]
fn controlled_kernel_matches_dense_on_a_known_block() {
    let mut c = Circuit::new(3);
    c.ry(0.4, 0).cx(1, 0).cr1(0.7, 2, 0);
    let (native, _) = transpile::decompose_to_native(&c);
    let (unitary, _) = native.split_measurements();
    let program = fusion::try_fuse(&unitary, 3).expect("fusable");
    assert_eq!(program.blocks.len(), 1, "expected one 3-qubit block");
    let block = &program.blocks[0];
    let structure = block.structure();
    assert!(
        matches!(structure, fusion::KernelStructure::Controlled { .. }),
        "expected Controlled, got {}",
        structure.name()
    );
    let mut dense = rich_state(3, 9);
    let mut structured = dense.clone();
    GpuDevice::apply_block(&mut dense, block);
    GpuDevice::apply_block_structured(&mut structured, block, &structure);
    assert!(max_deviation(&dense, &structured) < 1e-12);
}

/// fp32 execution of the sweep-fused hot path tracks fp64 within single
/// precision accumulation error; fp64 tracks the reference far tighter.
/// The gap between the two tolerances is what makes the precision knob a
/// real trade-off rather than a no-op.
#[test]
fn fp32_tracks_fp64_within_single_precision_tolerance() {
    let circ = qft_circuit(10, &QftOptions::default());
    let opts = RunOptions { keep_state: true, ..Default::default() };

    let f64_out: RunOutput<f64> = GpuDevice::a100_40gb().run(&circ, &opts).expect("fp64");
    let f64_amps = f64_out.state.expect("state").amplitudes().to_vec();
    let expect = reference::run(&circ);
    assert!(approx_eq_up_to_phase(&f64_amps, &expect, 1e-12), "fp64 off the reference");

    let f32_out: RunOutput<f32> = GpuDevice::a100_40gb().run(&circ, &opts).expect("fp32");
    let widened: Vec<Complex<f64>> = f32_out
        .state
        .expect("state")
        .amplitudes()
        .iter()
        .map(|c| Complex::new(f64::from(c.re), f64::from(c.im)))
        .collect();
    assert!(
        approx_eq_up_to_phase(&widened, &expect, 1e-4),
        "fp32 deviation {} exceeds single-precision tolerance",
        max_deviation(&widened, &expect)
    );
    assert!(
        !approx_eq_up_to_phase(&widened, &expect, 1e-13),
        "fp32 matching at 1e-13 means the precision knob is a no-op"
    );
}

/// The multi-GPU cluster engine runs the same sweep-scheduled defaults
/// and must land on the single-device state.
#[test]
fn cluster_matches_single_device_with_sweeps_enabled() {
    let circ = generate_random_gate_list(&RandomCircuitSpec {
        num_qubits: 9,
        num_blocks: 80,
        seed: 11,
        measure: false,
    });
    let opts = RunOptions { keep_state: true, ..Default::default() };
    let single: RunOutput<f64> = GpuDevice::a100_40gb().run(&circ, &opts).expect("gpu");
    let multi: RunOutput<f64> =
        ClusterEngine::a100_cluster(4).run(&circ, &opts).expect("cluster");
    let single = single.state.expect("state");
    let multi = multi.state.expect("state");
    assert!(
        approx_eq_up_to_phase(multi.amplitudes(), single.amplitudes(), 1e-10),
        "cluster diverged from single device"
    );
}

/// Run `circ` segmented, interrupting at schedule step `k`: snapshot,
/// serialize through the full checkpoint codec (the same wire bytes a
/// crashed worker leaves behind), decode, resume a *fresh* plan from the
/// verified checkpoint, and finish.
fn interrupted_at<T: CheckpointScalar>(
    circ: &Circuit,
    opts: &RunOptions,
    k: usize,
) -> RunOutput<T> {
    let device = GpuDevice::a100_40gb();
    let mut run = SegmentedRun::<T>::new(&device, circ, opts).expect("plan");
    for _ in 0..k {
        run.advance(1);
    }
    assert_eq!(run.cursor(), k, "interruption point off the boundary");
    let bytes = encode_checkpoint(&run.checkpoint());
    drop(run); // the "crash": only the wire bytes survive
    let ck = decode_checkpoint::<T>(&bytes).expect("intact checkpoint verifies");
    let mut resumed = SegmentedRun::resume(&device, circ, opts, ck).expect("resume");
    while !resumed.is_done() {
        resumed.advance(2);
    }
    resumed.finish(opts)
}

/// Checkpoint/restore is invisible to the physics: interrupting at
/// *every* schedule boundary — including cursor 0 and the final step —
/// and resuming through the codec reproduces the straight-through run
/// bit for bit (amplitudes and sampled counts), across the plain-fused
/// schedule, both sweep modes, and the adaptive planner (natural and
/// pinned to each forced mode), at fp64.
#[test]
fn resume_at_every_segment_boundary_is_bit_identical_to_straight_through() {
    let circ = qft_circuit(6, &QftOptions::default());
    let mut circ = circ;
    circ.measure_all();

    // Sweep width 3 (vs the default 12) keeps several sweeps in the
    // schedule, so there are genuine mid-run boundaries to interrupt at.
    let fixed = |sweep_width, sweep_reorder| RunOptions {
        shots: 512,
        seed: 23,
        shot_batch: 32,
        fusion_width: 2,
        sweep_width,
        sweep_reorder,
        keep_state: true,
        ..Default::default()
    };
    let forced = |mode| PlannerCosts { force_mode: Some(mode), ..PlannerCosts::host_reference() };
    let configs = [
        ("fused", fixed(0, false)),
        ("ordered sweeps", fixed(3, false)),
        ("reordered sweeps", fixed(3, true)),
        ("planned", RunOptions { strategy: ExecStrategy::Planned, ..fixed(3, true) }),
        (
            "planned forced unfused",
            RunOptions {
                strategy: ExecStrategy::Planned,
                planner_costs: forced(SegmentMode::Unfused),
                ..fixed(3, false)
            },
        ),
        (
            "planned forced sweep",
            RunOptions {
                strategy: ExecStrategy::Planned,
                planner_costs: forced(SegmentMode::Sweep),
                ..fixed(3, true)
            },
        ),
    ];

    for (label, opts) in configs {
        let straight: RunOutput<f64> =
            GpuDevice::a100_40gb().run(&circ, &opts).expect("straight run");
        let straight_amps = straight.state.as_ref().expect("state").amplitudes();
        let steps = SegmentedRun::<f64>::new(&GpuDevice::a100_40gb(), &circ, &opts)
            .expect("plan")
            .steps_total();
        assert!(steps >= 2, "{label}: schedule too short to interrupt meaningfully");

        for k in 0..=steps {
            let resumed = interrupted_at::<f64>(&circ, &opts, k);
            let resumed_amps = resumed.state.as_ref().expect("state").amplitudes();
            for (a, b) in straight_amps.iter().zip(resumed_amps.iter()) {
                assert_eq!(
                    a.re.to_bits(),
                    b.re.to_bits(),
                    "amplitude divergence at boundary {k} ({label})"
                );
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            assert_eq!(
                straight.counts.as_ref().unwrap().map,
                resumed.counts.unwrap().map,
                "counts divergence at boundary {k} ({label})"
            );
            assert_eq!(straight.stats.gates_applied, resumed.stats.gates_applied);
            assert_eq!(straight.stats.kernels_launched, resumed.stats.kernels_launched);
        }
    }
}

/// The fp32 segmented path behaves the same way: resume is bit-identical
/// to its own straight-through fp32 run at every boundary, and the
/// resumed fp32 state tracks the fp64 reference within single-precision
/// tolerance — interruption never amplifies the precision gap.
#[test]
fn fp32_resume_is_self_consistent_and_tracks_fp64_within_tolerance() {
    let mut circ = qft_circuit(6, &QftOptions::default());
    circ.measure_all();
    let opts = RunOptions {
        shots: 256,
        seed: 5,
        fusion_width: 2,
        keep_state: true,
        ..Default::default()
    };

    let straight32: RunOutput<f32> = GpuDevice::a100_40gb().run(&circ, &opts).expect("fp32");
    let straight32_amps = straight32.state.as_ref().expect("state").amplitudes();
    let straight64: RunOutput<f64> = GpuDevice::a100_40gb().run(&circ, &opts).expect("fp64");
    let f64_amps: Vec<Complex<f64>> =
        straight64.state.as_ref().expect("state").amplitudes().to_vec();

    let steps = SegmentedRun::<f32>::new(&GpuDevice::a100_40gb(), &circ, &opts)
        .expect("plan")
        .steps_total();
    for k in 0..=steps {
        let resumed = interrupted_at::<f32>(&circ, &opts, k);
        let resumed_amps = resumed.state.as_ref().expect("state").amplitudes();
        for (a, b) in straight32_amps.iter().zip(resumed_amps.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "fp32 divergence at boundary {k}");
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(straight32.counts.as_ref().unwrap().map, resumed.counts.unwrap().map);

        let widened: Vec<Complex<f64>> = resumed_amps
            .iter()
            .map(|c| Complex::new(f64::from(c.re), f64::from(c.im)))
            .collect();
        assert!(
            approx_eq_up_to_phase(&widened, &f64_amps, 1e-4),
            "fp32 resumed at boundary {k} deviates {} from fp64",
            max_deviation(&widened, &f64_amps)
        );
    }
}

/// A served job's counts are bit-identical to evolving and sampling the
/// canonical circuit directly with the same knobs — the service's
/// evolve-once/sample-many split shares the one probability-conversion
/// point with the engines.
#[test]
fn serve_counts_match_direct_evolve_and_sample() {
    let mut circ = qft_circuit(6, &QftOptions::default());
    circ.measure_all();

    let service = Service::start(ServeConfig { workers: 1, ..Default::default() });
    let spec = JobSpec::new(circ.clone()).shots(2048).seed(77).shot_batch(64);
    let id = service.submit(spec).job_id().expect("accepted");
    let served = service.wait(id).expect("completes");
    let served = served.result().expect("success").counts.clone().expect("counts");
    service.shutdown();

    // Mirror the worker: canonicalize, evolve once, sample the marginal.
    let canonical =
        if circ.is_native() { circ.clone() } else { transpile::decompose_to_native(&circ).0 };
    let out: RunOutput<f64> = GpuDevice::a100_40gb()
        .run(&canonical, &RunOptions { shots: 0, keep_state: true, ..Default::default() })
        .expect("gpu run");
    let (_, measured) = canonical.split_measurements();
    let probs = marginal_probs(&out.state.expect("state"), &measured);
    let cfg = SamplingConfig { shots: 2048, seed: 77, batch_shots: 64 };
    let direct = sample_from_probs(&probs, &measured, &cfg).expect("counts");
    assert_eq!(served.map, direct.map, "served counts must replay bit-identically");
}

/// Batch-of-1 differential: a job served through the batched dispatch
/// path — coalescing enabled, batch occupancy one — produces counts
/// bit-identical to (a) the same service with batching disabled and
/// (b) directly evolving and sampling the canonical circuit with the
/// same knobs. The joint pass itself is held to the same standard: a
/// single-member `run_batched` evolves amplitudes bit-identical to the
/// solo engine. Batching must be a pure dispatch decision, invisible in
/// every result bit.
#[test]
fn batch_of_one_is_bit_identical_to_solo_serving_and_direct_execution() {
    use qgear_serve::{BatchConfig, BatchMemberDisposition};
    use std::time::Duration;

    // Rotation angles keep the circuit off the Clifford/stabilizer path
    // so admission selects the dense engine the coalescer batches.
    let mut circ = Circuit::new(5);
    for q in 0..5 {
        circ.h(q).ry(0.23 + 0.31 * f64::from(q), q);
    }
    for q in 0..4 {
        circ.cx(q, q + 1);
    }
    circ.measure_all();
    let spec = || JobSpec::new(circ.clone()).shots(1024).seed(99).shot_batch(32);

    // Through the batched dispatch path, alone in its batch.
    let batched_service = Service::start(ServeConfig {
        workers: 1,
        checkpoint_interval: 0,
        batch: BatchConfig { max_size: 4, window: Duration::from_micros(200) },
        ..Default::default()
    });
    let id = batched_service.submit(spec()).job_id().expect("accepted");
    let batched = batched_service.wait(id).expect("completes");
    let batched = batched.result().expect("success").counts.clone().expect("counts");
    batched_service.shutdown();
    let log = batched_service.batch_log();
    assert_eq!(log.len(), 1, "one dispatch, one batch record");
    assert_eq!(log[0].members.len(), 1, "the job rode alone");
    assert_eq!(log[0].members[0].1, BatchMemberDisposition::Executed);

    // Through the pre-batching solo path.
    let solo_service = Service::start(ServeConfig { workers: 1, ..Default::default() });
    let id = solo_service.submit(spec()).job_id().expect("accepted");
    let solo = solo_service.wait(id).expect("completes");
    let solo = solo.result().expect("success").counts.clone().expect("counts");
    solo_service.shutdown();
    assert!(solo_service.batch_log().is_empty(), "batching disabled logs nothing");
    assert_eq!(batched.map, solo.map, "batch-of-1 counts must match solo serving");

    // Directly: single-member joint pass, then the shared sampling
    // pipeline. Amplitudes first — the stronger claim.
    let canonical =
        if circ.is_native() { circ.clone() } else { transpile::decompose_to_native(&circ).0 };
    let evolve = RunOptions { shots: 0, keep_state: true, ..Default::default() };
    let joint = qgear_statevec::run_batched::<f64>(
        &GpuDevice::a100_40gb(),
        &[&canonical],
        &evolve,
    )
    .expect("single-member batch");
    let direct: RunOutput<f64> =
        GpuDevice::a100_40gb().run(&canonical, &evolve).expect("gpu run");
    let direct_state = direct.state.expect("state");
    for (a, b) in joint[0].state.amplitudes().iter().zip(direct_state.amplitudes()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "joint pass amplitude drift");
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
    let (_, measured) = canonical.split_measurements();
    let probs = marginal_probs(&joint[0].state, &measured);
    let cfg = SamplingConfig { shots: 1024, seed: 99, batch_shots: 32 };
    let from_joint = sample_from_probs(&probs, &measured, &cfg).expect("counts");
    assert_eq!(batched.map, from_joint.map, "served batch-of-1 must replay the joint pass");
}

// ─────────────────────── SIMD differential tier ───────────────────────

/// Serializes tests that flip the process-global SIMD toggle, so each
/// comparison deterministically runs one side on the lane path and the
/// other on the scalar path. (A race would not corrupt results — the two
/// paths are bitwise identical — but it would silently weaken coverage.)
static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the SIMD toggle pinned to `on`, restoring it after.
fn with_simd<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let prev = simd_enabled();
    set_simd_enabled(on);
    let out = f();
    set_simd_enabled(prev);
    out
}

fn assert_bits_eq_f64(a: &[Complex<f64>], b: &[Complex<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re divergence at amp {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im divergence at amp {i}");
    }
}

fn assert_bits_eq_f32(a: &[Complex<f32>], b: &[Complex<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re divergence at amp {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im divergence at amp {i}");
    }
}

/// Fuse `circ` and diff every block's SIMD-on vs SIMD-off application —
/// dense kernel and structure-dispatched kernel, fp64 and fp32 — bitwise
/// on a rich state. High-qubit blocks take the lane path; low-qubit and
/// narrow blocks exercise the scalar remainder fallback.
fn assert_simd_toggle_invisible_on_blocks(circ: &Circuit, seed: u64) {
    let _g = SIMD_LOCK.lock().unwrap();
    let (native, _) = transpile::decompose_to_native(circ);
    let (unitary, _) = native.split_measurements();
    let program = fusion::try_fuse(&unitary, 5).expect("fusable");
    let base64 = rich_state(native.num_qubits(), seed);
    let base32: Vec<Complex<f32>> =
        base64.iter().map(|c| Complex::new(c.re as f32, c.im as f32)).collect();
    for block in &program.blocks {
        let structure = block.structure();
        let what = format!("{} block on {:?}", structure.name(), block.qubits);

        let (mut on, mut off) = (base64.clone(), base64.clone());
        with_simd(true, || GpuDevice::apply_block(&mut on, block));
        with_simd(false, || GpuDevice::apply_block(&mut off, block));
        assert_bits_eq_f64(&on, &off, &format!("{what} (dense fp64)"));

        let (mut on, mut off) = (base64.clone(), base64.clone());
        with_simd(true, || GpuDevice::apply_block_structured(&mut on, block, &structure));
        with_simd(false, || GpuDevice::apply_block_structured(&mut off, block, &structure));
        assert_bits_eq_f64(&on, &off, &format!("{what} (structured fp64)"));

        let (mut on, mut off) = (base32.clone(), base32.clone());
        with_simd(true, || GpuDevice::apply_block_structured(&mut on, block, &structure));
        with_simd(false, || GpuDevice::apply_block_structured(&mut off, block, &structure));
        assert_bits_eq_f32(&on, &off, &format!("{what} (structured fp32)"));
    }
}

/// Move a circuit's gates onto the top qubits of a wider register, so
/// every inserted group bit clears the lane width and the lane kernels
/// are guaranteed to engage (f64x4 needs bits ≥ 2, f32x8 bits ≥ 3).
fn lifted(circ: &Circuit, total: u32) -> Circuit {
    let shift = total - circ.num_qubits();
    let mut out = Circuit::new(total);
    for gate in circ.gates() {
        let mut g = *gate;
        for q in g.qubits.iter_mut().take(g.kind.arity()) {
            *q += shift;
        }
        out.push(g).expect("lifted gate stays in range");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Whole-run toggle invariance on arbitrary circuits: fused, sweep,
    /// and planned execution each produce bit-identical fp64 states with
    /// SIMD on and off. Drawing up to 10 qubits mixes lane-eligible
    /// kernels (high-qubit blocks) with scalar-fallback kernels
    /// (low-qubit blocks, narrow states) in one run.
    #[test]
    fn simd_toggle_is_bitwise_invisible_on_any_circuit(circ in arb_circuit(10, 40)) {
        let _g = SIMD_LOCK.lock().unwrap();
        let (native, _) = transpile::decompose_to_native(&circ);
        for (label, width, reorder) in [
            ("fused", 0usize, false),
            ("sweeps", schedule::DEFAULT_SWEEP_WIDTH, true),
        ] {
            let on = with_simd(true, || gpu_state(&native, width, reorder));
            let off = with_simd(false, || gpu_state(&native, width, reorder));
            assert_bits_eq_f64(&on, &off, label);
        }
        let planned = RunOptions { keep_state: true, ..RunOptions::planned() };
        let on: RunOutput<f64> = with_simd(true, || {
            GpuDevice::a100_40gb().run(&native, &planned).expect("planned")
        });
        let off: RunOutput<f64> = with_simd(false, || {
            GpuDevice::a100_40gb().run(&native, &planned).expect("planned")
        });
        assert_bits_eq_f64(
            on.state.expect("state").amplitudes(),
            off.state.expect("state").amplitudes(),
            "planned",
        );
    }

    /// The same whole-run invariance at fp32, where the lane width is 8
    /// and the remainder condition (target bits < 3) is easier to hit.
    #[test]
    fn simd_toggle_is_bitwise_invisible_at_fp32(circ in arb_circuit(9, 30)) {
        let _g = SIMD_LOCK.lock().unwrap();
        let (native, _) = transpile::decompose_to_native(&circ);
        let opts = RunOptions { keep_state: true, ..Default::default() };
        let on: RunOutput<f32> =
            with_simd(true, || GpuDevice::a100_40gb().run(&native, &opts).expect("fp32"));
        let off: RunOutput<f32> =
            with_simd(false, || GpuDevice::a100_40gb().run(&native, &opts).expect("fp32"));
        assert_bits_eq_f32(
            on.state.expect("state").amplitudes(),
            off.state.expect("state").amplitudes(),
            "fp32 sweeps",
        );
    }

    /// Per-block toggle invariance over diagonal gate pools (the
    /// DiagTable kernel, which vectorizes even over low target bits).
    #[test]
    fn simd_diagonal_kernels_match_scalar_bitwise(
        circ in diagonal_circuit(10, 24),
        seed in 0u64..1_000,
    ) {
        assert_simd_toggle_invisible_on_blocks(&circ, seed);
    }

    /// Per-block toggle invariance over permutation gate pools (the
    /// shuffle + single-multiply lane kernel).
    #[test]
    fn simd_permutation_kernels_match_scalar_bitwise(
        circ in permutation_circuit(10, 24),
        seed in 0u64..1_000,
    ) {
        assert_simd_toggle_invisible_on_blocks(&circ, seed);
    }

    /// Per-block toggle invariance over single-mixed-qubit pools (the
    /// factored/controlled lane kernel with its lane-uniform sub-unitary
    /// extraction).
    #[test]
    fn simd_controlled_kernels_match_scalar_bitwise(
        circ in controlled_circuit(10, 24),
        seed in 0u64..1_000,
    ) {
        assert_simd_toggle_invisible_on_blocks(&circ, seed);
    }

    /// Per-block toggle invariance over the full gate pool (dense
    /// kernels, plus whatever narrower classes the draw produces).
    #[test]
    fn simd_dense_kernels_match_scalar_bitwise(
        circ in arb_circuit(10, 24),
        seed in 0u64..1_000,
    ) {
        assert_simd_toggle_invisible_on_blocks(&circ, seed);
    }
}

/// Tail/remainder shapes, deterministically: states too small to fill
/// one lane vector (n = 1, 2 at fp64; n ≤ 3 at fp32) and blocks whose
/// target bits sit below the lane width must fall back to the scalar
/// path and still agree bitwise under the toggle.
#[test]
fn simd_tail_shapes_fall_back_bitwise_identically() {
    // Small registers: every group count 2^(n-k) < LANES.
    for n in 1..=3u32 {
        let mut c = Circuit::new(n);
        c.h(0);
        if n > 1 {
            c.cx(0, 1).p(0.37, n - 1);
        }
        assert_simd_toggle_invisible_on_blocks(&c, 7 + u64::from(n));
    }
    // Low target bits on a wide register: enough groups, but inserted
    // bits below the lane width keep dense/permutation kernels scalar —
    // while the diagonal table still vectorizes over the same bits.
    let mut low = Circuit::new(10);
    low.h(0).ry(0.21, 1).cx(0, 1).p(0.53, 0).cr1(0.71, 0, 1).x(1).swap(0, 1);
    assert_simd_toggle_invisible_on_blocks(&low, 41);
}

/// Lane-guaranteed coverage of all four structure classes: each pool is
/// lifted onto the top qubits of a 12-qubit register, so every inserted
/// bit clears both lane widths and the vector kernels demonstrably
/// engage (not just trivially agree via the shared scalar path).
#[test]
fn simd_lane_path_engages_on_all_structure_classes() {
    type PoolBuilder = fn(&mut Circuit);
    let pools: [(&str, PoolBuilder); 4] = [
        ("diagonal", |c| {
            c.p(0.3, 0).cr1(0.7, 1, 2).t(1).rz(-0.9, 2);
        }),
        ("permutation", |c| {
            c.x(0).cx(1, 2).swap(0, 2);
        }),
        ("controlled", |c| {
            c.ry(0.4, 0).cx(1, 0).cr1(0.7, 2, 0);
        }),
        ("dense", |c| {
            c.h(0).ry(0.3, 1).h(2).cx(0, 1).u(0.2, 0.1, -0.3, 2);
        }),
    ];
    for (name, build) in pools {
        let mut small = Circuit::new(3);
        build(&mut small);
        let wide = lifted(&small, 12);
        assert_simd_toggle_invisible_on_blocks(&wide, 13);
        let _ = name;
    }
}

/// Batched execution under the toggle: every member of a joint pass is
/// bitwise stable against SIMD on/off, which combined with
/// `every_member_is_bit_identical_to_its_solo_run` keeps the batched
/// path inside the same bit-identity contract as the solo engine.
#[test]
fn simd_toggle_is_bitwise_invisible_on_batched_runs() {
    let _g = SIMD_LOCK.lock().unwrap();
    let members: Vec<Circuit> = (0..3)
        .map(|i| {
            let mut c = Circuit::new(10);
            for q in 0..10 {
                c.h(q).ry(0.2 + 0.31 * f64::from(q) + 0.7 * f64::from(i), q);
            }
            for q in 0..9 {
                c.cx(q, q + 1).p(0.11 * f64::from(q + 1), q + 1);
            }
            c
        })
        .collect();
    let refs: Vec<&Circuit> = members.iter().collect();
    let opts = RunOptions { keep_state: true, ..Default::default() };
    let on = with_simd(true, || {
        qgear_statevec::run_batched::<f64>(&GpuDevice::a100_40gb(), &refs, &opts).expect("batch")
    });
    let off = with_simd(false, || {
        qgear_statevec::run_batched::<f64>(&GpuDevice::a100_40gb(), &refs, &opts).expect("batch")
    });
    for (m, (a, b)) in on.iter().zip(off.iter()).enumerate() {
        assert_bits_eq_f64(
            a.state.amplitudes(),
            b.state.amplitudes(),
            &format!("batched member {m}"),
        );
    }
}

/// The zero-copy sweep tile fast path: when a sweep's qubits are exactly
/// the low `u` positions, tiles are contiguous state slices and the
/// executor must skip the gather/scatter round-trip (observable via the
/// `sweep.tiles.zero_copy` counter) while staying bit-identical to both
/// plain fused execution and the scalar path.
#[test]
fn zero_copy_sweep_tiles_engage_and_stay_bit_identical() {
    let _g = SIMD_LOCK.lock().unwrap();
    // Gates over qubits 0..6 of an 8-qubit register: the sweep union is
    // the contiguous prefix [0, 1, 2, 3, 4, 5], so tiles are in-place.
    let mut c = Circuit::new(8);
    for q in 0..6 {
        c.h(q).ry(0.17 + 0.29 * f64::from(q), q);
    }
    for q in 0..5 {
        c.cx(q, q + 1);
    }
    for q in 0..6 {
        c.p(0.41 * f64::from(q + 1), q);
    }
    let opts = |w| RunOptions {
        keep_state: true,
        fusion_width: 2,
        sweep_width: w,
        sweep_reorder: false,
        ..Default::default()
    };

    qgear_telemetry::reset();
    qgear_telemetry::enable();
    let swept: RunOutput<f64> = GpuDevice::a100_40gb().run(&c, &opts(6)).expect("sweep");
    qgear_telemetry::disable();
    let snap = qgear_telemetry::snapshot();
    qgear_telemetry::reset();
    assert!(
        snap.counter(qgear_telemetry::names::SWEEP_ZERO_COPY_TILES) > 0,
        "contiguous-prefix sweep did not take the zero-copy tile path"
    );

    let fused: RunOutput<f64> = GpuDevice::a100_40gb().run(&c, &opts(0)).expect("fused");
    assert_bits_eq_f64(
        swept.state.as_ref().expect("state").amplitudes(),
        fused.state.expect("state").amplitudes(),
        "zero-copy sweep vs plain fused",
    );
    let scalar: RunOutput<f64> =
        with_simd(false, || GpuDevice::a100_40gb().run(&c, &opts(6)).expect("sweep"));
    assert_bits_eq_f64(
        swept.state.expect("state").amplitudes(),
        scalar.state.expect("state").amplitudes(),
        "zero-copy sweep vs scalar path",
    );
}

/// Checkpoint-resume into SIMD kernels: a 10-qubit run whose blocks sit
/// high enough for the lane path, interrupted at every schedule
/// boundary, resumes bit-identical to the straight-through run — and the
/// straight-through run itself is toggle-invariant, closing the loop
/// between the resume contract and the SIMD contract.
#[test]
fn resume_through_checkpoint_into_simd_kernels_is_bit_identical() {
    let _g = SIMD_LOCK.lock().unwrap();
    let mut circ = qft_circuit(10, &QftOptions::default());
    circ.measure_all();
    let opts = RunOptions {
        shots: 256,
        seed: 31,
        fusion_width: 2,
        sweep_width: 3,
        keep_state: true,
        ..Default::default()
    };

    let straight: RunOutput<f64> = GpuDevice::a100_40gb().run(&circ, &opts).expect("straight");
    let straight_amps = straight.state.as_ref().expect("state").amplitudes();
    let scalar: RunOutput<f64> =
        with_simd(false, || GpuDevice::a100_40gb().run(&circ, &opts).expect("straight"));
    assert_bits_eq_f64(
        straight_amps,
        scalar.state.expect("state").amplitudes(),
        "straight run toggle invariance",
    );

    let steps = SegmentedRun::<f64>::new(&GpuDevice::a100_40gb(), &circ, &opts)
        .expect("plan")
        .steps_total();
    assert!(steps >= 2, "schedule too short to interrupt meaningfully");
    for k in 0..=steps {
        let resumed = interrupted_at::<f64>(&circ, &opts, k);
        assert_bits_eq_f64(
            straight_amps,
            resumed.state.as_ref().expect("state").amplitudes(),
            &format!("resume at boundary {k}"),
        );
        assert_eq!(straight.counts.as_ref().unwrap().map, resumed.counts.unwrap().map);
    }
}

/// Amplitude storage is cache-line aligned in both precisions, before
/// and after a run — the invariant the aligned lane loads rely on.
#[test]
fn amplitude_storage_is_cache_line_aligned_in_both_precisions() {
    use qgear_statevec::StateVector;
    let align = |p: *const u8| p as usize % qgear_num::CACHE_LINE_BYTES;
    assert_eq!(align(StateVector::<f64>::zero(10).amplitudes().as_ptr().cast()), 0);
    assert_eq!(align(StateVector::<f32>::zero(10).amplitudes().as_ptr().cast()), 0);

    let circ = qft_circuit(8, &QftOptions::default());
    let opts = RunOptions { keep_state: true, ..Default::default() };
    let out: RunOutput<f64> = GpuDevice::a100_40gb().run(&circ, &opts).expect("run");
    assert_eq!(align(out.state.expect("state").amplitudes().as_ptr().cast()), 0);
    let out: RunOutput<f32> = GpuDevice::a100_40gb().run(&circ, &opts).expect("run");
    assert_eq!(align(out.state.expect("state").amplitudes().as_ptr().cast()), 0);
}
