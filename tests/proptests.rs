//! Workspace-level property tests (proptest): invariants that must hold
//! for *arbitrary* circuits, not just the fixtures unit tests pick.

use proptest::prelude::*;
use qgear::{QGear, QGearConfig, Target};
use qgear_ir::{qpy, reference, Circuit, GateKind, TensorEncoding};
use qgear_num::approx::approx_eq_up_to_phase;
use qgear_num::scalar::Precision;

/// Strategy: an arbitrary circuit over `n` qubits with `len` gates drawn
/// from the full user-facing gate set (including non-native gates).
fn arb_circuit(max_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (2..=max_qubits, 0..=max_gates)
        .prop_flat_map(|(n, len)| {
            let gate = (0u8..12, 0..n, 1..n, -6.3..6.3f64);
            (Just(n), proptest::collection::vec(gate, len))
        })
        .prop_map(|(n, gates)| {
            let mut c = Circuit::new(n);
            for (kind, a, boff, theta) in gates {
                let b = (a + boff) % n;
                match kind {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.x(a);
                    }
                    2 => {
                        c.rx(theta, a);
                    }
                    3 => {
                        c.ry(theta, a);
                    }
                    4 => {
                        c.rz(theta, a);
                    }
                    5 => {
                        c.p(theta, a);
                    }
                    6 => {
                        c.t(a);
                    }
                    7 => {
                        c.u(theta, theta * 0.5, -theta, a);
                    }
                    8 => {
                        c.cx(a, b);
                    }
                    9 => {
                        c.cz(a, b);
                    }
                    10 => {
                        c.cr1(theta, a, b);
                    }
                    _ => {
                        c.swap(a, b);
                    }
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn norm_preserved_by_any_circuit(circ in arb_circuit(6, 40)) {
        let state = reference::run(&circ);
        let norm = reference::norm_sqr(&state);
        prop_assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn qpy_roundtrip_any_circuit(circ in arb_circuit(8, 60)) {
        let bytes = qpy::write(std::slice::from_ref(&circ));
        let back = qpy::read(&bytes).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &circ);
    }

    #[test]
    fn tensor_encoding_roundtrip_any_native_circuit(circ in arb_circuit(8, 60)) {
        // Encoding requires arity <= 2 (always true for this gate set).
        let (native, _) = qgear_ir::transpile::decompose_to_native(&circ);
        let enc = TensorEncoding::encode(std::slice::from_ref(&native), None).unwrap();
        prop_assert_eq!(enc.decode_one(0).unwrap(), native);
    }

    #[test]
    fn transpile_preserves_unitary_exactly(circ in arb_circuit(5, 25)) {
        let (native, phase) = qgear_ir::transpile::decompose_to_native(&circ);
        let mut got = reference::run(&native);
        reference::apply_global_phase(&mut got, phase);
        let expect = reference::run(&circ);
        prop_assert!(
            qgear_num::approx::max_deviation(&got, &expect) < 1e-9,
            "deviation {}",
            qgear_num::approx::max_deviation(&got, &expect)
        );
    }

    #[test]
    fn fusion_equivalent_at_any_width(
        circ in arb_circuit(5, 30),
        width in 1usize..=5,
    ) {
        let (native, _) = qgear_ir::transpile::decompose_to_native(&circ);
        let (unitary, _) = native.split_measurements();
        let program = qgear_ir::fusion::fuse(&unitary, width);
        let mut fused = reference::zero_state(circ.num_qubits());
        program.apply_to_state(&mut fused);
        let expect = reference::run(&unitary);
        prop_assert!(
            qgear_num::approx::max_deviation(&fused, &expect) < 1e-9
        );
    }

    #[test]
    fn pipeline_targets_agree_on_any_circuit(circ in arb_circuit(5, 20)) {
        let expect = reference::run(&circ);
        for target in [Target::Nvidia, Target::NvidiaMgpu { devices: 2 }] {
            if matches!(target, Target::NvidiaMgpu { .. }) && circ.num_qubits() < 3 {
                // mgpu needs at least a 2-qubit local slice per device.
                continue;
            }
            let qgear = QGear::new(QGearConfig {
                target,
                precision: Precision::Fp64,
                ..Default::default()
            });
            let result = qgear.run(&circ).unwrap();
            prop_assert!(
                approx_eq_up_to_phase(result.state.unwrap().amplitudes(), &expect, 1e-8)
            );
        }
    }

    #[test]
    fn merge_pass_preserves_semantics(circ in arb_circuit(5, 30)) {
        let merged = qgear_ir::transpile::merge_adjacent(&circ);
        prop_assert!(merged.len() <= circ.len());
        let a = reference::run(&circ);
        let b = reference::run(&merged);
        prop_assert!(qgear_num::approx::max_deviation(&a, &b) < 1e-9);
    }

    #[test]
    fn counts_total_matches_shots(
        circ in arb_circuit(4, 12),
        shots in 1u64..5000,
        seed in any::<u64>(),
    ) {
        let mut measured = circ.clone();
        measured.measure_all();
        let qgear = QGear::new(QGearConfig {
            shots,
            seed,
            precision: Precision::Fp64,
            keep_state: false,
            ..Default::default()
        });
        let counts = qgear.run(&measured).unwrap().counts.unwrap();
        prop_assert_eq!(counts.total(), shots);
        // Keys are within range.
        for (&k, _) in counts.map.iter() {
            prop_assert!(k < (1 << measured.num_qubits()));
        }
    }

    #[test]
    fn hdf5_container_roundtrip_any_payload(
        values in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 0..500),
    ) {
        use qgear_hdf5lite::{Compression, Dataset, H5File};
        let mut f = H5File::new();
        let n = values.len() as u64;
        f.write_dataset("grp/data", Dataset::from_f64(&values, &[n])).unwrap();
        for codec in [Compression::None, Compression::Rle, Compression::ShuffleRle] {
            let back = H5File::from_bytes(&f.to_bytes(codec)).unwrap();
            prop_assert_eq!(back.dataset("grp/data").unwrap().as_f64().unwrap(), values.clone());
        }
    }

    #[test]
    fn ucry_angles_invert(theta in proptest::collection::vec(-3.1..3.1f64, 1..=4).prop_map(|v| {
        // Pad to the next power of two.
        let mut v = v;
        while !v.len().is_power_of_two() { v.push(0.0); }
        v
    })) {
        // The Walsh/Gray transform used by QCrank must be invertible:
        // applying it twice (with the right normalization) recovers the
        // input — the matrix is orthogonal up to 2^k.
        use qgear_workloads::qcrank::ucry_angles;
        let phi = ucry_angles(&theta);
        // θ_a = Σ_j (−1)^{⟨a, g(j)⟩} φ_j — invert manually.
        for (a, &t) in theta.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &p) in phi.iter().enumerate() {
                let g = qgear_workloads::qcrank::gray(j);
                let sign = if (a & g).count_ones().is_multiple_of(2) { 1.0 } else { -1.0 };
                acc += sign * p;
            }
            prop_assert!((acc - t).abs() < 1e-9);
        }
    }

    /// The sharded engine's layout bookkeeping: after *any* sequence of
    /// physical-position swaps, `physical` and `logical_at` stay mutual
    /// inverses — the invariant that lets `DistributedState` and the
    /// `TrafficPlanner` agree on where every amplitude lives.
    #[test]
    fn qubit_layout_maps_stay_mutual_inverses_under_any_swaps(
        case in (2u32..=8).prop_flat_map(|n| {
            let swap = (0..n, 0..n);
            (Just(n), proptest::collection::vec(swap, 0..48))
        })
    ) {
        use qgear_cluster::QubitLayout;
        let (n, swaps) = case;
        let lw = n / 2;
        let mut layout = QubitLayout::identity(n, lw);
        let mut applied = Vec::new();
        for (a, b) in swaps {
            layout.note_swap(a, b);
            applied.push((a, b));
            prop_assert_eq!(layout.local_width(), lw);
            // Mutual inverses after every single step, not just at the end.
            for q in 0..n {
                prop_assert_eq!(layout.logical_at(layout.physical(q)), q);
                prop_assert_eq!(layout.physical(layout.logical_at(q)), q);
            }
        }
        // `is_identity` ⇔ the permutation really is the identity.
        let identity = (0..n).all(|q| layout.physical(q) == q);
        prop_assert_eq!(layout.is_identity(), identity);
        // Undoing the swaps in reverse order restores the identity layout.
        for (a, b) in applied.into_iter().rev() {
            layout.note_swap(a, b);
        }
        prop_assert!(layout.is_identity());
        prop_assert_eq!(layout, QubitLayout::identity(n, lw));
    }

    /// A single swap of distinct positions must break identity; swapping a
    /// position with itself must not.
    #[test]
    fn qubit_layout_identity_flag_tracks_the_permutation(
        n in 2u32..=8, a in 0u32..8, b in 0u32..8,
    ) {
        use qgear_cluster::QubitLayout;
        let (a, b) = (a % n, b % n);
        let mut layout = QubitLayout::identity(n, n);
        prop_assert!(layout.is_identity());
        layout.note_swap(a, b);
        prop_assert_eq!(layout.is_identity(), a == b);
        layout.note_swap(a, b);
        prop_assert!(layout.is_identity());
    }
}

// A deterministic regression companion: the proptest strategies above
// shrink to minimal cases, but keep one fixed mixed circuit exercising
// every gate kind in a single pipeline pass.
#[test]
fn kitchen_sink_circuit_through_pipeline() {
    let mut c = Circuit::new(6);
    c.h(0)
        .x(1)
        .y(2)
        .z(3)
        .s(4)
        .sdg(5)
        .t(0)
        .tdg(1)
        .rx(0.3, 2)
        .ry(-0.8, 3)
        .rz(1.1, 4)
        .p(0.5, 5)
        .u(0.2, 0.4, 0.6, 0)
        .cx(0, 1)
        .cz(1, 2)
        .cr1(0.9, 2, 3)
        .cry(-0.7, 3, 4)
        .swap(4, 5)
        .ccx(0, 1, 2)
        .barrier()
        .measure_all();
    assert!(c.gates().iter().map(|g| g.kind).collect::<std::collections::HashSet<_>>().len() >= GateKind::ALL.len() - 1);
    let qgear = QGear::new(QGearConfig { precision: Precision::Fp64, shots: 1000, ..Default::default() });
    let result = qgear.run(&c).unwrap();
    let expect = reference::run(&c);
    assert!(approx_eq_up_to_phase(
        result.state.unwrap().amplitudes(),
        &expect,
        1e-9
    ));
    assert_eq!(result.counts.unwrap().total(), 1000);
}
