//! End-to-end differential tests for fault-tolerant sharded serving.
//!
//! The contract under test: a job whose state vector exceeds one
//! worker's device memory is admitted as `Engine::Sharded`, executed on
//! a `DistributedState`-partitioned worker group, and produces counts
//! **bitwise identical** to the same spec served dense on a big device.
//! That identity is what makes every other sharding feature safe — the
//! dense clean-mirror in the simulation harness, marginal-cache sharing
//! between engines, and checkpoint migration across group widths all
//! lean on it.
//!
//! The admission side is pinned too: without a `ShardConfig` the same
//! job bounces as `RejectedInfeasible`, and with a config whose group
//! cap is too small the rejection carries an explicit `Sharded` verdict
//! naming the cap, so clients can see sharding was considered.

use qgear_cluster::ClusterTopology;
use qgear_ir::transpile::decompose_to_native;
use qgear_ir::Circuit;
use qgear_serve::{
    Admission, BackendKind, Engine, JobSpec, ServeConfig, Service, ShardConfig, ShardRecord,
    ShardedRun,
};
use qgear_statevec::{GpuDevice, RunOptions, RunOutput, SamplingConfig, Simulator};

/// A 4-qubit circuit whose fp64 state (256 B) overflows the 192-byte
/// test worker but fits a 2-shard group (128 B per slice). Mixes
/// local-qubit and global-qubit gates so exchanges actually happen.
fn beyond_one_worker() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0)
        .cx(0, 1)
        .ry(0.3, 2)
        .cx(1, 2)
        .rz(0.7, 3)
        .cx(2, 3)
        .h(3)
        .measure_all();
    c
}

/// A 192-byte GPU worker: 2–3 qubit jobs run dense, 4 qubits must shard.
fn tiny_device() -> GpuDevice {
    let mut dev = GpuDevice::a100_40gb();
    dev.memory_bytes = 192;
    dev
}

fn sharded_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        backend: BackendKind::Gpu(tiny_device()),
        shard: Some(ShardConfig::default()),
        fusion_width: 1,
        sweep_width: 0,
        checkpoint_interval: 1,
        checkpoint_generations: 3,
        ..Default::default()
    }
}

/// The tentpole acceptance path: the tiny-device service admits the
/// beyond-one-worker job, runs it sharded (the shard log proves the
/// group actually formed and completed), and its counts are bitwise
/// identical to the same spec served dense on a 40 GB device with the
/// same fusion/sweep configuration and sampling knobs.
#[test]
fn a_sharded_job_matches_the_dense_service_bit_for_bit() {
    let spec = |c: Circuit| JobSpec::new(c).shots(300).seed(17);

    let dense = Service::start(ServeConfig {
        workers: 1,
        fusion_width: 1,
        sweep_width: 0,
        ..Default::default()
    });
    let id = dense.submit(spec(beyond_one_worker())).job_id().expect("dense admits");
    let reference = dense.wait(id).unwrap();
    let reference = reference.result().expect("dense completes");
    dense.shutdown();

    let sharded = Service::start(sharded_config());
    let id = sharded
        .submit(spec(beyond_one_worker()))
        .job_id()
        .expect("the shard planner must admit what one worker cannot hold");
    let outcome = sharded.wait(id).unwrap();
    let result = outcome.result().expect("the sharded run completes");
    sharded.shutdown();

    assert_eq!(
        result.counts, reference.counts,
        "sharded counts must be bitwise identical to the dense service"
    );
    let log = sharded.shard_log();
    assert!(
        log.iter().any(|r| matches!(r, ShardRecord::Started { job: 0, shards: 2 })),
        "a 2-shard group must have formed; log: {log:?}"
    );
    assert!(
        log.iter().any(|r| matches!(r, ShardRecord::Completed { job: 0, .. })),
        "the group must have completed; log: {log:?}"
    );
    assert!(
        result.stats.comm_bytes.iter().sum::<u128>() > 0,
        "a sharded run moves amplitude traffic: {:?}",
        result.stats.comm_bytes
    );
}

/// Admission control: the same job on the same tiny device is rejected
/// without a shard config; with a config capped below the needed group
/// width it is rejected *with a `Sharded` verdict* naming the cap. A
/// 2-qubit job stays dense-admissible either way.
#[test]
fn admission_rejects_or_explains_when_sharding_cannot_help() {
    // No shard config: the legacy rejection.
    let service = Service::start(ServeConfig {
        workers: 1,
        backend: BackendKind::Gpu(tiny_device()),
        fusion_width: 1,
        ..Default::default()
    });
    match service.submit(JobSpec::new(beyond_one_worker())) {
        Admission::RejectedInfeasible { required_bytes, device_bytes, considered } => {
            assert_eq!(required_bytes, 256);
            assert_eq!(device_bytes, 192);
            assert!(
                !considered.iter().any(|v| v.engine == Engine::Sharded),
                "no shard config ⇒ sharding is never considered: {considered:?}"
            );
        }
        other => panic!("expected RejectedInfeasible, got {other:?}"),
    }
    // A small job still fits dense.
    let mut bell = Circuit::new(2);
    bell.h(0).cx(0, 1).measure_all();
    let id = service.submit(JobSpec::new(bell).shots(50)).job_id().expect("2 qubits fit dense");
    assert!(service.wait(id).unwrap().is_completed());
    service.shutdown();

    // Shard config present but the group cap is below the 2 shards the
    // job needs: rejected, and the verdict list says sharding was
    // priced and why it lost.
    let capped = Service::start(ServeConfig {
        shard: Some(ShardConfig { max_shards: 1, ..ShardConfig::default() }),
        ..sharded_config()
    });
    match capped.submit(JobSpec::new(beyond_one_worker())) {
        Admission::RejectedInfeasible { considered, .. } => {
            let verdict = considered
                .iter()
                .find(|v| v.engine == Engine::Sharded)
                .expect("sharding must appear among the considered engines");
            assert!(!verdict.feasible);
            assert!(
                verdict.reason.contains("1-worker cap"),
                "the verdict names the cap: {verdict:?}"
            );
        }
        other => panic!("expected RejectedInfeasible with a shard verdict, got {other:?}"),
    }
    capped.shutdown();
}

/// The engine-level identity underneath the service path: evolving the
/// schedule through `ShardedRun` (2 and 4 shards) gathers amplitudes
/// bitwise equal to straight dense execution of the same fused
/// schedule — not approximately, *exactly*, which is what licenses the
/// harness's dense clean-hash mirror for sharded jobs.
#[test]
fn sharded_evolution_gathers_bitwise_dense_amplitudes() {
    let circuit = beyond_one_worker();
    let (native, _) = decompose_to_native(&circuit);
    for fusion_width in [1usize, 2, 3] {
        let opts = RunOptions {
            shots: 0,
            fusion_width,
            sweep_width: 0,
            keep_state: true,
            ..Default::default()
        };
        let dense: RunOutput<f64> = GpuDevice::a100_40gb().run(&native, &opts).unwrap();
        let dense = dense.state.expect("state kept");
        for shards in [2u32, 4] {
            // The planner's admissibility rule: every shard's local
            // slice must hold the widest fused block (and ≥ 2 qubits).
            if (4 - shards.trailing_zeros()) < fusion_width.max(2) as u32 {
                continue;
            }
            let mut run = ShardedRun::<f64>::new(
                &native,
                shards,
                ClusterTopology::default(),
                fusion_width,
                SamplingConfig::single(0, 0),
            );
            while !run.is_done() {
                run.advance(1).expect("no faults armed");
            }
            let gathered = run.state();
            assert_eq!(
                gathered.amplitudes(),
                dense.amplitudes(),
                "gather() must be bit-identical to dense (fusion {fusion_width}, \
                 {shards} shards)"
            );
            assert_eq!(run.messages(), 2 * run.exchanges(), "pairwise message conservation");
        }
    }
}
