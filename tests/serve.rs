//! Integration and property tests for the `qgear-serve` runtime.
//!
//! The property tests pin the scheduler's contract under arbitrary
//! push/pop interleavings and arbitrary circuits:
//! * no admitted job is ever lost or dispatched twice;
//! * dispatch order is FIFO within one tenant's priority class;
//! * a cache hit replays the cold run's counts bit-for-bit.
//!
//! The telemetry test drives a real multi-worker service and checks the
//! exported schema-v1 snapshot carries the serving counters, the
//! queue-depth histogram, and one `serve_job` span per dispatched job.

use proptest::prelude::*;
use qgear_ir::Circuit;
use qgear_serve::{
    Admission, AdmissionQueue, BatchConfig, BatchMemberDisposition, BatchRecord, CircuitKey,
    Engine, JobId, JobOutcome, JobSpec, Priority, QueuedJob, ServeConfig, Service,
};
use qgear_statevec::Counts;
use qgear_telemetry::names;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

fn tenant_name(t: u8) -> &'static str {
    ["alice", "bob", "carol"][t as usize % 3]
}

fn priority_of(p: u8) -> Priority {
    Priority::ALL[p as usize % 3]
}

fn queued(id: u64, tenant: u8, priority: u8) -> QueuedJob {
    let circuit = Circuit::new(1);
    let shape = qgear_ir::shape_digest(&circuit);
    QueuedJob {
        id: JobId(id),
        spec: JobSpec::new(circuit.clone())
            .tenant(tenant_name(tenant))
            .priority(priority_of(priority)),
        canonical: circuit,
        key: CircuitKey(id),
        state_key: CircuitKey(id ^ u64::MAX),
        submitted_at: Duration::ZERO,
        seq: 0,
        attempts_made: 0,
        engine: Engine::Dense,
        shape,
    }
}

proptest! {
    /// Under any interleaving of pushes and pops, the queue conserves
    /// jobs: every accepted push is dispatched exactly once, and within
    /// one (tenant, priority) bucket dispatch order equals admission
    /// order.
    #[test]
    fn queue_conserves_jobs_and_keeps_bucket_fifo(
        events in proptest::collection::vec((any::<bool>(), 0u8..3, 0u8..3), 1..150)
    ) {
        let mut queue = AdmissionQueue::new(64);
        let mut next_id = 0u64;
        let mut accepted = HashSet::new();
        let mut dispatched: Vec<QueuedJob> = Vec::new();
        for (is_push, tenant, priority) in events {
            if is_push {
                let job = queued(next_id, tenant, priority);
                if queue.push(job).is_ok() {
                    accepted.insert(next_id);
                }
                next_id += 1;
            } else if let Some(job) = queue.pop_next() {
                dispatched.push(job);
            }
        }
        while let Some(job) = queue.pop_next() {
            dispatched.push(job);
        }
        prop_assert!(queue.is_empty());

        // Conservation: dispatched ids == accepted ids, no duplicates.
        let mut seen = HashSet::new();
        for job in &dispatched {
            prop_assert!(seen.insert(job.id.0), "job {} dispatched twice", job.id.0);
        }
        prop_assert_eq!(&seen, &accepted);

        // FIFO within each (tenant, priority) bucket, by admission seq.
        let mut last_seq: HashMap<(String, usize), u64> = HashMap::new();
        for job in &dispatched {
            let bucket = (job.spec.tenant.clone(), job.spec.priority.index());
            if let Some(&prev) = last_seq.get(&bucket) {
                prop_assert!(
                    job.seq > prev,
                    "bucket {:?} reordered: seq {} after {}",
                    bucket, job.seq, prev
                );
            }
            last_seq.insert(bucket, job.seq);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Resubmitting an identical spec (same circuit, shots, seed,
    /// precision) after the cold run completes hits the cache and
    /// replays the exact same counts.
    #[test]
    fn cache_hit_is_bitwise_identical_to_cold_run(
        n in 2u32..5,
        gates in proptest::collection::vec((0u8..4, 0u32..4, 1u32..4, -3.1..3.1f64), 1..16),
        shots in 64u64..512,
        seed in any::<u64>(),
    ) {
        let mut circuit = Circuit::new(n);
        for (kind, a, boff, theta) in gates {
            let a = a % n;
            let b = (a + 1 + boff % (n - 1)) % n;
            match kind {
                0 => { circuit.h(a); }
                1 => { circuit.ry(theta, a); }
                2 => { circuit.cx(a, b); }
                _ => { circuit.rz(theta, a); }
            }
        }
        circuit.measure_all();

        let service = Service::start(ServeConfig { workers: 1, ..Default::default() });
        let spec = JobSpec::new(circuit).shots(shots).seed(seed);
        let cold_id = service.submit(spec.clone()).job_id().expect("cold accepted");
        let cold = service.wait(cold_id).unwrap();
        let warm_id = service.submit(spec).job_id().expect("warm accepted");
        let warm = service.wait(warm_id).unwrap();
        service.shutdown();

        let cold = cold.result().expect("cold completes");
        let warm = warm.result().expect("warm completes");
        prop_assert!(!cold.from_cache);
        prop_assert!(warm.from_cache, "second identical spec must hit the cache");
        prop_assert_eq!(&cold.counts, &warm.counts);
        prop_assert_eq!(cold.counts.as_ref().unwrap().total(), shots);
    }
}

/// A concurrent multi-tenant burst across 4 workers: every accepted job
/// reaches exactly one terminal outcome and the dispatch log shows no
/// duplicates — the service-level statement of the queue property.
#[test]
fn concurrent_burst_loses_and_duplicates_nothing() {
    let service = Service::start(ServeConfig { workers: 4, queue_capacity: 128, ..Default::default() });
    let mut ids = Vec::new();
    for i in 0..60u64 {
        let mut c = Circuit::new(3 + (i % 3) as u32);
        c.h(0).cx(0, 1).ry(0.1 * i as f64, 2).measure_all();
        let spec = JobSpec::new(c)
            .shots(200)
            .seed(i)
            .tenant(tenant_name((i % 3) as u8))
            .priority(priority_of((i % 3) as u8));
        match service.submit(spec) {
            Admission::Accepted(id) => ids.push(id),
            other => panic!("burst of 60 under capacity 128 rejected: {other:?}"),
        }
    }
    for &id in &ids {
        let outcome = service.wait(id).expect("every accepted id resolves");
        assert!(
            outcome.is_completed(),
            "job {id:?} ended {outcome:?} with no faults injected"
        );
    }
    let log = service.dispatch_log();
    let unique: HashSet<u64> = log.iter().map(|r| r.id.0).collect();
    assert_eq!(unique.len(), log.len(), "duplicate dispatch");
    assert_eq!(unique.len(), ids.len(), "dispatch log must cover every job");
    service.shutdown();
}

/// End-to-end telemetry: counters, queue-depth histogram, per-tenant
/// counters, and `serve_job` spans all land in the schema-v1 snapshot.
#[test]
fn telemetry_snapshot_carries_the_serving_signals() {
    qgear_telemetry::reset();
    qgear_telemetry::enable();

    let service = Service::start(ServeConfig { workers: 4, ..Default::default() });
    let mut bell = Circuit::new(2);
    bell.h(0).cx(0, 1).measure_all();
    let ids: Vec<JobId> = (0..12u64)
        .map(|i| {
            service
                .submit(
                    JobSpec::new(bell.clone())
                        .shots(100)
                        // Two distinct seeds → 2 cold runs, 10 cache hits
                        // once the cold results land (workers may race the
                        // first submissions, so hits are a lower bound).
                        .seed(i % 2)
                        .tenant("telemetry-tenant"),
                )
                .job_id()
                .expect("accepted")
        })
        .collect();
    for id in &ids {
        assert!(matches!(service.wait(*id), Some(JobOutcome::Completed(_))));
    }
    service.shutdown();

    let snapshot = qgear_telemetry::snapshot();
    qgear_telemetry::disable();

    // Counters (>= because other tests may run concurrently with
    // telemetry enabled; the tenant-scoped counters are exact).
    assert!(snapshot.counter(names::SERVE_JOBS_SUBMITTED) >= 12);
    assert!(snapshot.counter(names::SERVE_JOBS_COMPLETED) >= 12);
    assert_eq!(snapshot.counter(&names::serve_tenant_jobs("telemetry-tenant")), 12);
    assert_eq!(snapshot.counter(&names::serve_tenant_shots("telemetry-tenant")), 1200);
    assert!(snapshot.counter(names::SERVE_CACHE_MISSES) >= 2);
    assert!(
        snapshot.counter(names::SERVE_CACHE_HITS) >= 6,
        "repeat submissions should mostly hit the cache"
    );

    // Histograms.
    let depth = snapshot
        .histograms
        .get(names::SERVE_QUEUE_DEPTH)
        .expect("queue-depth histogram recorded");
    assert!(depth.count >= 24, "sampled at every submit and dispatch");
    let latency = snapshot
        .histograms
        .get(names::SERVE_LATENCY_MS)
        .expect("latency histogram recorded");
    assert!(latency.count >= 12);

    // One serve_job span per dispatched job, usable for percentiles.
    let serve_spans = snapshot
        .spans
        .iter()
        .filter(|s| s.name == names::spans::SERVE_JOB)
        .count();
    assert!(serve_spans >= 12, "got {serve_spans} serve_job spans");

    // The snapshot round-trips through the schema-v1 JSON document.
    let value = snapshot.to_value("serve-integration");
    let (label, decoded) =
        qgear_telemetry::TelemetrySnapshot::from_value(&value).expect("schema v1 roundtrip");
    assert_eq!(label, "serve-integration");
    assert_eq!(
        decoded.counter(&names::serve_tenant_jobs("telemetry-tenant")),
        12
    );
}

/// Deadlines, cancellation, and infeasibility all surface as explicit
/// outcomes through the public API.
#[test]
fn control_plane_outcomes_are_explicit() {
    let service = Service::start(ServeConfig { workers: 1, ..Default::default() });

    // Infeasible: a 40-qubit fp64 state needs 17.6 TB, not 40 GB.
    match service.submit(JobSpec::new(Circuit::new(40))) {
        Admission::RejectedInfeasible { required_bytes, device_bytes, considered } => {
            assert!(required_bytes > device_bytes);
            assert!(
                considered.iter().all(|v| !v.feasible),
                "every considered backend must carry an infeasibility reason: {considered:?}"
            );
        }
        other => panic!("expected RejectedInfeasible, got {other:?}"),
    }

    // Expired: a zero deadline can never be met.
    let mut c = Circuit::new(2);
    c.h(0).measure_all();
    let id = service
        .submit(JobSpec::new(c.clone()).deadline(std::time::Duration::ZERO))
        .job_id()
        .unwrap();
    assert!(matches!(service.wait(id), Some(JobOutcome::Expired)));

    service.shutdown();

    // Shutting down: no new admissions.
    assert!(matches!(
        service.submit(JobSpec::new(c)),
        Admission::ShuttingDown
    ));
}

// ---------------------------------------------------------------------------
// Batch-invariance tier: batching is invisible in results.
//
// A member's counts must be bit-identical to a solo dispatch of the same
// spec regardless of which batch it landed in, batch size, member order,
// and worker thread count. The tests below run the same job set through
// a solo reference service and through batched services with varied
// coalescing caps, submission orders and worker pools, then compare
// per-member counts exactly and check the batch log conserves jobs.
// ---------------------------------------------------------------------------

/// The shared sweep ansatz, parameterised per job: same shape digest for
/// every `(qubits, layers)` pair, distinct angles.
fn ladder(qubits: u32, layers: u32, phase: f64) -> Circuit {
    let mut c = Circuit::new(qubits);
    for l in 0..layers {
        for q in 0..qubits {
            c.h(q).ry(phase + 0.31 * f64::from(l) + 0.07 * f64::from(q), q);
        }
        for q in 0..qubits - 1 {
            c.cx(q, q + 1);
        }
    }
    c.measure_all();
    c
}

/// A structurally different non-Clifford family (stays on the Dense
/// engine) so mixed queues hold more than one shape.
fn twister(qubits: u32, phase: f64) -> Circuit {
    let mut c = Circuit::new(qubits);
    for q in 0..qubits {
        c.ry(phase + 0.13 * f64::from(q), q);
    }
    for q in 0..qubits {
        c.cx(q, (q + 1) % qubits);
    }
    for q in 0..qubits {
        c.rz(0.5 * phase + 0.11 * f64::from(q), q);
    }
    c.measure_all();
    c
}

/// Submit `specs` in `order`, wait for every job, return counts indexed
/// by the job's position in `specs` plus the complete batch log (read
/// after shutdown, which joins the workers, so the final record —
/// appended after its members' outcomes publish — is always present).
fn run_jobs(
    specs: &[JobSpec],
    order: &[usize],
    workers: usize,
    batch: BatchConfig,
) -> (Vec<Counts>, Vec<BatchRecord>) {
    let service = Service::start(ServeConfig {
        workers,
        queue_capacity: specs.len() + 8,
        // Caches off so every member actually executes; cache hits have
        // their own invariance coverage in the tier above.
        cache_capacity: 0,
        state_cache_capacity: 0,
        batch,
        ..Default::default()
    });
    let mut ids: Vec<Option<JobId>> = vec![None; specs.len()];
    for &i in order {
        ids[i] = Some(
            service
                .submit(specs[i].clone())
                .job_id()
                .expect("invariance jobs are admissible"),
        );
    }
    let mut counts = Vec::with_capacity(specs.len());
    for (i, id) in ids.iter().enumerate() {
        match service.wait(id.expect("every spec submitted")) {
            Some(JobOutcome::Completed(r)) => {
                counts.push(r.counts.expect("measured circuit yields counts"));
            }
            other => panic!("job {i} did not complete: {other:?}"),
        }
    }
    service.shutdown();
    let log = service.batch_log();
    (counts, log)
}

/// The batch log must account for every submitted job exactly once, and
/// (fault-free, caches off) every member must have actually run.
fn assert_log_conserves(log: &[BatchRecord], jobs: usize) {
    let mut seen = HashSet::new();
    for record in log {
        assert!(!record.members.is_empty(), "empty batch record flushed");
        assert!(record.flushed_at >= record.formed_at);
        for &(id, disposition) in &record.members {
            assert!(seen.insert(id), "job {id} appears in two batch records");
            assert!(
                matches!(
                    disposition,
                    BatchMemberDisposition::Executed | BatchMemberDisposition::SoloFallback
                ),
                "fault-free cache-free member resolved {disposition:?}"
            );
        }
    }
    assert_eq!(seen.len(), jobs, "batch log must cover every job exactly once");
}

/// Deterministic Fisher–Yates permutation of `0..n` (no external RNG in
/// the shim workspace; an LCG is plenty for order scrambling).
fn permuted(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = ((s >> 33) as usize) % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Fixed-workload statement of the invariance contract: one mixed-shape
/// job set, one solo reference, four batched configurations spanning
/// batch size, member order and worker count. Every configuration must
/// reproduce the reference counts bit-for-bit.
#[test]
fn member_counts_are_invariant_to_batch_size_order_and_worker_count() {
    let jobs = 12usize;
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| {
            let circuit = if i % 2 == 0 {
                ladder(4, 2, 0.11 * i as f64)
            } else {
                twister(3, 0.29 * i as f64)
            };
            JobSpec::new(circuit)
                .shots(192)
                .seed(0x17A5 + i as u64)
                .tenant(tenant_name((i % 3) as u8))
        })
        .collect();

    let forward: Vec<usize> = (0..jobs).collect();
    let reversed: Vec<usize> = (0..jobs).rev().collect();
    let evens_then_odds: Vec<usize> =
        (0..jobs).step_by(2).chain((1..jobs).step_by(2)).collect();

    let (reference, solo_log) = run_jobs(&specs, &forward, 1, BatchConfig::disabled());
    assert!(solo_log.is_empty(), "disabled batching must not log batches");

    let window = Duration::from_millis(5);
    let variants: [(&str, &[usize], usize, usize); 4] = [
        ("1 worker, cap 4", &forward, 1, 4),
        ("4 workers, cap 8", &forward, 4, 8),
        ("2 workers, cap 3, reversed order", &reversed, 2, 3),
        ("3 workers, cap 12, shapes segregated", &evens_then_odds, 3, 12),
    ];
    let mut coalesced_anywhere = false;
    for (label, order, workers, max_size) in variants {
        let (counts, log) =
            run_jobs(&specs, order, workers, BatchConfig { max_size, window });
        for (i, (got, want)) in counts.iter().zip(&reference).enumerate() {
            assert_eq!(got, want, "{label}: job {i} counts differ from solo reference");
        }
        assert_log_conserves(&log, jobs);
        coalesced_anywhere |= log.iter().any(|r| r.members.len() >= 2);
    }
    assert!(
        coalesced_anywhere,
        "at least one configuration must have formed a multi-member batch"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Property form over random shape mixes (case count scales with
    /// `QGEAR_PROPTEST_CASES`): arbitrary interleavings of three shape
    /// families with random angles, shots, seeds, submission order,
    /// worker count and coalescing cap all reproduce the solo reference
    /// counts bit-for-bit, and the batch log conserves jobs.
    #[test]
    fn batched_counts_match_solo_for_random_shape_mixes(
        mix in proptest::collection::vec(
            (0u8..3, 0.0..std::f64::consts::TAU, 6u32..9, any::<u64>()),
            3..10,
        ),
        workers in 1usize..5,
        max_size in 2usize..7,
        shuffle in any::<u64>(),
    ) {
        let specs: Vec<JobSpec> = mix
            .iter()
            .enumerate()
            .map(|(i, &(family, phase, shots_pow, seed))| {
                let circuit = match family {
                    0 => ladder(3, 2, phase),
                    1 => ladder(4, 1, phase),
                    _ => twister(3, phase),
                };
                JobSpec::new(circuit)
                    .shots(1 << shots_pow)
                    .seed(seed)
                    .tenant(tenant_name((i % 3) as u8))
            })
            .collect();

        let forward: Vec<usize> = (0..specs.len()).collect();
        let (reference, _) = run_jobs(&specs, &forward, 1, BatchConfig::disabled());

        let order = permuted(specs.len(), shuffle);
        let (counts, log) = run_jobs(
            &specs,
            &order,
            workers,
            BatchConfig { max_size, window: Duration::from_micros(500) },
        );
        for (i, (got, want)) in counts.iter().zip(&reference).enumerate() {
            prop_assert_eq!(got, want, "job {} counts differ from solo reference", i);
        }
        assert_log_conserves(&log, specs.len());
    }
}
