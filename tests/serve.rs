//! Integration and property tests for the `qgear-serve` runtime.
//!
//! The property tests pin the scheduler's contract under arbitrary
//! push/pop interleavings and arbitrary circuits:
//! * no admitted job is ever lost or dispatched twice;
//! * dispatch order is FIFO within one tenant's priority class;
//! * a cache hit replays the cold run's counts bit-for-bit.
//!
//! The telemetry test drives a real multi-worker service and checks the
//! exported schema-v1 snapshot carries the serving counters, the
//! queue-depth histogram, and one `serve_job` span per dispatched job.

use proptest::prelude::*;
use qgear_ir::Circuit;
use qgear_serve::{
    Admission, AdmissionQueue, CircuitKey, Engine, JobId, JobOutcome, JobSpec, Priority,
    QueuedJob, ServeConfig, Service,
};
use qgear_telemetry::names;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

fn tenant_name(t: u8) -> &'static str {
    ["alice", "bob", "carol"][t as usize % 3]
}

fn priority_of(p: u8) -> Priority {
    Priority::ALL[p as usize % 3]
}

fn queued(id: u64, tenant: u8, priority: u8) -> QueuedJob {
    let circuit = Circuit::new(1);
    QueuedJob {
        id: JobId(id),
        spec: JobSpec::new(circuit.clone())
            .tenant(tenant_name(tenant))
            .priority(priority_of(priority)),
        canonical: circuit,
        key: CircuitKey(id),
        state_key: CircuitKey(id ^ u64::MAX),
        submitted_at: Duration::ZERO,
        seq: 0,
        attempts_made: 0,
        engine: Engine::Dense,
    }
}

proptest! {
    /// Under any interleaving of pushes and pops, the queue conserves
    /// jobs: every accepted push is dispatched exactly once, and within
    /// one (tenant, priority) bucket dispatch order equals admission
    /// order.
    #[test]
    fn queue_conserves_jobs_and_keeps_bucket_fifo(
        events in proptest::collection::vec((any::<bool>(), 0u8..3, 0u8..3), 1..150)
    ) {
        let mut queue = AdmissionQueue::new(64);
        let mut next_id = 0u64;
        let mut accepted = HashSet::new();
        let mut dispatched: Vec<QueuedJob> = Vec::new();
        for (is_push, tenant, priority) in events {
            if is_push {
                let job = queued(next_id, tenant, priority);
                if queue.push(job).is_ok() {
                    accepted.insert(next_id);
                }
                next_id += 1;
            } else if let Some(job) = queue.pop_next() {
                dispatched.push(job);
            }
        }
        while let Some(job) = queue.pop_next() {
            dispatched.push(job);
        }
        prop_assert!(queue.is_empty());

        // Conservation: dispatched ids == accepted ids, no duplicates.
        let mut seen = HashSet::new();
        for job in &dispatched {
            prop_assert!(seen.insert(job.id.0), "job {} dispatched twice", job.id.0);
        }
        prop_assert_eq!(&seen, &accepted);

        // FIFO within each (tenant, priority) bucket, by admission seq.
        let mut last_seq: HashMap<(String, usize), u64> = HashMap::new();
        for job in &dispatched {
            let bucket = (job.spec.tenant.clone(), job.spec.priority.index());
            if let Some(&prev) = last_seq.get(&bucket) {
                prop_assert!(
                    job.seq > prev,
                    "bucket {:?} reordered: seq {} after {}",
                    bucket, job.seq, prev
                );
            }
            last_seq.insert(bucket, job.seq);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Resubmitting an identical spec (same circuit, shots, seed,
    /// precision) after the cold run completes hits the cache and
    /// replays the exact same counts.
    #[test]
    fn cache_hit_is_bitwise_identical_to_cold_run(
        n in 2u32..5,
        gates in proptest::collection::vec((0u8..4, 0u32..4, 1u32..4, -3.1..3.1f64), 1..16),
        shots in 64u64..512,
        seed in any::<u64>(),
    ) {
        let mut circuit = Circuit::new(n);
        for (kind, a, boff, theta) in gates {
            let a = a % n;
            let b = (a + 1 + boff % (n - 1)) % n;
            match kind {
                0 => { circuit.h(a); }
                1 => { circuit.ry(theta, a); }
                2 => { circuit.cx(a, b); }
                _ => { circuit.rz(theta, a); }
            }
        }
        circuit.measure_all();

        let service = Service::start(ServeConfig { workers: 1, ..Default::default() });
        let spec = JobSpec::new(circuit).shots(shots).seed(seed);
        let cold_id = service.submit(spec.clone()).job_id().expect("cold accepted");
        let cold = service.wait(cold_id).unwrap();
        let warm_id = service.submit(spec).job_id().expect("warm accepted");
        let warm = service.wait(warm_id).unwrap();
        service.shutdown();

        let cold = cold.result().expect("cold completes");
        let warm = warm.result().expect("warm completes");
        prop_assert!(!cold.from_cache);
        prop_assert!(warm.from_cache, "second identical spec must hit the cache");
        prop_assert_eq!(&cold.counts, &warm.counts);
        prop_assert_eq!(cold.counts.as_ref().unwrap().total(), shots);
    }
}

/// A concurrent multi-tenant burst across 4 workers: every accepted job
/// reaches exactly one terminal outcome and the dispatch log shows no
/// duplicates — the service-level statement of the queue property.
#[test]
fn concurrent_burst_loses_and_duplicates_nothing() {
    let service = Service::start(ServeConfig { workers: 4, queue_capacity: 128, ..Default::default() });
    let mut ids = Vec::new();
    for i in 0..60u64 {
        let mut c = Circuit::new(3 + (i % 3) as u32);
        c.h(0).cx(0, 1).ry(0.1 * i as f64, 2).measure_all();
        let spec = JobSpec::new(c)
            .shots(200)
            .seed(i)
            .tenant(tenant_name((i % 3) as u8))
            .priority(priority_of((i % 3) as u8));
        match service.submit(spec) {
            Admission::Accepted(id) => ids.push(id),
            other => panic!("burst of 60 under capacity 128 rejected: {other:?}"),
        }
    }
    for &id in &ids {
        let outcome = service.wait(id).expect("every accepted id resolves");
        assert!(
            outcome.is_completed(),
            "job {id:?} ended {outcome:?} with no faults injected"
        );
    }
    let log = service.dispatch_log();
    let unique: HashSet<u64> = log.iter().map(|r| r.id.0).collect();
    assert_eq!(unique.len(), log.len(), "duplicate dispatch");
    assert_eq!(unique.len(), ids.len(), "dispatch log must cover every job");
    service.shutdown();
}

/// End-to-end telemetry: counters, queue-depth histogram, per-tenant
/// counters, and `serve_job` spans all land in the schema-v1 snapshot.
#[test]
fn telemetry_snapshot_carries_the_serving_signals() {
    qgear_telemetry::reset();
    qgear_telemetry::enable();

    let service = Service::start(ServeConfig { workers: 4, ..Default::default() });
    let mut bell = Circuit::new(2);
    bell.h(0).cx(0, 1).measure_all();
    let ids: Vec<JobId> = (0..12u64)
        .map(|i| {
            service
                .submit(
                    JobSpec::new(bell.clone())
                        .shots(100)
                        // Two distinct seeds → 2 cold runs, 10 cache hits
                        // once the cold results land (workers may race the
                        // first submissions, so hits are a lower bound).
                        .seed(i % 2)
                        .tenant("telemetry-tenant"),
                )
                .job_id()
                .expect("accepted")
        })
        .collect();
    for id in &ids {
        assert!(matches!(service.wait(*id), Some(JobOutcome::Completed(_))));
    }
    service.shutdown();

    let snapshot = qgear_telemetry::snapshot();
    qgear_telemetry::disable();

    // Counters (>= because other tests may run concurrently with
    // telemetry enabled; the tenant-scoped counters are exact).
    assert!(snapshot.counter(names::SERVE_JOBS_SUBMITTED) >= 12);
    assert!(snapshot.counter(names::SERVE_JOBS_COMPLETED) >= 12);
    assert_eq!(snapshot.counter(&names::serve_tenant_jobs("telemetry-tenant")), 12);
    assert_eq!(snapshot.counter(&names::serve_tenant_shots("telemetry-tenant")), 1200);
    assert!(snapshot.counter(names::SERVE_CACHE_MISSES) >= 2);
    assert!(
        snapshot.counter(names::SERVE_CACHE_HITS) >= 6,
        "repeat submissions should mostly hit the cache"
    );

    // Histograms.
    let depth = snapshot
        .histograms
        .get(names::SERVE_QUEUE_DEPTH)
        .expect("queue-depth histogram recorded");
    assert!(depth.count >= 24, "sampled at every submit and dispatch");
    let latency = snapshot
        .histograms
        .get(names::SERVE_LATENCY_MS)
        .expect("latency histogram recorded");
    assert!(latency.count >= 12);

    // One serve_job span per dispatched job, usable for percentiles.
    let serve_spans = snapshot
        .spans
        .iter()
        .filter(|s| s.name == names::spans::SERVE_JOB)
        .count();
    assert!(serve_spans >= 12, "got {serve_spans} serve_job spans");

    // The snapshot round-trips through the schema-v1 JSON document.
    let value = snapshot.to_value("serve-integration");
    let (label, decoded) =
        qgear_telemetry::TelemetrySnapshot::from_value(&value).expect("schema v1 roundtrip");
    assert_eq!(label, "serve-integration");
    assert_eq!(
        decoded.counter(&names::serve_tenant_jobs("telemetry-tenant")),
        12
    );
}

/// Deadlines, cancellation, and infeasibility all surface as explicit
/// outcomes through the public API.
#[test]
fn control_plane_outcomes_are_explicit() {
    let service = Service::start(ServeConfig { workers: 1, ..Default::default() });

    // Infeasible: a 40-qubit fp64 state needs 17.6 TB, not 40 GB.
    match service.submit(JobSpec::new(Circuit::new(40))) {
        Admission::RejectedInfeasible { required_bytes, device_bytes, considered } => {
            assert!(required_bytes > device_bytes);
            assert!(
                considered.iter().all(|v| !v.feasible),
                "every considered backend must carry an infeasibility reason: {considered:?}"
            );
        }
        other => panic!("expected RejectedInfeasible, got {other:?}"),
    }

    // Expired: a zero deadline can never be met.
    let mut c = Circuit::new(2);
    c.h(0).measure_all();
    let id = service
        .submit(JobSpec::new(c.clone()).deadline(std::time::Duration::ZERO))
        .job_id()
        .unwrap();
    assert!(matches!(service.wait(id), Some(JobOutcome::Expired)));

    service.shutdown();

    // Shutting down: no new admissions.
    assert!(matches!(
        service.submit(JobSpec::new(c)),
        Admission::ShuttingDown
    ));
}
