//! Cross-engine differential and property tests for the stabilizer and
//! noise-trajectory backends (docs/BACKENDS.md).
//!
//! Three layers:
//!
//! * **Differential** — every Clifford workload small enough for the
//!   dense engine runs on both engines with the same `(shots, seed)`;
//!   both sample through the shared multinomial path, so histograms
//!   must agree *bit for bit*, not just statistically. Noise-trajectory
//!   fans are checked against closed-form channel statistics at ±2%.
//! * **Property** — proptest drives random Clifford words onto the raw
//!   tableau: algebraic identities (`H² = 1`, `S⁴ = 1`, `CX² = 1`),
//!   the stabilizer/destabilizer anticommutation invariant, and
//!   measurement idempotence.
//! * **End-to-end** — the serving runtime under a virtual clock admits
//!   a 100-qubit Clifford job (infeasible dense), routes it to the
//!   stabilizer engine, and completes it; infeasible jobs report a
//!   verdict for every backend admission considered.

use proptest::prelude::*;
use qgear_ir::{classify, Circuit};
use qgear_perfmodel::memory;
use qgear_serve::{Admission, JobOutcome, JobSpec, SelectionPolicy, ServeConfig, Service};
use qgear_simtest::VirtualClock;
use qgear_stabilizer::{StabilizerBackend, Tableau};
use qgear_statevec::{
    AerCpuBackend, Counts, NoiseChannel, NoiseModel, RunOptions, RunOutput, SimError, Simulator,
    TrajectoryBackend,
};
use qgear_workloads::clifford::{ghz, random_clifford, teleportation};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Differential: stabilizer vs dense on small Clifford circuits
// ---------------------------------------------------------------------

fn counts_on<S: Simulator<f64>>(engine: &S, c: &Circuit, shots: u64, seed: u64) -> Counts {
    let opts = RunOptions { shots, seed, ..Default::default() };
    let out: RunOutput<f64> = engine.run(c, &opts).expect("engine runs the circuit");
    out.counts.expect("measured circuit yields counts")
}

/// Run `c` on both engines with identical sampling knobs and insist the
/// sampled *distributions* agree: identical measured sets, identical
/// outcome supports, and every key within 6σ of the uniform-on-support
/// law a stabilizer state's marginal obeys. Bit-exact histogram equality
/// is deliberately not demanded — Clifford marginals are *exactly*
/// equiprobable over their support, and the conditional-binomial
/// sampler's allocation among equal-probability keys is sensitive to
/// the float dust the dense marginal carries and the tableau does not.
fn assert_engines_agree(c: &Circuit, shots: u64, seed: u64) {
    let dense = counts_on(&AerCpuBackend, c, shots, seed);
    let stab = counts_on(&StabilizerBackend::default(), c, shots, seed);
    assert_eq!(dense.qubits, stab.qubits, "{}: measured sets differ", c.name);
    assert_eq!(dense.total(), shots, "{}: dense lost shots", c.name);
    assert_eq!(stab.total(), shots, "{}: stabilizer lost shots", c.name);
    let support: std::collections::BTreeSet<u64> = dense.map.keys().copied().collect();
    let stab_support: std::collections::BTreeSet<u64> = stab.map.keys().copied().collect();
    assert_eq!(support, stab_support, "{}: outcome supports diverge", c.name);
    // A stabilizer state's measurement marginal is uniform over an
    // affine subspace: P(key) = 1/m on the support, for both engines.
    let m = support.len() as f64;
    let p = 1.0 / m;
    let expected = shots as f64 * p;
    let tol = 6.0 * (shots as f64 * p * (1.0 - p)).sqrt() + 1.0;
    for &key in &support {
        for (engine, counts) in [("dense", &dense), ("stabilizer", &stab)] {
            let got = counts.get(key) as f64;
            assert!(
                (got - expected).abs() <= tol,
                "{}: {engine} key {key:#x} drew {got}, expected {expected} ± {tol}",
                c.name
            );
        }
    }
}

#[test]
fn stabilizer_matches_dense_on_ghz_at_every_small_width() {
    for n in 2..=10u32 {
        assert_engines_agree(&ghz(n, n), 2000, 0xD1FF + u64::from(n));
    }
}

#[test]
fn stabilizer_matches_dense_on_teleportation() {
    let c = teleportation();
    assert_engines_agree(&c, 1000, 3);
    // Teleporting |0⟩ must always land 0 on the receiver.
    let counts = counts_on(&StabilizerBackend::default(), &c, 1000, 3);
    assert_eq!(counts.get(0), 1000, "teleported |0> read as 1");
}

#[test]
fn stabilizer_matches_dense_on_seeded_random_cliffords() {
    for seed in 0..8u64 {
        // Widths 2..=6: support ≤ 64 keys, so at 4000 shots every
        // support key is overwhelmingly likely to be drawn by both
        // engines (and the fixed seeds make the check reproducible).
        let n = 2 + (seed % 5) as u32;
        let c = random_clifford(n, 12, 0xC11F_0000 + seed);
        assert_engines_agree(&c, 4000, 0x5EED + seed);
    }
}

// ---------------------------------------------------------------------
// Differential: trajectory statistics vs closed-form channel rates
// ---------------------------------------------------------------------

fn flip_circuit() -> Circuit {
    let mut c = Circuit::new(1);
    c.x(0).measure(0);
    c
}

#[test]
fn trajectory_bit_flip_rate_matches_channel_within_two_percent() {
    // One X gate, one bit-flip channel draw: P(read 0) = p exactly.
    let p = 0.1;
    let model = NoiseModel::single(NoiseChannel::BitFlip { p });
    let backend = TrajectoryBackend::new(AerCpuBackend, model, 4000);
    let counts = counts_on(&backend, &flip_circuit(), 4000, 11);
    let observed = counts.probability(0);
    assert!((observed - p).abs() < 0.02, "bit-flip rate {observed} vs analytic {p}");
}

#[test]
fn trajectory_depolarizing_rate_matches_channel_within_two_percent() {
    // Depolarizing p: X or Y flips the readout (2p/3), Z leaves it.
    let p = 0.3;
    let model = NoiseModel::single(NoiseChannel::Depolarizing { p });
    let backend = TrajectoryBackend::new(AerCpuBackend, model, 4000);
    let counts = counts_on(&backend, &flip_circuit(), 4000, 13);
    let analytic = 2.0 * p / 3.0;
    let observed = counts.probability(0);
    assert!(
        (observed - analytic).abs() < 0.02,
        "depolarizing flip rate {observed} vs analytic {analytic}"
    );
}

#[test]
fn trajectory_phase_flip_is_invisible_in_the_z_basis() {
    let model = NoiseModel::single(NoiseChannel::PhaseFlip { p: 0.4 });
    let backend = TrajectoryBackend::new(AerCpuBackend, model, 512);
    let counts = counts_on(&backend, &flip_circuit(), 2000, 17);
    assert_eq!(counts.get(1), 2000, "Z errors must not move Z-basis outcomes");
}

#[test]
fn trajectory_fan_is_bit_identical_over_dense_and_stabilizer_inners() {
    // Pauli insertions keep a Clifford circuit Clifford and the fan's
    // per-trajectory seeds don't depend on the inner engine, so the
    // merged histogram must match across inners bit for bit.
    let model = NoiseModel::single(NoiseChannel::BitFlip { p: 0.15 });
    let c = ghz(6, 6);
    let dense_fan = TrajectoryBackend::new(AerCpuBackend, model.clone(), 256);
    let stab_fan = TrajectoryBackend::new(StabilizerBackend::default(), model, 256);
    let a = counts_on(&dense_fan, &c, 3000, 23);
    let b = counts_on(&stab_fan, &c, 3000, 23);
    assert_eq!(a.map, b.map, "inner engine changed the trajectory histogram");
}

// ---------------------------------------------------------------------
// Perf-model sync: admission prices exactly what the tableau allocates
// ---------------------------------------------------------------------

#[test]
fn perfmodel_tableau_bytes_matches_the_engine_allocation_model() {
    for n in [1u32, 2, 3, 8, 63, 64, 65, 100, 127, 128, 129, 1000, 4096] {
        assert_eq!(
            memory::tableau_bytes(n),
            Tableau::memory_bytes(n),
            "perfmodel and tableau disagree at n={n}"
        );
    }
}

// ---------------------------------------------------------------------
// Property tests: tableau algebra and classifier/engine consistency
// ---------------------------------------------------------------------

/// A random Clifford word as raw tableau updates: `(kind, a, boff)` with
/// `b = (a + boff) % n` distinct from `a`.
fn arb_clifford_word(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..9, 0..n, 1..n), 0..=max_len)
}

fn apply_word(t: &mut Tableau, n: u32, word: &[(u8, u32, u32)]) {
    for &(kind, a, boff) in word {
        let b = (a + boff) % n;
        match kind {
            0 => t.h(a),
            1 => t.s(a),
            2 => t.sdg(a),
            3 => t.x_gate(a),
            4 => t.y_gate(a),
            5 => t.z_gate(a),
            6 => t.cx(a, b),
            7 => t.cz(a, b),
            _ => t.swap(a, b),
        }
    }
}

const N: u32 = 7;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The symplectic anticommutation invariant (destabilizer `i`
    /// anticommutes with stabilizer `i`, commutes with every other row)
    /// survives arbitrary Clifford words and arbitrary measurements.
    #[test]
    fn tableau_invariants_hold_under_any_clifford_word(
        word in arb_clifford_word(N, 48),
        measured in proptest::collection::vec((0..N, any::<bool>()), 0..4),
    ) {
        let mut t = Tableau::new(N as usize);
        apply_word(&mut t, N, &word);
        prop_assert_eq!(t.check_invariants(), None);
        for (q, coin) in measured {
            t.measure(q, || coin);
            prop_assert_eq!(t.check_invariants(), None);
        }
    }

    /// `H·H = 1` from any reachable tableau.
    #[test]
    fn h_is_self_inverse(word in arb_clifford_word(N, 32), q in 0..N) {
        let mut t = Tableau::new(N as usize);
        apply_word(&mut t, N, &word);
        let before = t.clone();
        t.h(q);
        t.h(q);
        prop_assert_eq!(t, before);
    }

    /// `S⁴ = 1` and `S·S† = 1` from any reachable tableau.
    #[test]
    fn s_has_order_four(word in arb_clifford_word(N, 32), q in 0..N) {
        let mut t = Tableau::new(N as usize);
        apply_word(&mut t, N, &word);
        let before = t.clone();
        for _ in 0..4 {
            t.s(q);
        }
        prop_assert_eq!(&t, &before);
        t.s(q);
        t.sdg(q);
        prop_assert_eq!(t, before);
    }

    /// `CX·CX = 1` from any reachable tableau.
    #[test]
    fn cx_is_self_inverse(word in arb_clifford_word(N, 32), a in 0..N, boff in 1..N) {
        let b = (a + boff) % N;
        let mut t = Tableau::new(N as usize);
        apply_word(&mut t, N, &word);
        let before = t.clone();
        t.cx(a, b);
        t.cx(a, b);
        prop_assert_eq!(t, before);
    }

    /// Measuring a qubit twice gives the same value, and the second
    /// measurement is always deterministic (the state has collapsed).
    #[test]
    fn measurement_is_idempotent(
        word in arb_clifford_word(N, 48),
        q in 0..N,
        coin in any::<bool>(),
    ) {
        let mut t = Tableau::new(N as usize);
        apply_word(&mut t, N, &word);
        let first = t.measure(q, || coin);
        let second = t.measure(q, || unreachable!("collapsed qubit re-rolled"));
        prop_assert!(second.deterministic);
        prop_assert_eq!(second.value, first.value);
    }

    /// The classifier and the engine agree on what is Clifford: every
    /// circuit the classifier passes must lower onto the tableau, and
    /// every T gate the classifier counts must make the engine reject.
    #[test]
    fn classifier_and_engine_agree_on_cliffordness(
        word in arb_clifford_word(4, 24),
        t_gates in 0usize..3,
    ) {
        let mut c = Circuit::new(4);
        for &(kind, a, boff) in &word {
            let b = (a + boff) % 4;
            match kind {
                0 => c.h(a),
                1 => c.s(a),
                2 => c.sdg(a),
                3 => c.x(a),
                4 => c.y(a),
                5 => c.z(a),
                6 => c.cx(a, b),
                7 => c.cz(a, b),
                _ => c.swap(a, b),
            };
        }
        for k in 0..t_gates {
            c.t(k as u32);
        }
        let summary = classify(&c);
        prop_assert_eq!(summary.t_count, t_gates);
        let out: Result<RunOutput<f64>, SimError> =
            StabilizerBackend::default().run(&c, &RunOptions::default());
        if summary.is_clifford() {
            prop_assert!(out.is_ok(), "classifier-approved circuit rejected: {:?}", out.err());
        } else {
            prop_assert!(
                matches!(out, Err(SimError::UnsupportedGate(_))),
                "engine accepted a circuit with {} T gates",
                t_gates
            );
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end: admission routing under a virtual clock
// ---------------------------------------------------------------------

/// Drain a virtually-clocked service (same helper as `tests/simtest.rs`):
/// advance to successive sleeper deadlines until nothing is in flight,
/// bounded in real time so a scheduling bug fails instead of hanging.
fn drain(service: &Service, clock: &VirtualClock) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !service.is_idle() {
        assert!(Instant::now() < deadline, "service failed to quiesce in 30s real time");
        if clock.advance_to_next_sleeper().is_none() {
            std::thread::sleep(Duration::from_micros(100));
        } else {
            std::thread::yield_now();
        }
    }
}

#[test]
fn hundred_qubit_clifford_job_completes_end_to_end_under_virtual_time() {
    // 100 dense qubits would need 2^100 amplitudes; the tableau needs a
    // few kilobytes. Auto selection must admit, route to the stabilizer
    // engine, and complete — all on the simulated clock.
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 2,
        selection: SelectionPolicy::Auto,
        clock: clock.clone(),
        ..Default::default()
    });
    let shots = 512;
    let id = service
        .submit(JobSpec::new(ghz(100, 64)).shots(shots).seed(29))
        .job_id()
        .expect("100-qubit Clifford job must be admitted under Auto selection");
    drain(&service, &clock);
    let outcome = service.try_outcome(id).expect("job reached a terminal state");
    let JobOutcome::Completed(result) = outcome else {
        panic!("100-qubit GHZ did not complete: {outcome:?}");
    };
    let counts = result.counts.expect("measured job yields counts");
    assert_eq!(counts.total(), shots);
    for &key in counts.map.keys() {
        assert!(key == 0 || key == u64::MAX, "non-GHZ outcome {key:#x} on the 64-qubit prefix");
    }
    service.shutdown();
}

#[test]
fn noisy_job_completes_through_the_trajectory_fan_under_virtual_time() {
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        clock: clock.clone(),
        ..Default::default()
    });
    let model = NoiseModel::single(NoiseChannel::Depolarizing { p: 0.05 });
    let id = service
        .submit(JobSpec::new(ghz(5, 5)).shots(800).seed(31).with_noise(model, 32))
        .job_id()
        .expect("noisy job admitted");
    drain(&service, &clock);
    let outcome = service.try_outcome(id).expect("terminal state");
    let result = outcome.result().expect("noisy job completed");
    assert_eq!(result.counts.as_ref().expect("counts").total(), 800);
    service.shutdown();
}

#[test]
fn infeasible_job_reports_a_verdict_for_every_considered_backend() {
    let clock = Arc::new(VirtualClock::new());
    let service = Service::start(ServeConfig {
        workers: 1,
        selection: SelectionPolicy::Auto,
        clock: clock.clone(),
        ..Default::default()
    });
    // 40 dense qubits overflow the modelled device; the single T gate
    // rules out the stabilizer engine. Both verdicts must come back.
    let mut c = Circuit::new(40);
    c.h(0).t(0).cx(0, 1);
    c.measure(0);
    match service.submit(JobSpec::new(c)) {
        Admission::RejectedInfeasible { considered, device_bytes, .. } => {
            assert_eq!(considered.len(), 2, "expected dense + stabilizer verdicts");
            assert!(considered.iter().all(|v| !v.feasible));
            assert!(
                considered.iter().any(|v| v.reason.contains("Clifford")),
                "stabilizer verdict must explain the Clifford failure: {considered:?}"
            );
            let dense = considered
                .iter()
                .find(|v| v.engine == qgear_serve::Engine::Dense)
                .expect("dense verdict present");
            assert!(dense.required_bytes > device_bytes, "dense verdict must be a memory failure");
        }
        other => panic!("expected RejectedInfeasible, got {other:?}"),
    }
    service.shutdown();
}
