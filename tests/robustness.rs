//! Robustness properties: the binary format parsers must *reject*, never
//! panic, on arbitrary or corrupted input; the scheduler must preserve
//! resource invariants under arbitrary job mixes.

use proptest::prelude::*;
use qgear_container::slurm::{Cluster, Constraint, JobRequest, JobState, Scheduler};
use qgear_hdf5lite::{Compression, H5File};
use qgear_ir::{qpy, Circuit};
use qgear_statevec::{decode_checkpoint, encode_checkpoint, GpuDevice, RunOptions, SegmentedRun};

/// Valid checkpoint wire bytes from a small mid-flight segmented run —
/// the corpus the bit-flip property mutates.
fn valid_checkpoint_bytes() -> Vec<u8> {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2).measure_all();
    let device = GpuDevice::a100_40gb();
    let opts = RunOptions { shots: 32, fusion_width: 1, ..Default::default() };
    let mut run = SegmentedRun::<f64>::new(&device, &c, &opts).unwrap();
    run.advance(2);
    encode_checkpoint(&run.checkpoint())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn qpy_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        // Arbitrary bytes: must return Err (the CRC alone rejects almost
        // everything) and must not panic.
        let _ = qpy::read(&bytes);
    }

    #[test]
    fn h5_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = H5File::from_bytes(&bytes);
    }

    #[test]
    fn qpy_parser_never_panics_on_bitflips(
        flip_at in 0usize..1000,
        flip_bit in 0u8..8,
    ) {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.5, 2).cr1(0.25, 2, 3).measure_all();
        let mut bytes = qpy::write(&[c.clone()]).to_vec();
        let i = flip_at % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        // A flip that hits padding inside an f64 can survive the CRC
        // only by restoring the same byte — otherwise Err. Either way,
        // no panic, and Ok must decode *some* circuit batch.
        if let Ok(batch) = qpy::read(&bytes) {
            prop_assert_eq!(batch.len(), 1);
        }
    }

    #[test]
    fn h5_parser_never_panics_on_bitflips(
        flip_at in 0usize..4000,
        flip_bit in 0u8..8,
    ) {
        let mut f = H5File::new();
        f.write_dataset(
            "a/b",
            qgear_hdf5lite::Dataset::from_f64(&[1.5, -2.0, 0.25], &[3]),
        )
        .unwrap();
        f.set_attr("a", "k", qgear_hdf5lite::Attr::Str("v".into())).unwrap();
        let mut bytes = f.to_bytes(Compression::ShuffleRle);
        let i = flip_at % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        let _ = H5File::from_bytes(&bytes); // must not panic
    }

    #[test]
    fn checkpoint_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        // Arbitrary bytes must be rejected with a structured error —
        // never a panic, never an Ok that smuggles garbage amplitudes
        // in. The 4-byte magic alone rejects essentially everything;
        // the per-section CRC framing rejects the rest.
        prop_assert!(decode_checkpoint::<f64>(&bytes).is_err());
        prop_assert!(decode_checkpoint::<f32>(&bytes).is_err());
    }

    #[test]
    fn checkpoint_decoder_rejects_every_bitflip(
        flip_at in 0usize..1000,
        flip_bit in 0u8..8,
    ) {
        // Unlike qpy (where a flip in f64 padding can be CRC-neutral
        // only by restoring the byte), every checkpoint byte sits under
        // either the magic/version preamble or a section CRC, so any
        // single-bit corruption must surface as Err — a checkpoint is
        // verified-or-rejected, never silently trusted.
        let mut bytes = valid_checkpoint_bytes();
        prop_assert!(decode_checkpoint::<f64>(&bytes).is_ok(), "sanity: intact bytes decode");
        let i = flip_at % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        prop_assert!(decode_checkpoint::<f64>(&bytes).is_err());
    }

    #[test]
    fn checkpoint_decoder_rejects_every_truncation(
        cut in 0usize..1000,
    ) {
        let bytes = valid_checkpoint_bytes();
        let keep = cut % bytes.len(); // strictly shorter than the whole
        prop_assert!(decode_checkpoint::<f64>(&bytes[..keep]).is_err());
    }

    #[test]
    fn scheduler_invariants_under_arbitrary_job_mixes(
        jobs in proptest::collection::vec((1u32..3, 1u32..9, 1u64..50), 1..20),
    ) {
        // Cluster: 4 GPU nodes (16 GPUs).
        let mut s = Scheduler::new(Cluster::perlmutter_slice(4, 0));
        let mut ids = Vec::new();
        for (nodes, tasks, duration) in jobs {
            // Keep requests satisfiable: <= 4 GPUs per node.
            let tasks = tasks.min(nodes * 4);
            ids.push(s.submit(JobRequest {
                nodes,
                tasks,
                gpus_per_task: 1,
                constraint: Constraint::Gpu,
                duration,
            }).unwrap());
        }
        let makespan = s.run_to_completion();
        // Every job completed, within the makespan, on the requested
        // number of distinct nodes.
        for &id in &ids {
            match s.state(id) {
                JobState::Completed { start, end } => {
                    prop_assert!(end <= makespan);
                    prop_assert!(start < end);
                }
                other => prop_assert!(false, "job {id} not completed: {other:?}"),
            }
            let nodes = s.assigned_nodes(id);
            let mut uniq = nodes.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), nodes.len(), "duplicate node assignment");
        }
        // Utilization is a valid fraction.
        let u = s.gpu_utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        // No two jobs overlap on the same node in time.
        for &a in &ids {
            for &b in &ids {
                if a >= b {
                    continue;
                }
                let (JobState::Completed { start: sa, end: ea },
                     JobState::Completed { start: sb, end: eb }) = (s.state(a), s.state(b))
                else { unreachable!() };
                let shares_node = s
                    .assigned_nodes(a)
                    .iter()
                    .any(|n| s.assigned_nodes(b).contains(n));
                if shares_node {
                    prop_assert!(ea <= sb || eb <= sa, "jobs {a} and {b} overlap on a node");
                }
            }
        }
    }

    #[test]
    fn compression_roundtrip_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..3000),
        width in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        use qgear_hdf5lite::codec;
        for comp in [Compression::None, Compression::Rle, Compression::ShuffleRle] {
            let chunks = codec::compress_payload(&data, comp, width);
            let back = codec::decompress_payload(&chunks, width).unwrap();
            prop_assert_eq!(&back, &data);
        }
    }
}
