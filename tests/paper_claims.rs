//! Integration: the paper's quantitative claims, checked end to end
//! against the model and the real engines. These are the assertions
//! EXPERIMENTS.md cites.

use qgear_num::scalar::Precision;
use qgear_perfmodel::memory;
use qgear_perfmodel::project::{project_circuit, ModelTarget, ProjectOptions};
use qgear_perfmodel::CostModel;
use qgear_workloads::qcrank::paper_configs;
use qgear_workloads::random::{generate_random_gate_list, RandomCircuitSpec};

fn model() -> CostModel {
    CostModel::paper_testbed()
}

#[test]
fn abstract_claim_two_orders_cpu_speedup() {
    // "Q-Gear accelerates … CPU-based simulations by two orders of
    // magnitude" — modeled at the Fig. 4a operating point.
    let m = model();
    let circ = generate_random_gate_list(&RandomCircuitSpec {
        num_qubits: 32,
        num_blocks: 100,
        seed: 1,
        measure: true,
    });
    let opts = ProjectOptions { precision: Precision::Fp32, shots: 3000, fusion_width: 5 };
    let cpu = project_circuit(&m, &circ, ModelTarget::QiskitCpu, &opts).expect("native circuit projects").total();
    let gpu = project_circuit(&m, &circ, ModelTarget::QGearGpu { devices: 1 }, &opts).expect("native circuit projects").total();
    let speedup = cpu / gpu;
    assert!(
        (100.0..1000.0).contains(&speedup),
        "expected two-orders speedup, got {speedup:.0}x"
    );
}

#[test]
fn abstract_claim_ten_times_gpu_speedup() {
    // "…and GPU-based simulations by ten times" — vs the unfused,
    // per-gate-transpiling GPU baseline.
    let m = model();
    let circ = generate_random_gate_list(&RandomCircuitSpec {
        num_qubits: 30,
        num_blocks: 100,
        seed: 2,
        measure: true,
    });
    let opts = ProjectOptions { precision: Precision::Fp32, shots: 3000, fusion_width: 5 };
    let penny = project_circuit(&m, &circ, ModelTarget::PennylaneGpu { devices: 1 }, &opts).expect("native circuit projects").total();
    let qgear = project_circuit(&m, &circ, ModelTarget::QGearGpu { devices: 1 }, &opts).expect("native circuit projects").total();
    let gain = penny / qgear;
    assert!((3.0..100.0).contains(&gain), "expected ~10x, got {gain:.1}x");
}

#[test]
fn abstract_claim_42_qubits_on_1024_gpus() {
    let m = model();
    assert_eq!(memory::max_qubits_cluster(&m.gpu, Precision::Fp32, 1024), 42);
    assert!(memory::max_qubits_cluster(&m.gpu, Precision::Fp32, 512) < 42);
}

#[test]
fn fig4a_memory_walls() {
    let m = model();
    // CPU node: 33 fits, 34 OOMs (the open-square wall).
    assert_eq!(memory::max_qubits_cpu(&m.cpu), 33);
    // One A100-40GB at fp32: 32.
    assert_eq!(memory::max_qubits_gpu(&m.gpu, Precision::Fp32), 32);
    // Four pooled: 34 ("adding only two additional qubits requires four
    // times more memory").
    assert_eq!(memory::max_qubits_cluster(&m.gpu, Precision::Fp32, 4), 34);
}

#[test]
fn fig4b_reversal_and_feasibility() {
    let m = model();
    let circ = generate_random_gate_list(&RandomCircuitSpec {
        num_qubits: 40,
        num_blocks: 3000,
        seed: 3,
        measure: false,
    });
    let opts = ProjectOptions { precision: Precision::Fp32, shots: 0, fusion_width: 5 };
    let t256 = project_circuit(&m, &circ, ModelTarget::QGearGpu { devices: 256 }, &opts).expect("native circuit projects").total();
    let t1024 = project_circuit(&m, &circ, ModelTarget::QGearGpu { devices: 1024 }, &opts).expect("native circuit projects").total();
    assert!(
        t1024 > t256,
        "paper: 1024 GPUs lower throughput than 256 at 40 qubits ({t1024:.0}s vs {t256:.0}s)"
    );
}

#[test]
fn table2_shot_budgets_and_qubit_splits() {
    let rows = paper_configs();
    let shots: Vec<u64> = rows.iter().map(|r| r.shots()).collect();
    assert_eq!(
        shots,
        vec![3_072_000, 6_144_000, 12_288_000, 24_576_000, 49_152_000, 98_304_000]
    );
    for r in &rows {
        assert_eq!(r.config.capacity(), r.pixels(), "{}", r.image);
    }
    // The three Zebra splits trade address depth against data width at a
    // constant pixel budget.
    let zebras: Vec<_> = rows.iter().filter(|r| r.image == "zebra").collect();
    assert_eq!(zebras.len(), 3);
    for z in &zebras {
        assert_eq!(z.pixels(), 98_304);
    }
}

#[test]
fn qcrank_cx_count_equals_pixels_end_to_end() {
    use qgear_workloads::images;
    use qgear_workloads::qcrank::QcrankCodec;
    // §3: CX count == gray pixel count, for every Table 2 row.
    for row in paper_configs() {
        let img = images::paper_image(row.image).unwrap();
        let circ = QcrankCodec::new(row.config).encode_image(&img);
        assert_eq!(
            circ.count_kind(qgear_ir::GateKind::Cx),
            row.pixels(),
            "{} {}a{}d",
            row.image,
            row.config.addr_qubits,
            row.config.data_qubits
        );
    }
}

#[test]
fn fig5_speedup_decreases_with_image_size() {
    let m = model();
    use qgear_workloads::images;
    use qgear_workloads::qcrank::QcrankCodec;
    let rows = paper_configs();
    let mut speedups = Vec::new();
    for row in [&rows[0], &rows[5]] {
        let img = images::paper_image(row.image).unwrap();
        let circ = QcrankCodec::new(row.config).encode_image(&img);
        let opts = ProjectOptions {
            precision: Precision::Fp64,
            shots: row.shots(),
            fusion_width: 5,
        };
        let cpu = project_circuit(&m, &circ, ModelTarget::QiskitCpu, &opts).expect("native circuit projects").total();
        let gpu = project_circuit(&m, &circ, ModelTarget::QGearGpu { devices: 1 }, &opts).expect("native circuit projects").total();
        speedups.push(cpu / gpu);
    }
    assert!(speedups[0] > 50.0, "small-image speedup ~two orders: {speedups:?}");
    assert!(speedups[1] < speedups[0], "speedup must shrink with size: {speedups:?}");
}

#[test]
fn slurm_utilization_claim() {
    use qgear_container::slurm::{Cluster, JobRequest, Scheduler};
    let mut s = Scheduler::new(Cluster::perlmutter_slice(256, 0));
    for _ in 0..1024 {
        s.submit(JobRequest::parse_sbatch("-N 1 -n 4 -C gpu --gpus-per-task 1", 120).unwrap())
            .unwrap();
    }
    s.run_to_completion();
    assert!(s.gpu_utilization() > 0.99, "got {}", s.gpu_utilization());
}
